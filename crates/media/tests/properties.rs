//! Property tests for the media substrate.

use f1_media::features::audio::{pitch_autocorrelation, short_time_energy, ClipStats};
use f1_media::signal::{rms, sine, FirFilter};
use f1_media::synth::scenario::{merge_spans, RaceProfile, RaceScenario, ScenarioConfig, Span};
use f1_media::time::SAMPLE_RATE;
use f1_media::window::Window;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ste_is_nonnegative_and_scales(amp in 0.01f64..1.0, freq in 80.0f64..2000.0) {
        let frame = sine(freq, amp, 220, SAMPLE_RATE);
        for w in Window::ALL {
            let e = short_time_energy(&frame, w);
            prop_assert!(e >= 0.0);
            let double = sine(freq, amp * 2.0, 220, SAMPLE_RATE);
            let e2 = short_time_energy(&double, w);
            prop_assert!((e2 / e - 4.0).abs() < 0.2, "window {w:?}: ratio {}", e2 / e);
        }
    }

    #[test]
    fn pitch_estimate_tracks_any_speechband_tone(f0 in 95.0f64..380.0) {
        let tone = sine(f0, 0.5, 440, SAMPLE_RATE);
        let p = pitch_autocorrelation(&tone, 90.0, 400.0, 0.3);
        prop_assert!(p.is_some(), "no pitch at {f0}");
        let p = p.unwrap();
        prop_assert!((p - f0).abs() / f0 < 0.08, "estimated {p} for {f0}");
    }

    #[test]
    fn band_pass_attenuates_out_of_band(freq in 100.0f64..10_000.0) {
        let bp = FirFilter::band_pass(882.0, 2205.0, 101, SAMPLE_RATE).unwrap();
        let tone = sine(freq, 1.0, 4400, SAMPLE_RATE);
        let out = rms(&bp.apply(&tone)[200..4200]);
        if (1100.0..=1900.0).contains(&freq) {
            prop_assert!(out > 0.4, "in-band {freq} attenuated to {out}");
        } else if !(700.0..=2600.0).contains(&freq) {
            prop_assert!(out < 0.2, "out-of-band {freq} leaked {out}");
        }
    }

    #[test]
    fn clip_stats_bound_their_inputs(values in proptest::collection::vec(-5.0f64..5.0, 1..32)) {
        let s = ClipStats::from_frames(&values);
        let mx = values.iter().cloned().fold(f64::MIN, f64::max);
        let mn = values.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!((s.max - mx).abs() < 1e-12);
        prop_assert!((s.dyn_range - (mx - mn)).abs() < 1e-12);
        prop_assert!(s.avg >= mn - 1e-12 && s.avg <= mx + 1e-12);
    }

    #[test]
    fn merge_spans_covers_and_disjoint(spans in proptest::collection::vec((0usize..100, 1usize..20), 0..12)) {
        let mut input: Vec<Span> = spans.iter().map(|&(s, l)| Span::new(s, s + l)).collect();
        input.sort_by_key(|s| s.start);
        let merged = merge_spans(&input);
        // Disjoint and ordered.
        for w in merged.windows(2) {
            prop_assert!(w[0].end < w[1].start);
        }
        // Every input clip is covered.
        for s in &input {
            for c in s.start..s.end {
                prop_assert!(merged.iter().any(|m| m.contains(c)));
            }
        }
    }

    #[test]
    fn scenario_generation_is_sane_for_any_seed(seed in 0u64..500) {
        let mut cfg = ScenarioConfig::new(RaceProfile::German, 120);
        cfg.seed = seed;
        let sc = RaceScenario::generate(cfg);
        prop_assert_eq!(sc.n_clips, 1200);
        // Spans in range and ordered.
        for e in &sc.events {
            prop_assert!(e.span.end <= sc.n_clips);
        }
        for r in &sc.replays {
            prop_assert!(r.span.end <= sc.n_clips);
            prop_assert_eq!(r.span.len(), r.source.len());
        }
        for s in &sc.excited {
            prop_assert!(sc.is_excited(s.start));
        }
        // Standings always a permutation.
        let mut last = sc.standings_at(sc.n_clips - 1).to_vec();
        last.sort_unstable();
        prop_assert_eq!(last, (0..f1_media::synth::scenario::DRIVERS.len()).collect::<Vec<_>>());
    }
}
