//! Shared helpers for the crate's unit tests.

use crate::synth::audio::AudioSynth;
use crate::synth::scenario::{RaceProfile, RaceScenario, ScenarioConfig};

/// A short German-profile broadcast with its audio renderer.
pub fn german_broadcast(seconds: usize) -> (RaceScenario, AudioSynth) {
    let sc = RaceScenario::generate(ScenarioConfig::new(RaceProfile::German, seconds));
    let audio = AudioSynth::new(&sc);
    (sc, audio)
}
