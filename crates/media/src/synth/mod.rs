//! Synthetic Formula 1 broadcast generation.
//!
//! The three digitized 2001 Grands Prix the paper analyses are not
//! available; this module substitutes a seeded generator that produces a
//! ground-truth race timeline ([`scenario`]) and renders actual raw
//! signals from it: 22 kHz PCM audio ([`audio`]) and 384×288 RGB video
//! frames ([`video`]). The feature extractors consume only the raw
//! signals, so every signal-processing code path of §5.2–§5.4 runs for
//! real; the timeline doubles as evaluation ground truth.

pub mod audio;
pub mod scenario;
pub mod stream;
pub mod video;
