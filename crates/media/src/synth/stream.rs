//! Chunked (arrival-order) view of a broadcast.
//!
//! Batch ingest sees the whole race at once; a *live* race arrives as a
//! sequence of short windows. [`ChunkStream`] slices a generated
//! [`RaceScenario`] into contiguous arrival-order [`Chunk`]s on the
//! clip grid, each carrying the clip span and the matching video-frame
//! range, so the extractors can process exactly the clips that have
//! "arrived" so far — `FeatureExtractor::extract` and the caption
//! pipeline already take clip/frame ranges, which is what makes
//! incremental ingest possible without re-reading earlier footage.
//!
//! The stream is a pure function of the scenario and the chunk length:
//! replaying the same seeded scenario through the same chunking yields
//! byte-identical windows, which the streaming tests and benchmarks
//! rely on.

use crate::synth::scenario::{RaceScenario, Span};
use crate::time::{clips_per_second, VIDEO_FPS};

/// One arrival-order window of a broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Zero-based arrival index.
    pub index: usize,
    /// The clips that arrive in this window.
    pub clips: Span,
    /// First video frame of the window.
    pub frame_lo: usize,
    /// One past the last video frame of the window.
    pub frame_hi: usize,
    /// True for the final window of the broadcast.
    pub is_last: bool,
}

impl Chunk {
    /// Number of clips in the window.
    pub fn len(&self) -> usize {
        self.clips.len()
    }

    /// True when the window holds no clips.
    pub fn is_empty(&self) -> bool {
        self.clips.is_empty()
    }
}

/// Iterator of arrival-order [`Chunk`]s over one scenario.
pub struct ChunkStream<'a> {
    scenario: &'a RaceScenario,
    chunk_clips: usize,
    next_clip: usize,
    index: usize,
}

impl<'a> ChunkStream<'a> {
    /// Slices `scenario` into windows of `chunk_s` seconds (the last
    /// window may be shorter). A zero `chunk_s` is clamped to one
    /// second so the stream always terminates.
    pub fn new(scenario: &'a RaceScenario, chunk_s: usize) -> Self {
        ChunkStream {
            scenario,
            chunk_clips: chunk_s.max(1) * clips_per_second(),
            next_clip: 0,
            index: 0,
        }
    }

    /// Total number of windows this stream will yield.
    pub fn n_chunks(&self) -> usize {
        self.scenario.n_clips.div_ceil(self.chunk_clips)
    }
}

impl Iterator for ChunkStream<'_> {
    type Item = Chunk;

    fn next(&mut self) -> Option<Chunk> {
        let n_clips = self.scenario.n_clips;
        if self.next_clip >= n_clips {
            return None;
        }
        let cps = clips_per_second();
        let lo = self.next_clip;
        let hi = (lo + self.chunk_clips).min(n_clips);
        let is_last = hi == n_clips;
        let chunk = Chunk {
            index: self.index,
            clips: Span::new(lo, hi),
            frame_lo: lo * VIDEO_FPS / cps,
            // The final window owns the tail frames left over by the
            // integer clip→frame mapping.
            frame_hi: if is_last {
                self.scenario.n_frames()
            } else {
                hi * VIDEO_FPS / cps
            },
            is_last,
        };
        self.next_clip = hi;
        self.index += 1;
        Some(chunk)
    }
}

impl RaceScenario {
    /// Streams the broadcast in arrival order as windows of `chunk_s`
    /// seconds each — the live-ingest view of the same ground truth
    /// that [`RaceScenario::generate`] produced in batch.
    pub fn chunks(&self, chunk_s: usize) -> ChunkStream<'_> {
        ChunkStream::new(self, chunk_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::scenario::{RaceProfile, ScenarioConfig};

    fn scenario() -> RaceScenario {
        RaceScenario::generate(ScenarioConfig::new(RaceProfile::German, 120))
    }

    #[test]
    fn chunks_tile_the_broadcast_exactly() {
        let s = scenario();
        let chunks: Vec<Chunk> = s.chunks(10).collect();
        assert_eq!(chunks.len(), s.chunks(10).n_chunks());
        assert_eq!(chunks[0].clips.start, 0);
        for w in chunks.windows(2) {
            assert_eq!(w[0].clips.end, w[1].clips.start, "gap between windows");
            assert_eq!(w[0].frame_hi, w[1].frame_lo);
            assert_eq!(w[0].index + 1, w[1].index);
            assert!(!w[0].is_last);
        }
        let last = chunks.last().unwrap();
        assert!(last.is_last);
        assert_eq!(last.clips.end, s.n_clips);
        assert_eq!(last.frame_hi, s.n_frames());
    }

    #[test]
    fn frame_ranges_follow_the_clip_grid() {
        let s = scenario();
        let cps = clips_per_second();
        for c in s.chunks(7) {
            assert_eq!(c.frame_lo, c.clips.start * VIDEO_FPS / cps);
            if !c.is_last {
                assert_eq!(c.frame_hi, c.clips.end * VIDEO_FPS / cps);
            }
        }
    }

    #[test]
    fn ragged_tail_is_shorter_never_empty() {
        let s = scenario();
        let chunks: Vec<Chunk> = s.chunks(7).collect();
        for c in &chunks {
            assert!(!c.is_empty());
            assert!(c.len() <= 7 * clips_per_second());
        }
        let covered: usize = chunks.iter().map(Chunk::len).sum();
        assert_eq!(covered, s.n_clips);
    }

    #[test]
    fn zero_chunk_length_is_clamped() {
        let s = scenario();
        assert!(s.chunks(0).n_chunks() <= s.n_clips);
        assert_eq!(s.chunks(0).map(|c| c.len()).sum::<usize>(), s.n_clips);
    }

    #[test]
    fn replay_is_deterministic() {
        let s = scenario();
        let a: Vec<Chunk> = s.chunks(10).collect();
        let b: Vec<Chunk> = s.chunks(10).collect();
        assert_eq!(a, b);
    }
}
