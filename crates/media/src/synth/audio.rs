//! PCM rendering of the broadcast audio.
//!
//! §5.2 describes the Formula 1 audio as "human speech, car noise, and
//! various background noises". [`AudioSynth`] renders exactly that mix at
//! 22 kHz from a [`RaceScenario`]:
//!
//! * an **engine bed** — a low sawtooth stack, louder while the race is
//!   live,
//! * **crowd noise** — hashed white noise, slightly raised during events,
//! * **commentary** — a harmonic glottal source chopped into syllables;
//!   when the announcer is excited the fundamental rises from ≈ 120 Hz to
//!   ≈ 250 Hz, the amplitude roughly doubles and the inter-syllable pauses
//!   shrink (the exact cues the paper's STE/pitch/pause-rate features
//!   pick up).
//!
//! Rendering is *random access*: [`AudioSynth::clip`] produces any 0.1 s
//! clip deterministically without rendering the rest of the race, so a
//! 90-minute broadcast never needs to exist in memory at once.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::synth::scenario::RaceScenario;
use crate::time::{CLIP_SAMPLES, SAMPLE_RATE};

/// A syllable of commentary: a voiced harmonic burst.
#[derive(Debug, Clone, Copy)]
struct Syllable {
    start_sample: usize,
    len: usize,
    f0: f64,
    amp: f64,
}

/// A close engine pass: several seconds of screaming car drowning the
/// commentary — the broadcast noise that makes §5.2's features hard.
#[derive(Debug, Clone, Copy)]
struct EnginePass {
    start_sample: usize,
    len: usize,
    /// Braking/downshift rumble fundamental (lands in the speech band).
    rumble_hz: f64,
}

/// Deterministic random-access audio renderer for one scenario.
pub struct AudioSynth {
    syllables: Vec<Syllable>,
    /// Sorted syllable start samples for binary search.
    starts: Vec<usize>,
    passes: Vec<EnginePass>,
    live_start: usize,
    live_end: usize,
    event_clips: Vec<(usize, usize)>,
    noise_seed: u64,
    n_samples: usize,
}

/// SplitMix64 — a tiny stateless hash giving deterministic per-sample
/// noise with random access.
fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn noise(seed: u64, n: u64) -> f64 {
    // Uniform in [-1, 1).
    (hash64(seed ^ n) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

impl AudioSynth {
    /// Prepares the renderer (precomputes the syllable plan; no PCM yet).
    pub fn new(scenario: &RaceScenario) -> Self {
        let mut rng = StdRng::seed_from_u64(scenario.config.seed ^ 0xA0D10);
        let mut syllables = Vec::new();
        for span in &scenario.speech {
            let mut s = span.start * CLIP_SAMPLES;
            let span_end = span.end * CLIP_SAMPLES;
            while s < span_end {
                let clip = s / CLIP_SAMPLES;
                let excited = scenario.is_excited(clip);
                // Excitement intensity varies per span: a big crash gets a
                // screaming announcer, a minor overtake only a mild lift —
                // the mild ones are the genuinely hard recall cases.
                let intensity = scenario
                    .excited
                    .iter()
                    .find(|sp| sp.contains(clip))
                    .map(|sp| {
                        0.55 + 0.45
                            * ((hash64(scenario.config.seed ^ sp.start as u64) >> 11) as f64
                                / (1u64 << 53) as f64)
                    })
                    .unwrap_or(1.0);
                // Excited speech: higher pitch, louder, denser — but real
                // commentary is ambiguous clip to clip: calm speech has
                // emphasis syllables that sound excited, and excited
                // stretches contain breaths and calmer words. This overlap
                // is what makes per-clip (static BN) classification noisy
                // while temporal integration (DBN) survives.
                let confound = rng.gen_bool(0.15);
                let (f0, amp, len_ms, gap_ms) = match (excited, confound) {
                    (true, false) => {
                        let f0_hi = rng.gen_range(210.0..290.0);
                        let amp_hi = rng.gen_range(0.45..0.65);
                        let f0_lo = rng.gen_range(120.0..170.0);
                        let amp_lo = rng.gen_range(0.22..0.34);
                        (
                            f0_lo + (f0_hi - f0_lo) * intensity,
                            amp_lo + (amp_hi - amp_lo) * intensity,
                            rng.gen_range(120..200),
                            (20.0 + (1.0 - intensity) * 120.0) as usize + rng.gen_range(0..50),
                        )
                    }
                    (true, true) => (
                        // a breath or calmer word inside excitement
                        rng.gen_range(140.0..200.0),
                        rng.gen_range(0.25..0.40),
                        rng.gen_range(120..200),
                        rng.gen_range(60..160),
                    ),
                    (false, false) => (
                        rng.gen_range(100.0..150.0),
                        rng.gen_range(0.18..0.30),
                        rng.gen_range(120..220),
                        rng.gen_range(80..220),
                    ),
                    (false, true) => (
                        // an emphasis syllable in calm commentary
                        rng.gen_range(180.0..250.0),
                        rng.gen_range(0.38..0.55),
                        rng.gen_range(120..200),
                        rng.gen_range(60..160),
                    ),
                };
                let len = len_ms * SAMPLE_RATE / 1000;
                syllables.push(Syllable {
                    start_sample: s,
                    len: len.min(span_end.saturating_sub(s)),
                    f0,
                    amp,
                });
                s += len + gap_ms * SAMPLE_RATE / 1000;
            }
        }
        syllables.sort_by_key(|sy| sy.start_sample);
        let starts = syllables.iter().map(|sy| sy.start_sample).collect();

        // Close engine passes while the race is live: 2–8 s of screaming
        // car with a braking rumble whose fundamental sits inside the
        // 0–882 Hz speech band. These are the "complex mixtures of
        // frequencies" §5.2 complains about.
        let mut passes = Vec::new();
        let mut t = scenario.live.start * CLIP_SAMPLES + rng.gen_range(0..10 * SAMPLE_RATE);
        let live_end_sample = scenario.live.end * CLIP_SAMPLES;
        while t < live_end_sample {
            let len = rng.gen_range(2 * SAMPLE_RATE..8 * SAMPLE_RATE);
            passes.push(EnginePass {
                start_sample: t,
                len,
                rumble_hz: rng.gen_range(180.0..340.0),
            });
            t += len + rng.gen_range(15 * SAMPLE_RATE..40 * SAMPLE_RATE);
        }
        let event_clips = scenario
            .events
            .iter()
            .map(|e| (e.span.start, e.span.end))
            .collect();
        AudioSynth {
            syllables,
            starts,
            passes,
            live_start: scenario.live.start * CLIP_SAMPLES,
            live_end: scenario.live.end * CLIP_SAMPLES,
            event_clips,
            noise_seed: scenario.config.seed ^ 0xC0FFEE,
            n_samples: scenario.n_clips * CLIP_SAMPLES,
        }
    }

    /// Total number of samples in the broadcast.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    fn sample(&self, n: usize) -> f64 {
        let t = n as f64 / SAMPLE_RATE as f64;
        let mut x = 0.0;

        // Engine bed: high-revving partials well above the speech band —
        // the paper picks the 0–882 Hz band for speech analysis precisely
        // "because this bandwidth diminishes car noises".
        let live = n >= self.live_start && n < self.live_end;
        let engine_amp = if live { 0.06 } else { 0.02 };
        let saw = |f: f64| 2.0 * ((t * f).fract()) - 1.0;
        x += engine_amp * (0.55 * saw(1430.0) + 0.45 * saw(3090.0));

        // Crowd noise, raised around events, plus grandstand swells that
        // come and go on their own (hash-scheduled ~8 s waves every ~45 s).
        // Broadband noise like this is what defeats zero-crossing-rate and
        // entropy speech detectors while the band-limited STE survives.
        let clip = n / CLIP_SAMPLES;
        let busy = self.event_clips.iter().any(|&(s, e)| clip >= s && clip < e);
        let mut crowd_amp: f64 = if busy { 0.12 } else { 0.02 };
        let wave = n / (45 * SAMPLE_RATE);
        let wave_on = hash64(self.noise_seed ^ 0xC0DD ^ wave as u64).is_multiple_of(3);
        if wave_on {
            let off = (n % (45 * SAMPLE_RATE)) as f64 / (8 * SAMPLE_RATE) as f64;
            if off < 1.0 {
                crowd_amp = crowd_amp.max(0.15 * (std::f64::consts::PI * off).sin());
            }
        }
        x += crowd_amp * noise(self.noise_seed, n as u64);

        // Close engine passes: a loud scream plus a braking rumble inside
        // the speech band. The rumble is *machine-steady* — constant pitch
        // and energy — which is exactly what separates it from syllabic
        // speech for the dynamic-range features.
        for p in &self.passes {
            if n >= p.start_sample && n < p.start_sample + p.len {
                let off = (n - p.start_sample) as f64 / p.len as f64;
                let env = (std::f64::consts::PI * off).sin(); // swell in/out
                x += env * 0.16 * saw(p.rumble_hz);
                x += env * 0.22 * (0.6 * saw(1640.0) + 0.4 * saw(3320.0));
                break;
            }
        }

        // Commentary: the latest syllable that could still cover n.
        let idx = self.starts.partition_point(|&s| s <= n);
        for sy in self.syllables[..idx].iter().rev().take(2) {
            let off = n - sy.start_sample;
            if off >= sy.len {
                continue;
            }
            // Hann envelope over the syllable.
            let env = 0.5 - 0.5 * (std::f64::consts::TAU * off as f64 / sy.len.max(2) as f64).cos();
            let tt = off as f64 / SAMPLE_RATE as f64;
            let mut v = 0.0;
            for k in 1..=6u32 {
                v += (std::f64::consts::TAU * sy.f0 * k as f64 * tt).sin() / k as f64;
            }
            x += sy.amp * env * v * 0.5;
        }

        x.clamp(-1.0, 1.0)
    }

    /// Renders one 0.1 s clip (2 200 samples).
    pub fn clip(&self, clip_idx: usize) -> Vec<f64> {
        let start = clip_idx * CLIP_SAMPLES;
        (start..start + CLIP_SAMPLES)
            .map(|n| self.sample(n))
            .collect()
    }

    /// Renders an arbitrary sample range (for cross-clip analyses).
    pub fn range(&self, start: usize, len: usize) -> Vec<f64> {
        (start..start + len).map(|n| self.sample(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::rms;
    use crate::synth::scenario::{RaceProfile, ScenarioConfig};

    fn synth() -> (RaceScenario, AudioSynth) {
        let sc = RaceScenario::generate(ScenarioConfig::new(RaceProfile::German, 120));
        let audio = AudioSynth::new(&sc);
        (sc, audio)
    }

    use crate::synth::scenario::RaceScenario;

    #[test]
    fn clips_are_deterministic_and_sized() {
        let (_, a) = synth();
        let c1 = a.clip(42);
        let c2 = a.clip(42);
        assert_eq!(c1.len(), CLIP_SAMPLES);
        assert_eq!(c1, c2);
        // range() agrees with clip().
        let r = a.range(42 * CLIP_SAMPLES, CLIP_SAMPLES);
        assert_eq!(c1, r);
    }

    #[test]
    fn samples_stay_in_range() {
        let (_, a) = synth();
        for idx in [0, 10, 100, 500] {
            assert!(a.clip(idx).iter().all(|&x| (-1.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn speech_clips_are_louder_than_silent_ones() {
        let (sc, a) = synth();
        let speech_clip = (0..sc.n_clips).find(|&c| sc.is_speech(c)).unwrap();
        let silent_clip = (0..sc.n_clips)
            .find(|&c| !sc.is_speech(c) && !sc.is_live(c))
            .unwrap();
        // Average several clips to smooth syllable gaps.
        let avg =
            |start: usize| -> f64 { (0..5).map(|k| rms(&a.clip(start + k))).sum::<f64>() / 5.0 };
        assert!(
            avg(speech_clip) > avg(silent_clip) * 1.2,
            "speech {} vs silence {}",
            avg(speech_clip),
            avg(silent_clip)
        );
    }

    #[test]
    fn excited_speech_is_louder_than_calm_speech() {
        let (sc, a) = synth();
        let excited: Vec<usize> = (0..sc.n_clips).filter(|&c| sc.is_excited(c)).collect();
        let calm: Vec<usize> = (0..sc.n_clips)
            .filter(|&c| sc.is_speech(c) && !sc.is_excited(c))
            .collect();
        assert!(!excited.is_empty() && !calm.is_empty());
        let mean_rms = |clips: &[usize]| -> f64 {
            clips.iter().map(|&c| rms(&a.clip(c))).sum::<f64>() / clips.len() as f64
        };
        assert!(
            mean_rms(&excited) > mean_rms(&calm) * 1.3,
            "excited {} vs calm {}",
            mean_rms(&excited),
            mean_rms(&calm)
        );
    }

    #[test]
    fn live_race_has_more_engine_noise_than_pre_race() {
        let (sc, a) = synth();
        // Find silent (no speech) clips pre-race and mid-race.
        let pre = (0..sc.live.start).find(|&c| !sc.is_speech(c));
        let mid = (sc.live.start..sc.live.end).find(|&c| !sc.is_speech(c));
        if let (Some(pre), Some(mid)) = (pre, mid) {
            assert!(rms(&a.clip(mid)) > rms(&a.clip(pre)));
        }
    }

    #[test]
    fn hash_noise_is_deterministic_and_bounded() {
        for n in 0..1000u64 {
            let v = noise(7, n);
            assert!((-1.0..1.0).contains(&v));
            assert_eq!(v, noise(7, n));
        }
        assert_ne!(noise(7, 3), noise(8, 3));
    }
}
