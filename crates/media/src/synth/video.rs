//! Frame rendering of the broadcast video.
//!
//! [`VideoSynth`] renders any 384×288 RGB frame of the broadcast
//! deterministically (random access, like the audio path). The rendering
//! is simple but carries exactly the visual structure §5.3 relies on:
//!
//! * a panning **track scene** (sky / curbs / track / grass bands with
//!   moving trackside stripes) whose palette changes at every **camera
//!   cut**, so multi-frame histogram differencing finds shot boundaries,
//! * **cars** as colored blocks; during a passing event on a
//!   high-fidelity profile one car visibly overtakes the other, giving
//!   the motion histogram its bimodal signature, while profile *camera
//!   jitter* shakes the whole scene and decorrelates the cue,
//! * the **start semaphore**: a rectangular row of red lights that grows
//!   horizontally at a fixed frame interval,
//! * **fly-outs**: sand and dust plumes (color-filterable regions),
//! * **replays**: the original event footage re-rendered, delimited by
//!   DVE wipes at both ends,
//! * **captions**: a shaded box at the bottom of the picture with
//!   high-contrast bitmap text — the assumptions §5.4's text detector
//!   exploits.

use crate::font;
use crate::frame::{Frame, FrameBuf, HEIGHT, WIDTH};
use crate::synth::scenario::{EventKind, RaceScenario};
use crate::time::{clips_per_second, VIDEO_FPS};

/// Deterministic random-access video renderer for one scenario.
pub struct VideoSynth<'a> {
    scenario: &'a RaceScenario,
    seed: u64,
}

fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hunit(seed: u64, x: u64) -> f64 {
    (hash64(seed ^ x) >> 11) as f64 / (1u64 << 53) as f64
}

/// Number of frames a DVE wipe lasts.
pub const WIPE_FRAMES: usize = 10;

/// Vertical band layout of the track scene.
const SKY_END: usize = HEIGHT / 4;
#[allow(dead_code)]
const CURB_END: usize = HEIGHT / 4 + 12;
const TRACK_END: usize = HEIGHT * 3 / 4;

/// The caption box geometry (bottom of the picture, per §5.4).
pub const CAPTION_Y: usize = HEIGHT - 40;
/// Caption box height.
pub const CAPTION_H: usize = 32;

impl<'a> VideoSynth<'a> {
    /// Creates a renderer over a scenario.
    pub fn new(scenario: &'a RaceScenario) -> Self {
        VideoSynth {
            scenario,
            seed: scenario.config.seed ^ 0x51DE0,
        }
    }

    /// Total frames in the broadcast.
    pub fn n_frames(&self) -> usize {
        self.scenario.n_frames()
    }

    /// Shot index covering a frame (count of cuts at or before it).
    pub fn shot_of(&self, frame: usize) -> usize {
        self.scenario.shot_cuts.partition_point(|&c| c <= frame)
    }

    fn clip_of(&self, frame: usize) -> usize {
        frame * clips_per_second() / VIDEO_FPS
    }

    /// Renders frame `idx`, replays and captions included.
    pub fn frame(&self, idx: usize) -> Frame {
        let clip = self.clip_of(idx);
        let mut fb = if let Some(r) = self.scenario.replays.iter().find(|r| r.span.contains(clip)) {
            // Replay: re-show the source footage, wrapped in DVE wipes.
            let replay_start = r.span.start * VIDEO_FPS / clips_per_second();
            let replay_end = r.span.end * VIDEO_FPS / clips_per_second();
            let source_start = r.source.start * VIDEO_FPS / clips_per_second();
            let inner = idx - replay_start;
            let src = self.render_scene(source_start + inner);
            let into_start = idx.saturating_sub(replay_start);
            let until_end = replay_end.saturating_sub(idx + 1);
            if into_start < WIPE_FRAMES || until_end < WIPE_FRAMES {
                let live = self.render_scene(idx);
                let progress = if into_start < WIPE_FRAMES {
                    into_start as f64 / WIPE_FRAMES as f64
                } else {
                    until_end as f64 / WIPE_FRAMES as f64
                };
                wipe(&live, &src, progress)
            } else {
                src
            }
        } else {
            self.render_scene(idx)
        };
        self.draw_captions(&mut fb, idx);
        fb.freeze()
    }

    /// The raw scene (no replay indirection, no captions) — exposed so
    /// tests can inspect the underlying footage.
    fn render_scene(&self, idx: usize) -> FrameBuf {
        let clip = self.clip_of(idx);
        let shot = self.shot_of(idx);
        let sseed = hash64(self.seed ^ (shot as u64).wrapping_mul(0x1234_5677));

        // Camera pan + profile jitter.
        let pan_speed = 1.0 + 3.0 * hunit(sseed, 1);
        let jitter = self.scenario.camera_jitter;
        let shake = ((hunit(self.seed, idx as u64 * 31 + 7) - 0.5) * 24.0 * jitter) as isize;
        let pan = (idx as f64 * pan_speed) as isize + shake;
        // Handheld shear: jittery profiles stretch/compress the scene
        // horizontally frame to frame, so block motion varies across the
        // picture — this is what defeats the passing cue outside the
        // steady German camera work.
        let shear = (hunit(self.seed, idx as u64 * 77 + 13) - 0.5) * 24.0 * jitter;

        // Palette varies per shot so histograms change across cuts.
        let sky = [
            100 + (hunit(sseed, 2) * 80.0) as u8,
            140 + (hunit(sseed, 3) * 60.0) as u8,
            200 + (hunit(sseed, 4) * 40.0) as u8,
        ];
        let track = [
            90 + (hunit(sseed, 5) * 40.0) as u8,
            90 + (hunit(sseed, 5) * 40.0) as u8,
            95 + (hunit(sseed, 5) * 40.0) as u8,
        ];
        let grass = [
            20 + (hunit(sseed, 6) * 30.0) as u8,
            120 + (hunit(sseed, 7) * 80.0) as u8,
            30 + (hunit(sseed, 8) * 30.0) as u8,
        ];

        // Band geometry varies per shot (wide shots show more sky, tight
        // shots more asphalt) — this shifts histogram *proportions*, the
        // signal the shot detector keys on.
        let sky_end = SKY_END - 20 + (hunit(sseed, 13) * 40.0) as usize;
        let curb_end = sky_end + 12;
        let track_end = TRACK_END - 24 + (hunit(sseed, 14) * 48.0) as usize;

        let mut fb = FrameBuf::filled(WIDTH, HEIGHT, track);
        fb.fill_rect(0, 0, WIDTH, sky_end, sky);
        fb.fill_rect(0, track_end, WIDTH, HEIGHT - track_end, grass);

        // Moving curb stripes (red/white) below the sky: texture that
        // makes camera pan visible to the motion estimator.
        // Curb palette and stripe period vary per shot (different corners
        // of the track look different), which is what the histogram shot
        // detector keys on.
        // Stripe blocks are *aperiodic* (hashed world coordinate): a
        // periodic pattern would alias under the motion estimator's ±16 px
        // search and wreck the passing cue.
        let stripe_a = [
            170 + (hunit(sseed, 10) * 80.0) as u8,
            30 + (hunit(sseed, 11) * 60.0) as u8,
            30 + (hunit(sseed, 12) * 60.0) as u8,
        ];
        for x in 0..WIDTH {
            let sheared = pan + (shear * x as f64 / WIDTH as f64) as isize;
            let world = (x as isize + sheared).div_euclid(16);
            // Four distinct stripe colors: a two-color pattern aliases
            // under block matching far too often.
            let color = match hash64(self.seed ^ 0xCCB5 ^ world as u64) & 3 {
                0 => stripe_a,
                1 => [225, 225, 225],
                2 => [40, 60, 160],
                _ => [210, 190, 60],
            };
            fb.fill_rect(x, sky_end, 1, curb_end - sky_end, color);
        }
        // Asphalt texture: 2-D hashed patches in world coordinates. Every
        // 8×8 patch gets its own shade, so no two stretches of track look
        // alike to the block matcher (1-D stripe patterns alias).
        for y in curb_end..track_end {
            for x in 0..WIDTH {
                let sheared = pan + (shear * x as f64 / WIDTH as f64) as isize;
                let world = x as isize + sheared;
                let cell_x = world.div_euclid(8) as u64;
                let cell_y = (y / 8) as u64;
                let h = hash64(self.seed ^ 0x7AC4 ^ cell_x.wrapping_mul(0x0100_0001) ^ cell_y);
                if h % 5 < 2 {
                    let shade = 112 + ((h >> 16) % 5) as u8 * 9;
                    fb.set(x, y, [shade, shade, shade + 8]);
                }
            }
        }

        // Cars: the camera tracks the leading pack, so cars sit near the
        // screen centre (slow wander) while the background pans past.
        let event = self.scenario.event_at(clip);
        let passing = matches!(event.map(|e| e.kind), Some(EventKind::Passing));
        let fidelity = self.scenario.passing_motion_fidelity;
        let car_y = curb_end + (track_end - curb_end) / 2;
        let car_a_x = WIDTH as isize / 2 - 70;
        // During a passing event on a faithful profile, car B sweeps from
        // 160 px behind to 160 px ahead of car A — two motion populations
        // with a clearly measurable velocity difference.
        let rel = if passing {
            let span = event.expect("passing event").span;
            let start_frame = span.start * VIDEO_FPS / clips_per_second();
            let progress = (idx.saturating_sub(start_frame)) as f64
                / ((span.len() * VIDEO_FPS / clips_per_second()).max(1)) as f64;
            -160.0 + fidelity * progress.clamp(0.0, 1.0) * 320.0
        } else {
            -160.0
        };
        let car_b_x = car_a_x + rel as isize;
        draw_car(&mut fb, car_a_x, car_y, [220, 20, 20]); // red car
        draw_car(&mut fb, car_b_x, car_y + 18, [215, 215, 230]); // silver car

        // Start semaphore: a row of red lights growing at a fixed interval.
        if let Some(e) = event {
            if e.kind == EventKind::Start {
                let start_frame = e.span.start * VIDEO_FPS / clips_per_second();
                // The paper: the red circles touch, forming a rectangular
                // shape that grows horizontally at a constant frame
                // interval.
                let step = (idx.saturating_sub(start_frame)) / (VIDEO_FPS); // one light per second
                let lights = (1 + step).min(5);
                let lw = 14usize;
                let x0 = WIDTH / 2 - (5 * lw) / 2;
                fb.fill_rect(x0 - 4, 20, 5 * lw + 8, 26, [15, 15, 15]);
                fb.fill_rect(x0, 24, lights * lw, 18, [230, 20, 20]);
            }
            if e.kind == EventKind::FlyOut {
                // Sand plume on the right half plus dust above it; coverage
                // ramps over the event.
                let span = e.span;
                let start_frame = span.start * VIDEO_FPS / clips_per_second();
                let progress = ((idx.saturating_sub(start_frame)) as f64
                    / ((span.len() * VIDEO_FPS / clips_per_second()).max(1)) as f64)
                    .min(1.0);
                let coverage = 0.3 + 0.6 * (1.0 - (2.0 * progress - 1.0).abs());
                for y in curb_end..track_end + 30 {
                    for x in WIDTH / 2..WIDTH {
                        if hunit(
                            self.seed ^ 0x5A4D,
                            (idx / 3 * 1_000_000 + y * 1000 + x) as u64,
                        ) < coverage
                        {
                            let dust = y < curb_end + 40;
                            let c = if dust {
                                [185, 175, 160]
                            } else {
                                [210, 180, 110]
                            };
                            fb.set(x, y, c);
                        }
                    }
                }
            }
        }
        fb
    }

    /// Draws any active captions onto a frame buffer.
    fn draw_captions(&self, fb: &mut FrameBuf, idx: usize) {
        for c in &self.scenario.captions {
            if (c.start_frame..c.end_frame).contains(&idx) {
                // Shaded dark box at the bottom with high-contrast text,
                // exactly the §5.4 assumptions.
                let tw = font::text_width(&c.text) * 2;
                let x0 = (WIDTH.saturating_sub(tw + 16)) / 2;
                fb.blend_rect(x0, CAPTION_Y, tw + 16, CAPTION_H, [10, 10, 30], 215);
                font::draw_text(fb, x0 + 8, CAPTION_Y + 8, 2, [250, 240, 120], &c.text);
            }
        }
    }
}

fn draw_car(fb: &mut FrameBuf, x: isize, y: usize, color: [u8; 3]) {
    // Strongly textured, *aperiodic* livery so block matching locks onto
    // the car rather than the background (and cannot alias onto a
    // repeated stripe period).
    for dy in 0..28usize {
        for dx in 0..56usize {
            let xx = x + dx as isize;
            if xx >= 0 {
                let h = hash64(0xCA2 ^ (dx as u64 / 5).wrapping_mul(0x9E37)) & 3;
                let c = match h {
                    0 => [15, 15, 15],
                    1 => [250, 250, 250],
                    _ => color,
                };
                fb.set(xx as usize, y + dy, c);
            }
        }
    }
    // Bright canopy flash.
    for dx in 18..30usize {
        let xx = x + dx as isize;
        if xx >= 0 {
            fb.set(xx as usize, y + 4, [250, 250, 250]);
            fb.set(xx as usize, y + 5, [250, 250, 250]);
        }
    }
}

/// Horizontal DVE wipe: left `progress` of the width shows `to`, the rest
/// shows `from`, separated by the bright border bar real DVE generators
/// draw at the transition edge.
fn wipe(from: &FrameBuf, to: &FrameBuf, progress: f64) -> FrameBuf {
    let mut out = from.clone();
    let edge = (progress.clamp(0.0, 1.0) * WIDTH as f64) as usize;
    for y in 0..HEIGHT {
        for x in 0..edge {
            out.set(x, y, to.get(x, y));
        }
    }
    // The DVE border: a 5-px full-height white bar at the moving edge.
    if edge > 0 && edge < WIDTH {
        out.fill_rect(edge.saturating_sub(2), 0, 5, HEIGHT, [255, 255, 255]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::scenario::{RaceProfile, ScenarioConfig};

    fn setup(profile: RaceProfile) -> (RaceScenario, u64) {
        let sc = RaceScenario::generate(ScenarioConfig::new(profile, 180));
        let seed = sc.config.seed;
        (sc, seed)
    }

    #[test]
    fn frames_are_deterministic() {
        let (sc, _) = setup(RaceProfile::German);
        let v = VideoSynth::new(&sc);
        assert_eq!(v.frame(100), v.frame(100));
        assert_ne!(v.frame(100), v.frame(101));
    }

    #[test]
    fn shot_cuts_change_the_scene_abruptly() {
        let (sc, _) = setup(RaceProfile::German);
        let v = VideoSynth::new(&sc);
        let cut = sc.shot_cuts[1];
        let before = v.frame(cut - 1);
        let at = v.frame(cut);
        let within = v.frame(cut - 2);
        let diff_cut = before.mean_abs_diff(&at);
        let diff_within = within.mean_abs_diff(&before);
        assert!(
            diff_cut > diff_within * 2.0,
            "cut diff {diff_cut} vs within-shot {diff_within}"
        );
    }

    #[test]
    fn semaphore_reddens_the_top_during_start() {
        let (sc, _) = setup(RaceProfile::German);
        let v = VideoSynth::new(&sc);
        let start = &sc.events[0];
        let f = start.span.start * VIDEO_FPS / clips_per_second() + 30;
        let frame = v.frame(f);
        let red = frame.fraction_matching(WIDTH / 2 - 40, 20, 80, 26, |[r, g, b]| {
            r > 180 && g < 80 && b < 80
        });
        assert!(red > 0.1, "semaphore red fraction {red}");
        // No semaphore long after the start.
        let later = v.frame(f + 60 * VIDEO_FPS);
        let red_later = later.fraction_matching(WIDTH / 2 - 40, 20, 80, 26, |[r, g, b]| {
            r > 180 && g < 80 && b < 80
        });
        assert!(red_later < red / 2.0);
    }

    #[test]
    fn semaphore_grows_with_time() {
        let (sc, _) = setup(RaceProfile::German);
        let v = VideoSynth::new(&sc);
        let start_frame = sc.events[0].span.start * VIDEO_FPS / clips_per_second();
        let count_red = |f: usize| {
            v.frame(f)
                .fraction_matching(0, 0, WIDTH, 50, |[r, g, b]| r > 180 && g < 80 && b < 80)
        };
        assert!(count_red(start_frame + 3 * VIDEO_FPS) > count_red(start_frame + 2));
    }

    #[test]
    fn fly_out_fills_the_scene_with_sand() {
        let (sc, _) = setup(RaceProfile::German);
        let v = VideoSynth::new(&sc);
        let fly = sc
            .events
            .iter()
            .find(|e| e.kind == EventKind::FlyOut)
            .expect("german race has fly-outs");
        let mid = (fly.span.start + fly.span.len() / 2) * VIDEO_FPS / clips_per_second();
        let sandy = |f: &Frame| {
            f.fraction_matching(
                WIDTH / 2,
                CURB_END,
                WIDTH / 2,
                TRACK_END - CURB_END,
                |[r, g, b]| r > 180 && g > 140 && b < 160,
            )
        };
        let during = sandy(&v.frame(mid));
        let calm_clip = (2..sc.n_clips.saturating_sub(2))
            .find(|&c| {
                (c - 2..=c + 2)
                    .all(|k| sc.is_live(k) && sc.event_at(k).is_none() && !sc.is_replay(k))
            })
            .unwrap();
        let outside = sandy(&v.frame(calm_clip * VIDEO_FPS / clips_per_second()));
        assert!(
            during > outside + 0.2,
            "sand during {during} vs outside {outside}"
        );
    }

    #[test]
    fn replay_reuses_source_footage_between_wipes() {
        let (sc, _) = setup(RaceProfile::German);
        let v = VideoSynth::new(&sc);
        let r = sc.replays.first().expect("german race has replays");
        let cps = clips_per_second();
        let replay_mid_frame = (r.span.start * VIDEO_FPS / cps) + WIPE_FRAMES + 5;
        let src_frame = (r.source.start * VIDEO_FPS / cps)
            + (replay_mid_frame - r.span.start * VIDEO_FPS / cps);
        // Compare a caption-free region (top half): the replayed frame
        // shows the source scene.
        let rep = v.frame(replay_mid_frame);
        let src = v.frame(src_frame);
        let mut same = 0usize;
        let mut total = 0usize;
        for y in (0..TRACK_END).step_by(4) {
            for x in (0..WIDTH).step_by(4) {
                total += 1;
                if rep.get(x, y) == src.get(x, y) {
                    same += 1;
                }
            }
        }
        assert!(
            same as f64 / total as f64 > 0.9,
            "replay matches source on {same}/{total} samples"
        );
    }

    #[test]
    fn captions_darken_the_bottom_and_show_text() {
        let (sc, _) = setup(RaceProfile::German);
        let v = VideoSynth::new(&sc);
        let cap = sc
            .captions
            .iter()
            .find(|c| c.kind == crate::synth::scenario::CaptionKind::PitStop)
            .expect("pit stop caption");
        let f = v.frame(cap.start_frame + 2);
        // Bright yellow glyph pixels present in the caption band.
        let ink = f.fraction_matching(0, CAPTION_Y, WIDTH, CAPTION_H, |[r, g, b]| {
            r > 200 && g > 190 && b < 170
        });
        assert!(ink > 0.01, "caption ink fraction {ink}");
        // Same frame without captions has none.
        let f_no = v.frame(cap.end_frame + 5);
        let ink_no = f_no.fraction_matching(0, CAPTION_Y, WIDTH, CAPTION_H, |[r, g, b]| {
            r > 200 && g > 190 && b < 170
        });
        assert!(ink_no < ink / 4.0);
    }

    #[test]
    fn belgian_profile_shakes_the_camera_more() {
        let (g, _) = setup(RaceProfile::German);
        let (b, _) = setup(RaceProfile::Belgian);
        let vg = VideoSynth::new(&g);
        let vb = VideoSynth::new(&b);
        // Mean consecutive-frame difference averaged over *many* calm
        // spots: per-shot pan speed is random, so a single window would
        // compare pans, not camera shake.
        let calm_clips = |sc: &RaceScenario| -> Vec<usize> {
            (2..sc.n_clips.saturating_sub(2))
                .filter(|&c| {
                    (c - 1..=c + 1)
                        .all(|k| sc.is_live(k) && sc.event_at(k).is_none() && !sc.is_replay(k))
                })
                .step_by(37)
                .take(12)
                .collect()
        };
        let motion = |v: &VideoSynth, sc: &RaceScenario| -> f64 {
            let clips = calm_clips(sc);
            let mut acc = 0.0;
            let mut n = 0.0;
            for &c in &clips {
                let f0 = c * VIDEO_FPS / clips_per_second();
                for k in 0..3 {
                    acc += v.frame(f0 + k).mean_abs_diff(&v.frame(f0 + k + 1));
                    n += 1.0;
                }
            }
            acc / n
        };
        let mg = motion(&vg, &g);
        let mb = motion(&vb, &b);
        assert!(mb > mg, "belgian motion {mb} should exceed german {mg}");
    }
}
