//! The ground-truth race timeline.
//!
//! A [`RaceScenario`] is drawn from a seeded RNG and a [`RaceProfile`]
//! that mimics one of the paper's three races. It records, on the 0.1 s
//! clip grid, everything the evaluation needs: the start, passings,
//! fly-outs, pit stops, replays, announcer speech and excitement,
//! keywords, superimposed captions, camera cuts and the evolving
//! classification. The audio/video synthesizers render raw signals from
//! it, and the experiments score detections against it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::{clips_in_seconds, clips_per_second, VIDEO_FPS};

/// The 2001 drivers used by captions and queries.
pub const DRIVERS: [&str; 8] = [
    "SCHUMACHER",
    "BARRICHELLO",
    "HAKKINEN",
    "COULTHARD",
    "MONTOYA",
    "RALF",
    "VILLENEUVE",
    "TRULLI",
];

/// A driver index into [`DRIVERS`].
pub type DriverId = usize;

/// One of the paper's three evaluation races. Profiles differ in event
/// statistics and, crucially, *camera work*: the paper attributes the
/// passing sub-network's failure outside the German GP to different
/// camera work, so the Belgian and USA profiles jitter the camera and
/// decorrelate the motion cue from actual passings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RaceProfile {
    /// Steady camera work; passings, fly-outs.
    German,
    /// Hectic camera work; the motion cue fires spuriously.
    Belgian,
    /// Moderate camera work; **no fly-outs** (the paper's footnote 3).
    Usa,
}

impl RaceProfile {
    fn params(self) -> ProfileParams {
        match self {
            RaceProfile::German => ProfileParams {
                passing_every_s: 80,
                n_fly_outs: 3,
                camera_jitter: 0.08,
                passing_motion_fidelity: 0.9,
                catch_rate: 0.85,
            },
            RaceProfile::Belgian => ProfileParams {
                passing_every_s: 95,
                n_fly_outs: 3,
                camera_jitter: 0.55,
                passing_motion_fidelity: 0.25,
                catch_rate: 0.8,
            },
            RaceProfile::Usa => ProfileParams {
                passing_every_s: 110,
                n_fly_outs: 0,
                camera_jitter: 0.3,
                passing_motion_fidelity: 0.45,
                catch_rate: 0.8,
            },
        }
    }

    /// Lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            RaceProfile::German => "german",
            RaceProfile::Belgian => "belgian",
            RaceProfile::Usa => "usa",
        }
    }
}

struct ProfileParams {
    passing_every_s: usize,
    n_fly_outs: usize,
    camera_jitter: f64,
    passing_motion_fidelity: f64,
    catch_rate: f64,
}

/// Scenario generation parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ScenarioConfig {
    /// Which race to imitate.
    pub profile: RaceProfile,
    /// RNG seed; equal configs generate identical scenarios.
    pub seed: u64,
    /// Broadcast duration in seconds (the real races run ≈ 5400 s; the
    /// experiments use shorter cuts).
    pub duration_s: usize,
}

impl ScenarioConfig {
    /// A scenario config with the conventional seed for a profile.
    pub fn new(profile: RaceProfile, duration_s: usize) -> Self {
        // Grouped as 0xF1_YYYY_MM: the 2001 race dates, not byte boundaries.
        #[allow(clippy::unusual_byte_groupings)]
        let seed = match profile {
            RaceProfile::German => 0xF1_2001_07,
            RaceProfile::Belgian => 0xF1_2001_09,
            RaceProfile::Usa => 0xF1_2001_10,
        };
        ScenarioConfig {
            profile,
            seed,
            duration_s,
        }
    }
}

/// A half-open clip interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Span {
    /// First clip.
    pub start: usize,
    /// One past the last clip.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(end >= start);
        Span { start, end }
    }

    /// True when `clip` falls inside.
    pub fn contains(&self, clip: usize) -> bool {
        (self.start..self.end).contains(&clip)
    }

    /// Length in clips.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A race event with its span and the driver involved (if any).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// When (clip grid).
    pub span: Span,
    /// Primary driver involved.
    pub driver: Option<DriverId>,
}

/// Event kinds the audio-visual DBN classifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EventKind {
    /// The race start.
    Start,
    /// One car passing another.
    Passing,
    /// A car leaving the track into sand/gravel.
    FlyOut,
    /// A pit stop.
    PitStop,
}

/// Semantic class of a superimposed caption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CaptionKind {
    /// Running order (one line: position + driver).
    Classification,
    /// "PIT STOP <driver>".
    PitStop,
    /// "FASTEST LAP <driver> <time>".
    FastestLap,
    /// "FINAL LAP".
    FinalLap,
    /// "WINNER <driver>".
    Winner,
}

/// A caption overlay: the exact text drawn on the frames.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Caption {
    /// Semantic class.
    pub kind: CaptionKind,
    /// Rendered text.
    pub text: String,
    /// First video frame showing the caption.
    pub start_frame: usize,
    /// One past the last video frame.
    pub end_frame: usize,
    /// Driver the caption is about, if any.
    pub driver: Option<DriverId>,
}

/// A replay: the span it airs in and the event footage it re-shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Replay {
    /// When the replay airs.
    pub span: Span,
    /// The original footage being replayed.
    pub source: Span,
}

/// A keyword utterance in the commentary.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KeywordHit {
    /// The word.
    pub word: String,
    /// Clip at which it is spoken.
    pub clip: usize,
}

/// A complete ground-truth race timeline.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RaceScenario {
    /// Generation parameters.
    pub config: ScenarioConfig,
    /// Number of clips in the broadcast.
    pub n_clips: usize,
    /// All race events (start, passings, fly-outs, pit stops), by time.
    pub events: Vec<Event>,
    /// Replays (always re-showing interesting events).
    pub replays: Vec<Replay>,
    /// Spans where the announcer speaks.
    pub speech: Vec<Span>,
    /// Spans where the announcer is *excited* (ground truth for the audio
    /// DBN experiments).
    pub excited: Vec<Span>,
    /// Keyword utterances.
    pub keywords: Vec<KeywordHit>,
    /// Superimposed captions.
    pub captions: Vec<Caption>,
    /// Video frames at which a camera cut occurs (shot boundaries).
    pub shot_cuts: Vec<usize>,
    /// Clip at which the race goes live (start) and ends.
    pub live: Span,
    /// Classification snapshots `(clip, order)` — order[p] = driver at
    /// position p+1. The first snapshot is the grid order.
    pub standings: Vec<(usize, Vec<DriverId>)>,
    /// Camera jitter in `[0, 1]` (profile dependent; drives the motion
    /// cue's noise).
    pub camera_jitter: f64,
    /// How faithfully the motion cue tracks passings in `[0, 1]`.
    pub passing_motion_fidelity: f64,
}

impl RaceScenario {
    /// Generates a scenario from a config.
    pub fn generate(config: ScenarioConfig) -> Self {
        let params = config.profile.params();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let cps = clips_per_second();
        let n_clips = clips_in_seconds(config.duration_s);

        // --- race events -------------------------------------------------
        let mut events = Vec::new();
        // Start: 10–20 s into the broadcast, 6–9 s long.
        let start_at = rng.gen_range(10 * cps..20 * cps).min(n_clips / 4);
        let start_len = rng.gen_range(6 * cps..9 * cps);
        let start_span = Span::new(start_at, (start_at + start_len).min(n_clips));
        events.push(Event {
            kind: EventKind::Start,
            span: start_span,
            driver: None,
        });

        let live_end = n_clips.saturating_sub(5 * cps);
        let live = Span::new(start_at, live_end);

        // Passings.
        let mut t = start_span.end + rng.gen_range(10 * cps..30 * cps);
        while t + 14 * cps < live_end {
            let len = rng.gen_range(7 * cps..12 * cps);
            events.push(Event {
                kind: EventKind::Passing,
                span: Span::new(t, t + len),
                driver: Some(rng.gen_range(0..DRIVERS.len())),
            });
            t += len
                + rng.gen_range(
                    params.passing_every_s * cps / 2..params.passing_every_s * cps * 3 / 2,
                );
        }

        // Fly-outs: spread over the live race, avoiding other events.
        for _ in 0..params.n_fly_outs {
            let len = rng.gen_range(7 * cps..12 * cps);
            if let Some(at) = place_gap(&mut rng, &events, start_span.end, live_end, len, 4 * cps) {
                events.push(Event {
                    kind: EventKind::FlyOut,
                    span: Span::new(at, at + len),
                    driver: Some(rng.gen_range(0..DRIVERS.len())),
                });
            }
        }

        // Pit stops: 2–4, drivers distinct where possible.
        let n_pits = rng.gen_range(2..=4);
        for i in 0..n_pits {
            let len = rng.gen_range(4 * cps..7 * cps);
            if let Some(at) = place_gap(&mut rng, &events, start_span.end, live_end, len, 4 * cps) {
                events.push(Event {
                    kind: EventKind::PitStop,
                    span: Span::new(at, at + len),
                    driver: Some(i % DRIVERS.len()),
                });
            }
        }
        events.sort_by_key(|e| e.span.start);

        // --- replays ------------------------------------------------------
        let mut replays = Vec::new();
        for e in &events {
            if e.kind == EventKind::PitStop {
                continue; // pit stops are rarely replayed
            }
            if rng.gen_bool(0.8) {
                let delay = rng.gen_range(3 * cps..8 * cps);
                let at = e.span.end + delay;
                let len = e.span.len().min(10 * cps);
                if at + len < n_clips {
                    replays.push(Replay {
                        span: Span::new(at, at + len),
                        source: Span::new(e.span.start, e.span.start + len),
                    });
                }
            }
        }

        // --- commentary ---------------------------------------------------
        // Announcer speech: alternating talk spans and pauses.
        let mut speech = Vec::new();
        let mut t = rng.gen_range(0..3 * cps);
        while t < n_clips {
            let talk = rng.gen_range(5 * cps..20 * cps);
            let end = (t + talk).min(n_clips);
            speech.push(Span::new(t, end));
            t = end + rng.gen_range(cps..5 * cps);
        }

        // Excitement: events the announcer catches, plus spontaneous
        // bursts.
        let mut excited = Vec::new();
        for e in &events {
            if e.kind == EventKind::PitStop {
                continue;
            }
            if rng.gen_bool(params.catch_rate) {
                let lead = rng.gen_range(0..2 * cps);
                let tail = rng.gen_range(cps..4 * cps);
                let s = e.span.start.saturating_sub(lead);
                let end = (e.span.end + tail).min(n_clips);
                excited.push(Span::new(s, end));
            }
        }
        let spontaneous = config.duration_s / 300; // ~1 per 5 minutes
        for _ in 0..spontaneous {
            let len = rng.gen_range(3 * cps..6 * cps);
            if let Some(at) = place_gap_spans(&mut rng, &excited, 0, n_clips, len, 10 * cps) {
                excited.push(Span::new(at, at + len));
            }
        }
        excited.sort_by_key(|s| s.start);
        // Excitement implies speech.
        for s in &excited {
            speech.push(*s);
        }
        speech.sort_by_key(|s| s.start);
        let speech = merge_spans(&speech);
        let excited = merge_spans(&excited);

        // Keywords: clustered inside excited spans, occasional elsewhere.
        const WORDS: [&str; 8] = [
            "INCREDIBLE",
            "OVERTAKE",
            "CRASH",
            "GRAVEL",
            "LEADER",
            "PITSTOP",
            "FASTEST",
            "ATTACK",
        ];
        let mut keywords = Vec::new();
        for s in &excited {
            let n = rng.gen_range(1..=3);
            for _ in 0..n {
                let clip = rng.gen_range(s.start..s.end.max(s.start + 1));
                keywords.push(KeywordHit {
                    word: WORDS[rng.gen_range(0..WORDS.len())].to_string(),
                    clip,
                });
            }
        }
        for s in &speech {
            if rng.gen_bool(0.25) && s.len() > 2 {
                keywords.push(KeywordHit {
                    word: WORDS[rng.gen_range(0..WORDS.len())].to_string(),
                    clip: rng.gen_range(s.start..s.end),
                });
            }
        }
        keywords.sort_by_key(|k| k.clip);

        // --- standings & captions ------------------------------------------
        let mut order: Vec<DriverId> = (0..DRIVERS.len()).collect();
        let mut standings = vec![(0usize, order.clone())];
        for e in &events {
            if e.kind == EventKind::Passing {
                // The passing driver gains one position.
                if let Some(d) = e.driver {
                    if let Some(pos) = order.iter().position(|&x| x == d) {
                        if pos > 0 {
                            order.swap(pos, pos - 1);
                            standings.push((e.span.end, order.clone()));
                        }
                    }
                }
            }
        }

        let fps = VIDEO_FPS;
        let clip_to_frame = |clip: usize| clip * fps / cps;
        let mut captions = Vec::new();
        // Periodic classification captions (leader line).
        let mut t = start_span.end + 20 * cps;
        while t + 4 * cps < live_end {
            let order_at = standings
                .iter()
                .rev()
                .find(|(c, _)| *c <= t)
                .map(|(_, o)| o.clone())
                .unwrap_or_else(|| (0..DRIVERS.len()).collect());
            let leader = order_at[0];
            captions.push(Caption {
                kind: CaptionKind::Classification,
                text: format!("1 {}", DRIVERS[leader]),
                start_frame: clip_to_frame(t),
                end_frame: clip_to_frame(t + 4 * cps),
                driver: Some(leader),
            });
            t += rng.gen_range(90 * cps..150 * cps);
        }
        // Pit stop captions.
        for e in &events {
            if e.kind == EventKind::PitStop {
                if let Some(d) = e.driver {
                    captions.push(Caption {
                        kind: CaptionKind::PitStop,
                        text: format!("PIT STOP {}", DRIVERS[d]),
                        start_frame: clip_to_frame(e.span.start),
                        end_frame: clip_to_frame(e.span.end),
                        driver: Some(d),
                    });
                }
            }
        }
        // Fastest lap somewhere mid-race.
        if live.len() > 120 * cps {
            let at = live.start + live.len() / 2;
            let d = order[rng.gen_range(0..3)];
            captions.push(Caption {
                kind: CaptionKind::FastestLap,
                text: format!(
                    "FASTEST LAP {} 1:1{}.{}",
                    DRIVERS[d],
                    rng.gen_range(0..9),
                    rng.gen_range(0..9)
                ),
                start_frame: clip_to_frame(at),
                end_frame: clip_to_frame(at + 4 * cps),
                driver: Some(d),
            });
        }
        // Final lap + winner at the end.
        if live.len() > 60 * cps {
            let fl = live_end.saturating_sub(30 * cps);
            captions.push(Caption {
                kind: CaptionKind::FinalLap,
                text: "FINAL LAP".to_string(),
                start_frame: clip_to_frame(fl),
                end_frame: clip_to_frame(fl + 3 * cps),
                driver: None,
            });
            let winner = order[0];
            captions.push(Caption {
                kind: CaptionKind::Winner,
                text: format!("WINNER {}", DRIVERS[winner]),
                start_frame: clip_to_frame(live_end),
                end_frame: clip_to_frame((live_end + 5 * cps).min(n_clips)),
                driver: Some(winner),
            });
        }
        captions.sort_by_key(|c| c.start_frame);
        // The producer shows one caption at a time: later captions that
        // would overlap an earlier one are dropped.
        let mut kept: Vec<Caption> = Vec::with_capacity(captions.len());
        for c in captions {
            if kept
                .last()
                .is_none_or(|prev: &Caption| c.start_frame >= prev.end_frame)
            {
                kept.push(c);
            }
        }
        let captions = kept;

        // --- camera cuts ----------------------------------------------------
        let n_frames = n_clips * fps / cps;
        let mut shot_cuts = Vec::new();
        let mut f = rng.gen_range(2 * fps..6 * fps);
        while f < n_frames {
            shot_cuts.push(f);
            // Faster cutting during events.
            let clip = f * cps / fps;
            let busy = events.iter().any(|e| e.span.contains(clip));
            let gap_s = if busy {
                rng.gen_range(2..5)
            } else {
                rng.gen_range(4..11)
            };
            f += gap_s * fps + rng.gen_range(0..fps);
        }

        RaceScenario {
            config,
            n_clips,
            events,
            replays,
            speech,
            excited,
            keywords,
            captions,
            shot_cuts,
            live,
            standings,
            camera_jitter: params.camera_jitter,
            passing_motion_fidelity: params.passing_motion_fidelity,
        }
    }

    /// Ground-truth *highlight* spans: every event plus every replay plus
    /// the announcer's excited follow-through on those events, merged —
    /// the paper counts replay scenes among the interesting segments, and
    /// an interesting segment runs as long as the commentary carries it.
    pub fn highlights(&self) -> Vec<Span> {
        let event_spans: Vec<Span> = self
            .events
            .iter()
            .filter(|e| e.kind != EventKind::PitStop)
            .map(|e| e.span)
            .collect();
        let mut spans: Vec<Span> = event_spans
            .iter()
            .copied()
            .chain(self.replays.iter().map(|r| r.span))
            .chain(self.excited.iter().copied().filter(|x| {
                event_spans
                    .iter()
                    .any(|e| e.start < x.end && x.start < e.end)
            }))
            .collect();
        spans.sort_by_key(|s| s.start);
        merge_spans(&spans)
    }

    /// Event spans of one kind.
    pub fn events_of(&self, kind: EventKind) -> Vec<Span> {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.span)
            .collect()
    }

    /// True when the announcer speaks during `clip`.
    pub fn is_speech(&self, clip: usize) -> bool {
        self.speech.iter().any(|s| s.contains(clip))
    }

    /// True when the announcer is excited during `clip`.
    pub fn is_excited(&self, clip: usize) -> bool {
        self.excited.iter().any(|s| s.contains(clip))
    }

    /// True when a replay is on air during `clip`.
    pub fn is_replay(&self, clip: usize) -> bool {
        self.replays.iter().any(|r| r.span.contains(clip))
    }

    /// True when the race is live (between start and finish).
    pub fn is_live(&self, clip: usize) -> bool {
        self.live.contains(clip)
    }

    /// The event (if any) covering `clip`.
    pub fn event_at(&self, clip: usize) -> Option<&Event> {
        self.events.iter().find(|e| e.span.contains(clip))
    }

    /// The classification in force at `clip` (positions → drivers).
    pub fn standings_at(&self, clip: usize) -> &[DriverId] {
        &self
            .standings
            .iter()
            .rev()
            .find(|(c, _)| *c <= clip)
            .unwrap_or(&self.standings[0])
            .1
    }

    /// Total number of video frames.
    pub fn n_frames(&self) -> usize {
        self.n_clips * VIDEO_FPS / clips_per_second()
    }
}

/// Finds a start clip for a span of `len` that keeps `margin` clips of
/// distance from every existing event.
fn place_gap(
    rng: &mut StdRng,
    events: &[Event],
    lo: usize,
    hi: usize,
    len: usize,
    margin: usize,
) -> Option<usize> {
    let spans: Vec<Span> = events.iter().map(|e| e.span).collect();
    place_gap_spans(rng, &spans, lo, hi, len, margin)
}

fn place_gap_spans(
    rng: &mut StdRng,
    spans: &[Span],
    lo: usize,
    hi: usize,
    len: usize,
    margin: usize,
) -> Option<usize> {
    if hi <= lo + len {
        return None;
    }
    for _ in 0..64 {
        let at = rng.gen_range(lo..hi - len);
        let candidate = Span::new(at.saturating_sub(margin), at + len + margin);
        if !spans
            .iter()
            .any(|s| s.start < candidate.end && candidate.start < s.end)
        {
            return Some(at);
        }
    }
    None
}

/// Merges overlapping or touching spans (input sorted by start).
pub fn merge_spans(spans: &[Span]) -> Vec<Span> {
    let mut out: Vec<Span> = Vec::with_capacity(spans.len());
    for &s in spans {
        match out.last_mut() {
            Some(last) if s.start <= last.end => {
                last.end = last.end.max(s.end);
            }
            _ => out.push(s),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(profile: RaceProfile) -> RaceScenario {
        RaceScenario::generate(ScenarioConfig::new(profile, 600))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = scenario(RaceProfile::German);
        let b = scenario(RaceProfile::German);
        assert_eq!(a.events, b.events);
        assert_eq!(a.captions, b.captions);
        assert_eq!(a.shot_cuts, b.shot_cuts);
    }

    #[test]
    fn different_seeds_differ() {
        let a = scenario(RaceProfile::German);
        let mut cfg = ScenarioConfig::new(RaceProfile::German, 600);
        cfg.seed ^= 0xDEADBEEF;
        let b = RaceScenario::generate(cfg);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn exactly_one_start_near_the_beginning() {
        for p in [RaceProfile::German, RaceProfile::Belgian, RaceProfile::Usa] {
            let s = scenario(p);
            let starts = s.events_of(EventKind::Start);
            assert_eq!(starts.len(), 1, "{p:?}");
            assert!(starts[0].start < s.n_clips / 4);
            assert_eq!(starts[0].start, s.live.start);
        }
    }

    #[test]
    fn usa_has_no_fly_outs_german_and_belgian_do() {
        assert!(
            scenario(RaceProfile::German)
                .events_of(EventKind::FlyOut)
                .len()
                >= 2
        );
        assert!(!scenario(RaceProfile::Belgian)
            .events_of(EventKind::FlyOut)
            .is_empty());
        assert!(scenario(RaceProfile::Usa)
            .events_of(EventKind::FlyOut)
            .is_empty());
    }

    #[test]
    fn events_are_ordered_and_inside_the_broadcast() {
        let s = scenario(RaceProfile::German);
        for w in s.events.windows(2) {
            assert!(w[0].span.start <= w[1].span.start);
        }
        for e in &s.events {
            assert!(e.span.end <= s.n_clips);
        }
    }

    #[test]
    fn excitement_mostly_covers_events() {
        let s = scenario(RaceProfile::German);
        let interesting: Vec<&Event> = s
            .events
            .iter()
            .filter(|e| e.kind != EventKind::PitStop)
            .collect();
        let caught = interesting
            .iter()
            .filter(|e| (e.span.start..e.span.end).any(|c| s.is_excited(c)))
            .count();
        assert!(
            caught * 10 >= interesting.len() * 6,
            "only {caught}/{} events caught",
            interesting.len()
        );
    }

    #[test]
    fn excitement_implies_speech() {
        let s = scenario(RaceProfile::Belgian);
        for clip in (0..s.n_clips).step_by(7) {
            if s.is_excited(clip) {
                assert!(s.is_speech(clip), "excited but silent at clip {clip}");
            }
        }
    }

    #[test]
    fn keywords_lie_inside_the_broadcast_and_cluster_in_excitement() {
        let s = scenario(RaceProfile::German);
        assert!(!s.keywords.is_empty());
        for k in &s.keywords {
            assert!(k.clip < s.n_clips);
        }
        let in_excited = s.keywords.iter().filter(|k| s.is_excited(k.clip)).count();
        assert!(in_excited * 2 > s.keywords.len());
    }

    #[test]
    fn highlights_merge_events_and_replays() {
        let s = scenario(RaceProfile::German);
        let hl = s.highlights();
        assert!(!hl.is_empty());
        for w in hl.windows(2) {
            assert!(w[0].end < w[1].start, "highlight spans must be disjoint");
        }
        // Every replay clip is inside a highlight.
        for r in &s.replays {
            assert!(hl
                .iter()
                .any(|h| h.start <= r.span.start && r.span.end <= h.end));
            // Replays re-show footage of the same length.
            assert_eq!(r.span.len(), r.source.len());
            assert!(r.source.start < r.span.start);
        }
    }

    #[test]
    fn captions_include_pit_stops_and_winner() {
        let s = scenario(RaceProfile::German);
        assert!(s.captions.iter().any(|c| c.kind == CaptionKind::PitStop));
        assert!(s.captions.iter().any(|c| c.kind == CaptionKind::Winner));
        assert!(s
            .captions
            .iter()
            .any(|c| c.kind == CaptionKind::Classification));
        for c in &s.captions {
            assert!(c.start_frame < c.end_frame);
            assert!(c.end_frame <= s.n_frames());
            // Text must be renderable by the caption font.
            for ch in c.text.chars() {
                assert!(crate::font::glyph(ch).is_some(), "unrenderable '{ch}'");
            }
        }
    }

    #[test]
    fn standings_evolve_with_passings() {
        let s = scenario(RaceProfile::German);
        assert!(s.standings.len() > 1, "passings should reshuffle standings");
        let first = s.standings_at(0).to_vec();
        let last = s.standings_at(s.n_clips - 1).to_vec();
        assert_eq!(first.len(), DRIVERS.len());
        assert_ne!(first, last);
        // Standings are always a permutation.
        let mut sorted = last.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..DRIVERS.len()).collect::<Vec<_>>());
    }

    #[test]
    fn shot_cuts_are_strictly_increasing_within_bounds() {
        let s = scenario(RaceProfile::Belgian);
        assert!(s.shot_cuts.len() > 20);
        for w in s.shot_cuts.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*s.shot_cuts.last().unwrap() < s.n_frames());
    }

    #[test]
    fn profiles_differ_in_camera_work() {
        let g = scenario(RaceProfile::German);
        let b = scenario(RaceProfile::Belgian);
        assert!(g.camera_jitter < b.camera_jitter);
        assert!(g.passing_motion_fidelity > b.passing_motion_fidelity);
    }

    #[test]
    fn merge_spans_joins_overlaps() {
        let spans = [Span::new(0, 10), Span::new(5, 15), Span::new(20, 25)];
        assert_eq!(
            merge_spans(&spans),
            vec![Span::new(0, 15), Span::new(20, 25)]
        );
    }
}
