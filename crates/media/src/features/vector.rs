//! Assembly of the f1…f17 evidence matrix (§5.5).
//!
//! "Feature values, extracted from the audio and video signal, are
//! represented as probabilistic values in range from zero to one. Since
//! the parameters are calculated for each 0.1s, the length of feature
//! vectors is ten times longer than the duration of the video measured in
//! seconds." This module turns the raw synthetic broadcast into exactly
//! that matrix, in the paper's feature order:
//!
//! | idx | feature | source |
//! |----:|---------|--------|
//! | 0 | f1 keywords | keyword-spotter scores (injected by the caller) |
//! | 1 | f2 pause rate | audio |
//! | 2–4 | f3–f5 STE avg / dyn / max (882–2205 Hz) | audio |
//! | 5–7 | f6–f8 pitch avg / dyn / max | audio |
//! | 8–9 | f9–f10 MFCC avg / max | audio |
//! | 10 | f11 part of race | production metadata (scenario) |
//! | 11 | f12 replay | DVE wipe detector |
//! | 12 | f13 color difference | consecutive-frame pixel difference |
//! | 13 | f14 semaphore | red-rectangle detector |
//! | 14 | f15 dust | color filter |
//! | 15 | f16 sand | color filter |
//! | 16 | f17 motion | motion-histogram spread |

use crate::features::audio::{AudioAnalyzer, AudioConfig};
use crate::features::endpoint::EndpointConfig;
use crate::features::video::{
    dust_score, motion_field, replay_spans_from_wipes, sand_score, semaphore_score, wipe_score,
    MOTION_BASELINE,
};
use crate::synth::audio::AudioSynth;
use crate::synth::scenario::RaceScenario;
use crate::synth::video::VideoSynth;
use crate::time::{clips_per_second, VIDEO_FPS};
use crate::Result;

/// Number of features in the paper's vector.
pub const N_FEATURES: usize = 17;

/// Normalization constants mapping raw feature values into `[0, 1]`.
#[derive(Debug, Clone)]
pub struct VectorConfig {
    /// Audio analysis configuration.
    pub audio: AudioConfig,
    /// Endpoint detector gating the emphasized-speech features.
    pub endpoint: EndpointConfig,
    /// Exponential squash scale for mid-band STE.
    pub ste_mid_scale: f64,
    /// Pitch normalization range in Hz.
    pub pitch_range: (f64, f64),
    /// Exponential squash scale for the MFCC statistic.
    pub mfcc_scale: f64,
    /// Scale for the color-difference motion cue.
    pub color_diff_scale: f64,
    /// Scale factors for dust and sand coverage.
    pub dust_scale: f64,
    /// Minimum / maximum replay length in frames for wipe pairing.
    pub replay_len_frames: (usize, usize),
    /// Frame stride of the wipe scan.
    pub wipe_stride: usize,
}

impl Default for VectorConfig {
    fn default() -> Self {
        VectorConfig {
            audio: AudioConfig::default(),
            endpoint: EndpointConfig::calibrated(),
            ste_mid_scale: 1.5e-3,
            pitch_range: (90.0, 350.0),
            mfcc_scale: 0.6,
            color_diff_scale: 12.0,
            dust_scale: 3.0,
            replay_len_frames: (2 * VIDEO_FPS, 20 * VIDEO_FPS),
            wipe_stride: 3,
        }
    }
}

fn squash(x: f64, scale: f64) -> f64 {
    1.0 - (-x / scale).exp()
}

fn norm_range(x: f64, lo: f64, hi: f64) -> f64 {
    ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
}

/// The per-clip feature extractor for one broadcast.
pub struct FeatureExtractor<'a> {
    scenario: &'a RaceScenario,
    audio: AudioSynth,
    video: VideoSynth<'a>,
    analyzer: AudioAnalyzer,
    cfg: VectorConfig,
}

impl<'a> FeatureExtractor<'a> {
    /// Builds an extractor over a scenario with default calibration.
    pub fn new(scenario: &'a RaceScenario) -> Result<Self> {
        Self::with_config(scenario, VectorConfig::default())
    }

    /// Builds an extractor with explicit calibration.
    pub fn with_config(scenario: &'a RaceScenario, cfg: VectorConfig) -> Result<Self> {
        Ok(FeatureExtractor {
            scenario,
            audio: AudioSynth::new(scenario),
            video: VideoSynth::new(scenario),
            analyzer: AudioAnalyzer::new(cfg.audio.clone())?,
            cfg,
        })
    }

    /// Detects replay spans over the clip range via the wipe detector and
    /// returns a per-clip flag vector.
    fn replay_flags(&self, lo_clip: usize, hi_clip: usize) -> Vec<bool> {
        let cps = clips_per_second();
        let f_lo = lo_clip * VIDEO_FPS / cps;
        let f_hi = (hi_clip * VIDEO_FPS / cps).min(self.video.n_frames().saturating_sub(1));
        let mut wipes = Vec::new();
        let mut f = f_lo;
        while f < f_hi {
            if wipe_score(&self.video.frame(f)) > 0.5 {
                wipes.push(f);
            }
            f += self.cfg.wipe_stride;
        }
        let (min_len, max_len) = self.cfg.replay_len_frames;
        let spans = replay_spans_from_wipes(&wipes, min_len, max_len);
        let mut flags = vec![false; hi_clip - lo_clip];
        for (open, close) in spans {
            let c0 = (open * cps / VIDEO_FPS).max(lo_clip);
            let c1 = ((close * cps / VIDEO_FPS) + 1).min(hi_clip);
            for c in c0..c1 {
                flags[c - lo_clip] = true;
            }
        }
        flags
    }

    /// Extracts the `[hi_clip - lo_clip] × 17` feature matrix.
    ///
    /// `keyword_scores` are the normalized keyword-spotter outputs per
    /// clip of the *whole* broadcast (indexed absolutely); pass an empty
    /// slice to zero the keyword feature.
    pub fn extract(
        &self,
        keyword_scores: &[f64],
        lo_clip: usize,
        hi_clip: usize,
    ) -> Result<Vec<Vec<f64>>> {
        let hi_clip = hi_clip.min(self.scenario.n_clips);
        // Fault site `media.vector.extract`: lets tests fail extraction
        // below the pre-processor, where a real decoder would die.
        if cobra_faults::is_armed() {
            cobra_faults::fire("media.vector.extract")?;
        }
        let cps = clips_per_second();
        let replay = self.replay_flags(lo_clip, hi_clip);
        let mut rows = Vec::with_capacity(hi_clip - lo_clip);
        for clip in lo_clip..hi_clip {
            let a = self.analyzer.analyze_clip(&self.audio.clip(clip))?;
            let speech = self.cfg.endpoint.is_speech(&a);
            // §5.2: the emphasized-speech features are "only performed on
            // speech segments obtained by the speech endpoint detection".
            let gate = if speech { 1.0 } else { 0.0 };
            let (plo, phi) = self.cfg.pitch_range;

            let f_idx = clip * VIDEO_FPS / cps;
            let last = self.video.n_frames() - 1;
            let cur = self.video.frame(f_idx);
            let next = self.video.frame((f_idx + 1).min(last));
            let far = self.video.frame((f_idx + MOTION_BASELINE).min(last));
            let field = motion_field(&cur, &far);
            // A second motion sample half a clip later makes the passing
            // cue robust to cuts and momentary occlusion.
            let mid = self
                .video
                .frame((f_idx + MOTION_BASELINE / 2 + 1).min(last));
            let far2 = self
                .video
                .frame((f_idx + MOTION_BASELINE / 2 + 1 + MOTION_BASELINE).min(last));
            let field2 = motion_field(&mid, &far2);

            let mut row = vec![0.0; N_FEATURES];
            row[0] = keyword_scores.get(clip).copied().unwrap_or(0.0);
            row[1] = a.pause_rate;
            row[2] = gate * squash(a.ste_mid.avg, self.cfg.ste_mid_scale);
            row[3] = gate * squash(a.ste_mid.dyn_range, self.cfg.ste_mid_scale);
            row[4] = gate * squash(a.ste_mid.max, self.cfg.ste_mid_scale * 2.0);
            row[5] = gate * norm_range(a.pitch.avg, plo, phi);
            row[6] = gate * norm_range(a.pitch.dyn_range, 0.0, phi - plo);
            row[7] = gate * norm_range(a.pitch.max, plo, phi);
            row[8] = gate * squash(a.mfcc3.avg, self.cfg.mfcc_scale);
            row[9] = gate * squash(a.mfcc3.max, self.cfg.mfcc_scale * 1.5);
            row[10] = if self.scenario.is_live(clip) {
                0.95
            } else {
                0.05
            };
            row[11] = if replay[clip - lo_clip] { 0.9 } else { 0.1 };
            row[12] = (cur.mean_abs_diff(&next) * self.cfg.color_diff_scale).min(1.0);
            row[13] = semaphore_score(&cur);
            row[14] = (dust_score(&cur) * self.cfg.dust_scale).min(1.0);
            row[15] = (sand_score(&cur) * self.cfg.dust_scale).min(1.0);
            row[16] = field
                .object_motion_contrast()
                .max(field2.object_motion_contrast());
            rows.push(row);
        }
        Ok(rows)
    }

    /// The underlying scenario.
    pub fn scenario(&self) -> &RaceScenario {
        self.scenario
    }

    /// The audio renderer (for keyword spotting and diagnostics).
    pub fn audio(&self) -> &AudioSynth {
        &self.audio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::scenario::{EventKind, RaceProfile, ScenarioConfig};
    use crate::MediaError;

    fn matrix(profile: RaceProfile, secs: usize) -> (RaceScenario, Vec<Vec<f64>>) {
        let sc = RaceScenario::generate(ScenarioConfig::new(profile, secs));
        let fx = FeatureExtractor::new(&sc).unwrap();
        let m = fx.extract(&[], 0, sc.n_clips).unwrap();
        (sc, m)
    }

    #[test]
    fn injected_extract_fault_is_a_typed_error() {
        let sc = RaceScenario::generate(ScenarioConfig::new(RaceProfile::German, 10));
        let fx = FeatureExtractor::new(&sc).unwrap();
        let (result, report) = cobra_faults::with_faults(
            cobra_faults::FaultPlan::new(5)
                .fail_transient("media.vector.extract", cobra_faults::Trigger::Times(1)),
            || fx.extract(&[], 0, sc.n_clips),
        );
        assert_eq!(
            result.unwrap_err(),
            MediaError::Fault {
                site: "media.vector.extract".into(),
                transient: true,
            }
        );
        assert_eq!(report.count("media.vector.extract"), 1);
        // Disarmed, the same extractor works.
        assert_eq!(fx.extract(&[], 0, sc.n_clips).unwrap().len(), sc.n_clips);
    }

    #[test]
    fn matrix_shape_and_range() {
        let (sc, m) = matrix(RaceProfile::German, 30);
        assert_eq!(m.len(), sc.n_clips);
        for row in &m {
            assert_eq!(row.len(), N_FEATURES);
            for (k, &v) in row.iter().enumerate() {
                assert!((0.0..=1.0).contains(&v), "feature {k} out of range: {v}");
            }
        }
    }

    #[test]
    fn excited_clips_raise_the_audio_features() {
        let (sc, m) = matrix(RaceProfile::German, 120);
        let mean_feature = |clips: &[usize], k: usize| -> f64 {
            clips.iter().map(|&c| m[c][k]).sum::<f64>() / clips.len().max(1) as f64
        };
        let excited: Vec<usize> = (0..sc.n_clips).filter(|&c| sc.is_excited(c)).collect();
        let idle: Vec<usize> = (0..sc.n_clips)
            .filter(|&c| !sc.is_excited(c) && !sc.is_speech(c))
            .collect();
        assert!(excited.len() > 20 && idle.len() > 20);
        // STE mid avg (f3), pitch avg (f6), MFCC avg (f9) all higher.
        for k in [2usize, 5, 8] {
            let e = mean_feature(&excited, k);
            let i = mean_feature(&idle, k);
            assert!(e > i + 0.2, "feature {k}: excited {e} vs idle {i}");
        }
        // Pause rate (f2) lower when excited.
        assert!(mean_feature(&excited, 1) < mean_feature(&idle, 1) - 0.2);
    }

    #[test]
    fn semaphore_feature_fires_at_the_start() {
        let (sc, m) = matrix(RaceProfile::German, 60);
        let start = &sc.events[0];
        let mid = start.span.start + start.span.len() / 2;
        let calm = (2..sc.n_clips.saturating_sub(2))
            .find(|&c| {
                (c - 2..=c + 2)
                    .all(|k| sc.is_live(k) && sc.event_at(k).is_none() && !sc.is_replay(k))
            })
            .unwrap();
        assert!(m[mid][13] > m[calm][13] + 0.15);
    }

    #[test]
    fn dust_and_sand_fire_at_fly_outs() {
        let (sc, m) = matrix(RaceProfile::German, 240);
        let fly = sc
            .events
            .iter()
            .find(|e| e.kind == EventKind::FlyOut)
            .unwrap();
        let mid = fly.span.start + fly.span.len() / 2;
        let calm = (2..sc.n_clips.saturating_sub(2))
            .find(|&c| {
                (c - 2..=c + 2)
                    .all(|k| sc.is_live(k) && sc.event_at(k).is_none() && !sc.is_replay(k))
            })
            .unwrap();
        assert!(m[mid][14] > m[calm][14]);
        assert!(m[mid][15] > m[calm][15] + 0.2);
    }

    #[test]
    fn replay_flag_overlaps_true_replays() {
        let (sc, m) = matrix(RaceProfile::German, 240);
        let r = sc.replays.first().unwrap();
        // At least part of the replay is flagged.
        let flagged = (r.span.start..r.span.end)
            .filter(|&c| m[c][11] > 0.5)
            .count();
        assert!(
            flagged * 2 > r.span.len(),
            "only {flagged}/{} replay clips flagged",
            r.span.len()
        );
        // Most non-replay clips are unflagged.
        let fp = (0..sc.n_clips)
            .filter(|&c| !sc.is_replay(c) && m[c][11] > 0.5)
            .count();
        assert!(fp * 10 < sc.n_clips, "{fp} false replay clips");
    }

    #[test]
    fn part_of_race_follows_the_live_span() {
        let (sc, m) = matrix(RaceProfile::German, 60);
        assert!(m[0][10] < 0.5); // pre-race
        let mid = (sc.live.start + sc.live.end) / 2;
        assert!(m[mid][10] > 0.5);
    }

    #[test]
    fn keyword_scores_pass_through() {
        let sc = RaceScenario::generate(ScenarioConfig::new(RaceProfile::German, 20));
        let fx = FeatureExtractor::new(&sc).unwrap();
        let scores: Vec<f64> = (0..sc.n_clips).map(|c| (c % 10) as f64 / 10.0).collect();
        let m = fx.extract(&scores, 5, 15).unwrap();
        assert_eq!(m[0][0], scores[5]);
        assert_eq!(m[9][0], scores[14]);
    }

    #[test]
    fn passing_motion_cue_is_stronger_on_german_than_belgian_passings() {
        let (g_sc, g_m) = matrix(RaceProfile::German, 240);
        let mean_spread = |sc: &RaceScenario, m: &[Vec<f64>]| -> (f64, f64) {
            let passing: Vec<usize> = (0..sc.n_clips)
                .filter(|&c| matches!(sc.event_at(c).map(|e| e.kind), Some(EventKind::Passing)))
                .collect();
            let calm: Vec<usize> = (0..sc.n_clips)
                .filter(|&c| sc.is_live(c) && sc.event_at(c).is_none() && !sc.is_replay(c))
                .collect();
            let avg =
                |v: &[usize]| v.iter().map(|&c| m[c][16]).sum::<f64>() / v.len().max(1) as f64;
            (avg(&passing), avg(&calm))
        };
        let (g_pass, g_calm) = mean_spread(&g_sc, &g_m);
        assert!(
            g_pass > g_calm + 0.05,
            "german passing spread {g_pass} vs calm {g_calm}"
        );
        // On the Belgian profile the cue separates far less (jittery
        // camera): the *contrast* must be weaker.
        let (b_sc, b_m) = matrix(RaceProfile::Belgian, 240);
        let (b_pass, b_calm) = mean_spread(&b_sc, &b_m);
        assert!(
            (g_pass - g_calm) > (b_pass - b_calm),
            "german contrast {} vs belgian {}",
            g_pass - g_calm,
            b_pass - b_calm
        );
    }
}
