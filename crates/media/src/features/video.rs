//! Visual features (§5.3): shot detection, motion, semaphore, dust/sand,
//! passing cues and replay/DVE detection.

use crate::frame::{Frame, HEIGHT, WIDTH};

/// Anything that can hand out broadcast frames by index (implemented by
/// the synthetic renderer; a decoder would implement it for real tapes).
pub trait FrameSource {
    /// Frame at index `idx`.
    fn frame(&self, idx: usize) -> Frame;
    /// Total number of frames.
    fn n_frames(&self) -> usize;
}

impl FrameSource for crate::synth::video::VideoSynth<'_> {
    fn frame(&self, idx: usize) -> Frame {
        crate::synth::video::VideoSynth::frame(self, idx)
    }
    fn n_frames(&self) -> usize {
        crate::synth::video::VideoSynth::n_frames(self)
    }
}

/// L1 distance between two frame histograms, computed over the top ¾ of
/// the picture: the caption band at the bottom (§5.4) pops in and out and
/// must not masquerade as a shot boundary.
pub fn histogram_difference(a: &Frame, b: &Frame, bins: usize) -> f64 {
    let cut = a.height() * 3 / 4;
    let ha = a.histogram_rows(bins, 0, cut);
    let hb = b.histogram_rows(bins, 0, cut);
    ha.iter().zip(&hb).map(|(x, y)| (x - y).abs()).sum::<f64>() / 3.0
}

/// Shot-boundary detector configuration.
#[derive(Debug, Clone)]
pub struct ShotConfig {
    /// Histogram bins per channel.
    pub bins: usize,
    /// Absolute histogram-difference floor for a cut.
    pub threshold: f64,
    /// A cut must exceed the local average difference by this factor
    /// (the "several consecutive frames" comparison of §5.3).
    pub ratio: f64,
    /// Number of surrounding frame pairs forming the local average.
    pub context: usize,
    /// Frame stride at which candidate pairs are evaluated (1 = every
    /// frame; 2 halves the work for 25 fps broadcasts).
    pub stride: usize,
}

impl Default for ShotConfig {
    fn default() -> Self {
        ShotConfig {
            bins: 8,
            threshold: 0.10,
            ratio: 2.0,
            context: 3,
            stride: 1,
        }
    }
}

/// Detects shot boundaries over `lo..hi` (frame indices). Returns the
/// frame indices at which a new shot begins.
///
/// The §5.3 algorithm is a histogram method "modified in the sense that we
/// calculate the histogram difference among several consecutive frames":
/// a boundary must stand out against the local pan/jitter level, not just
/// exceed a global threshold.
pub fn detect_shots(
    source: &dyn FrameSource,
    lo: usize,
    hi: usize,
    cfg: &ShotConfig,
) -> Vec<usize> {
    let hi = hi.min(source.n_frames());
    if hi <= lo + 1 {
        return Vec::new();
    }
    let stride = cfg.stride.max(1);
    // Pair differences at the configured stride.
    let idxs: Vec<usize> = (lo + 1..hi).step_by(stride).collect();
    let mut diffs = Vec::with_capacity(idxs.len());
    let mut prev = source.frame(idxs[0] - 1);
    for &i in &idxs {
        let cur = source.frame(i);
        // Re-fetch prev when strides skip frames.
        if stride > 1 {
            prev = source.frame(i - 1);
        }
        diffs.push(histogram_difference(&prev, &cur, cfg.bins));
        prev = cur;
    }
    let mut cuts = Vec::new();
    for (k, &d) in diffs.iter().enumerate() {
        if d < cfg.threshold {
            continue;
        }
        let lo_k = k.saturating_sub(cfg.context);
        let hi_k = (k + cfg.context + 1).min(diffs.len());
        let neighbours: Vec<f64> = diffs[lo_k..hi_k]
            .iter()
            .enumerate()
            .filter(|(j, _)| lo_k + j != k)
            .map(|(_, &v)| v)
            .collect();
        let local = neighbours.iter().sum::<f64>() / neighbours.len().max(1) as f64;
        if d > cfg.ratio * local.max(1e-6) {
            // Suppress double detections on adjacent pairs.
            if cuts.last().is_none_or(|&c: &usize| idxs[k] > c + stride) {
                cuts.push(idxs[k]);
            }
        }
    }
    cuts
}

/// Temporal baseline (in frames) over which the passing cue measures
/// motion — the paper computes "the movement properties of several
/// consecutive pictures".
pub const MOTION_BASELINE: usize = 4;

/// Block-matching motion analysis between two frames (typically
/// [`MOTION_BASELINE`] apart): horizontal displacement per block, by
/// exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionField {
    /// Horizontal displacement per block, in pixels.
    pub dx: Vec<i32>,
}

/// Estimates the horizontal motion field on an 8×6 block grid with ±8 px
/// search, subsampled 4× for speed. Textureless blocks (uniform sky,
/// plain asphalt) are skipped — their displacement is unobservable and
/// would only add noise to the histogram.
pub fn motion_field(prev: &Frame, cur: &Frame) -> MotionField {
    const BLOCK: usize = 16;
    const SEARCH: i32 = 16;
    const MIN_TEXTURE: f64 = 100.0; // luma variance floor
    const MAX_RESIDUAL: i64 = 6; // per-sample SAD for an accepted match
    let grid_x = WIDTH / BLOCK;
    let grid_y = HEIGHT / BLOCK;
    let mut dx = Vec::new();
    for gy in 0..grid_y {
        for gx in 0..grid_x {
            let x0 = gx * BLOCK;
            let y0 = gy * BLOCK;
            // Texture check: horizontal displacement is only observable
            // when the block has *horizontal* structure. A block holding
            // nothing but a horizontal band edge matches every shift
            // equally and would report garbage, so measure the variance of
            // per-column means.
            let cols: Vec<f64> = ((x0..x0 + BLOCK).step_by(2))
                .map(|x| {
                    let mut s = 0.0;
                    let mut n = 0.0;
                    for y in (y0..y0 + BLOCK).step_by(2) {
                        s += cur.luma(x, y) as f64;
                        n += 1.0;
                    }
                    s / n
                })
                .collect();
            let mean = cols.iter().sum::<f64>() / cols.len() as f64;
            let var = cols.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / cols.len() as f64;
            if var < MIN_TEXTURE {
                continue;
            }
            let mut best = i64::MAX;
            let mut best_dx = 0i32;
            let mut best_samples = 1i64;
            // Centre-out scan: on SAD ties (exact pattern repeats under
            // the search window) the smallest displacement wins, which is
            // the conservative hypothesis.
            let order = {
                let mut v = vec![0i32];
                for d in 1..=SEARCH {
                    v.push(d);
                    v.push(-d);
                }
                v
            };
            for d in order {
                let mut sad = 0i64;
                let mut samples = 0i64;
                for y in (y0..y0 + BLOCK).step_by(2) {
                    for x in (x0..x0 + BLOCK).step_by(2) {
                        let sx = x as i32 + d;
                        if sx < 0 || sx as usize >= WIDTH {
                            sad += 128;
                            continue;
                        }
                        let a = cur.luma(x, y) as i64;
                        let b = prev.luma(sx as usize, y) as i64;
                        sad += (a - b).abs();
                        samples += 1;
                    }
                }
                if sad < best {
                    best = sad;
                    best_dx = d;
                    best_samples = samples.max(1);
                }
            }
            // Match-quality gate: blocks straddling an object boundary
            // (half car, half background) match nothing well and would
            // contribute arbitrary displacements.
            if best / best_samples > MAX_RESIDUAL {
                continue;
            }
            dx.push(best_dx);
        }
    }
    MotionField { dx }
}

impl MotionField {
    /// Mean absolute displacement, normalized by the search radius — the
    /// "amount of motion" cue.
    pub fn magnitude(&self) -> f64 {
        if self.dx.is_empty() {
            return 0.0;
        }
        let mean: f64 = self.dx.iter().map(|&d| d.abs() as f64).sum::<f64>() / self.dx.len() as f64;
        (mean / 8.0).min(1.0)
    }

    /// Spread of block displacements (standard deviation / search radius).
    pub fn spread(&self) -> f64 {
        if self.dx.len() < 2 {
            return 0.0;
        }
        let n = self.dx.len() as f64;
        let mean: f64 = self.dx.iter().map(|&d| d as f64).sum::<f64>() / n;
        let var: f64 = self
            .dx
            .iter()
            .map(|&d| {
                let e = d as f64 - mean;
                e * e
            })
            .sum::<f64>()
            / n;
        (var.sqrt() / 8.0).min(1.0)
    }

    /// The motion-histogram *passing* cue: after compensating the dominant
    /// (camera) motion, measure the velocity contrast among the remaining
    /// moving objects. Two cars travelling at different screen velocities —
    /// one passing the other — produce a high contrast; a single tracked
    /// pack produces none.
    pub fn object_motion_contrast(&self) -> f64 {
        if self.dx.len() < 4 {
            return 0.0;
        }
        let mut sorted = self.dx.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let mut objects: Vec<i32> = self
            .dx
            .iter()
            .copied()
            .filter(|&d| (d - median).abs() >= 3)
            .collect();
        objects.sort_unstable();
        // Cluster deviating blocks into velocity groups (gap ≤ 1 px);
        // groups need ≥ 2 supporting blocks — a lone block is noise, a
        // real car covers several.
        let mut clusters: Vec<(f64, usize)> = Vec::new(); // (mean, count)
        let mut i = 0;
        while i < objects.len() {
            let mut j = i + 1;
            while j < objects.len() && objects[j] - objects[j - 1] <= 1 {
                j += 1;
            }
            let count = j - i;
            let mean = objects[i..j].iter().map(|&v| v as f64).sum::<f64>() / count as f64;
            if count >= 2 {
                clusters.push((mean, count));
            }
            i = j;
        }
        // The passing signature: an object moving relative to *both* the
        // background (median ≈ camera motion) and the tracked pack
        // (velocity ≈ 0). The score is the fastest such object's velocity.
        clusters
            .iter()
            .map(|&(v, _)| {
                let rel = (v - median as f64).abs().min(v.abs());
                (rel / 8.0).min(1.0)
            })
            .fold(0.0, f64::max)
    }
}

/// Semaphore score of a frame: density of saturated red inside the most
/// red-dense rectangle of the top band (§5.3 detects the start lights by
/// "filtering the red component … a rectangular shape").
pub fn semaphore_score(frame: &Frame) -> f64 {
    let is_red = |[r, g, b]: [u8; 3]| r > 170 && g < 90 && b < 90;
    // Column histogram of red pixels over the top band.
    let band_h = 60.min(frame.height());
    let mut col_red = vec![0usize; frame.width()];
    for (x, col) in col_red.iter_mut().enumerate() {
        for y in 0..band_h {
            if is_red(frame.get(x, y)) {
                *col += 1;
            }
        }
    }
    // Densest contiguous run of red columns.
    let mut best = 0usize;
    let mut run_len = 0usize;
    let mut run_sum = 0usize;
    for &c in &col_red {
        if c > 2 {
            run_len += 1;
            run_sum += c;
            best = best.max(run_sum.min(run_len * band_h));
        } else {
            run_len = 0;
            run_sum = 0;
        }
    }
    // Normalize by a plausible full-semaphore size.
    (best as f64 / (70.0 * 18.0)).min(1.0)
}

/// Fraction of sand-colored pixels in the track region.
pub fn sand_score(frame: &Frame) -> f64 {
    frame.fraction_matching(0, HEIGHT / 4, WIDTH, HEIGHT / 2, |[r, g, b]| {
        r > 180 && (140..=210).contains(&g) && b < 160 && r > b
    })
}

/// Fraction of dust-colored (desaturated bright) pixels in the track
/// region.
pub fn dust_score(frame: &Frame) -> f64 {
    frame.fraction_matching(0, HEIGHT / 4, WIDTH, HEIGHT / 2, |[r, g, b]| {
        let max = r.max(g).max(b) as i32;
        let min = r.min(g).min(b) as i32;
        max > 140 && max - min < 40 && r >= g && g >= b
    })
}

/// Wipe (DVE) evidence in a single frame: DVE generators draw a bright
/// full-height border bar at the moving transition edge; the detector
/// scores the best candidate bar (a narrow contiguous band of columns
/// that are near-white over almost their full height).
pub fn wipe_score(frame: &Frame) -> f64 {
    let w = frame.width();
    let h = frame.height();
    // Fraction of near-white samples per column.
    let mut white = vec![0f64; w];
    let rows: Vec<usize> = (0..h).step_by(4).collect();
    for (x, wf) in white.iter_mut().enumerate() {
        let hits = rows.iter().filter(|&&y| frame.luma(x, y) > 245).count();
        *wf = hits as f64 / rows.len() as f64;
    }
    // Longest contiguous run of full-height white columns.
    let mut best_run = 0usize;
    let mut run = 0usize;
    for &wf in &white {
        if wf > 0.9 {
            run += 1;
            best_run = best_run.max(run);
        } else {
            run = 0;
        }
    }
    // The bar is 5 px wide; accept 2..=12 to tolerate sampling.
    if (2..=12).contains(&best_run) {
        1.0
    } else {
        0.0
    }
}

/// Pairs wipe detections into replay spans: a wipe opens a replay, the
/// next wipe within `min_len..max_len` frames closes it.
pub fn replay_spans_from_wipes(
    wipe_frames: &[usize],
    min_len: usize,
    max_len: usize,
) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < wipe_frames.len() {
        let open = wipe_frames[i];
        // Skip detections belonging to the same wipe.
        let mut j = i + 1;
        while j < wipe_frames.len() && wipe_frames[j] - open < min_len {
            j += 1;
        }
        if j < wipe_frames.len() && wipe_frames[j] - open <= max_len {
            spans.push((open, wipe_frames[j]));
            // Consume all detections of the closing wipe.
            let close = wipe_frames[j];
            while j < wipe_frames.len() && wipe_frames[j] - close < min_len {
                j += 1;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBuf;
    use crate::synth::scenario::{EventKind, RaceProfile, RaceScenario, ScenarioConfig};
    use crate::synth::video::VideoSynth;
    use crate::time::{clips_per_second, VIDEO_FPS};

    fn scenario(profile: RaceProfile, secs: usize) -> RaceScenario {
        RaceScenario::generate(ScenarioConfig::new(profile, secs))
    }

    fn frame_of_clip(clip: usize) -> usize {
        clip * VIDEO_FPS / clips_per_second()
    }

    #[test]
    fn histogram_difference_is_zero_for_identical_frames() {
        let f = FrameBuf::filled(32, 32, [100, 50, 25]).freeze();
        assert_eq!(histogram_difference(&f, &f, 8), 0.0);
        let g = FrameBuf::filled(32, 32, [200, 150, 125]).freeze();
        assert!(histogram_difference(&f, &g, 8) > 1.0);
    }

    #[test]
    fn shot_detector_finds_cuts_with_high_accuracy() {
        let sc = scenario(RaceProfile::German, 90);
        let v = VideoSynth::new(&sc);
        let hi = v.n_frames().min(frame_of_clip(sc.n_clips));
        let detected = detect_shots(&v, 0, hi, &ShotConfig::default());
        // Cuts that fall inside a replay are invisible on the broadcast
        // (the replay shows the *source* footage's cuts instead).
        let truth: Vec<usize> = sc
            .shot_cuts
            .iter()
            .copied()
            .filter(|&c| {
                let clip = c * clips_per_second() / VIDEO_FPS;
                c < hi && !sc.is_replay(clip) && !sc.is_replay(clip.saturating_sub(1))
            })
            .collect();
        assert!(!truth.is_empty());
        // Recall within ±2 frames.
        let found = truth
            .iter()
            .filter(|&&t| detected.iter().any(|&d| d.abs_diff(t) <= 2))
            .count();
        let recall = found as f64 / truth.len() as f64;
        // Precision: detections near a cut or near a wipe edge are fine;
        // count hard false positives only.
        let hard_fp = detected
            .iter()
            .filter(|&&d| {
                let near_cut = truth.iter().any(|&t| d.abs_diff(t) <= 2);
                let clip = d * clips_per_second() / VIDEO_FPS;
                let near_replay = sc.is_replay(clip)
                    || sc.is_replay(clip.saturating_sub(1))
                    || sc.is_replay(clip + 1);
                !near_cut && !near_replay
            })
            .count();
        let precision = 1.0 - hard_fp as f64 / detected.len().max(1) as f64;
        assert!(recall > 0.9, "shot recall {recall} (paper reports >90%)");
        assert!(precision > 0.9, "shot precision {precision}");
    }

    #[test]
    fn motion_field_detects_uniform_pan() {
        let sc = scenario(RaceProfile::German, 60);
        let v = VideoSynth::new(&sc);
        // Find a calm live clip (no event, no replay) and a cut-free pair.
        let clip = (2..sc.n_clips.saturating_sub(2))
            .find(|&c| {
                (c - 2..=c + 2)
                    .all(|k| sc.is_live(k) && sc.event_at(k).is_none() && !sc.is_replay(k))
            })
            .unwrap();
        let f = frame_of_clip(clip);
        let field = motion_field(&v.frame(f), &v.frame(f + MOTION_BASELINE));
        // The camera pans: nonzero magnitude, no object-motion contrast
        // (one tracked pack, one background layer).
        assert!(field.magnitude() > 0.0);
        assert!(field.object_motion_contrast() < 0.3);
    }

    #[test]
    fn passing_raises_motion_spread_on_the_german_profile() {
        let sc = scenario(RaceProfile::German, 240);
        let v = VideoSynth::new(&sc);
        let passing = sc
            .events
            .iter()
            .find(|e| e.kind == EventKind::Passing)
            .expect("german race has passings");
        let mid_clip = passing.span.start + passing.span.len() / 2;
        let fp = frame_of_clip(mid_clip);
        let during =
            motion_field(&v.frame(fp), &v.frame(fp + MOTION_BASELINE)).object_motion_contrast();
        let calm_clip = (2..sc.n_clips.saturating_sub(2))
            .find(|&c| {
                (c - 2..=c + 2)
                    .all(|k| sc.is_live(k) && sc.event_at(k).is_none() && !sc.is_replay(k))
            })
            .unwrap();
        let fc = frame_of_clip(calm_clip);
        let calm =
            motion_field(&v.frame(fc), &v.frame(fc + MOTION_BASELINE)).object_motion_contrast();
        assert!(
            during > calm,
            "passing contrast {during} should exceed calm {calm}"
        );
    }

    #[test]
    fn semaphore_score_fires_during_start_only() {
        let sc = scenario(RaceProfile::German, 90);
        let v = VideoSynth::new(&sc);
        let start = &sc.events[0];
        let f_on = frame_of_clip(start.span.start + start.span.len() / 2);
        let calm_clip = (2..sc.n_clips.saturating_sub(2))
            .find(|&c| {
                (c - 2..=c + 2)
                    .all(|k| sc.is_live(k) && sc.event_at(k).is_none() && !sc.is_replay(k))
            })
            .unwrap();
        let f_off = frame_of_clip(calm_clip);
        let on = semaphore_score(&v.frame(f_on));
        let off = semaphore_score(&v.frame(f_off));
        assert!(on > 0.2, "semaphore on-score {on}");
        assert!(off < on / 3.0, "semaphore off-score {off} vs on {on}");
    }

    #[test]
    fn sand_and_dust_fire_during_fly_outs() {
        let sc = scenario(RaceProfile::German, 240);
        let v = VideoSynth::new(&sc);
        let fly = sc
            .events
            .iter()
            .find(|e| e.kind == EventKind::FlyOut)
            .expect("german race has fly-outs");
        let f_on = frame_of_clip(fly.span.start + fly.span.len() / 2);
        let calm_clip = (2..sc.n_clips.saturating_sub(2))
            .find(|&c| {
                (c - 2..=c + 2)
                    .all(|k| sc.is_live(k) && sc.event_at(k).is_none() && !sc.is_replay(k))
            })
            .unwrap();
        let f_off = frame_of_clip(calm_clip);
        assert!(sand_score(&v.frame(f_on)) > sand_score(&v.frame(f_off)) + 0.1);
        assert!(dust_score(&v.frame(f_on)) > dust_score(&v.frame(f_off)));
    }

    #[test]
    fn wipes_bound_replays_and_pair_into_spans() {
        let sc = scenario(RaceProfile::German, 240);
        let v = VideoSynth::new(&sc);
        let r = sc.replays.first().expect("replays exist");
        let open = frame_of_clip(r.span.start);
        // Scan around the replay start for a wipe.
        let mut best = 0.0f64;
        for f in open..open + crate::synth::video::WIPE_FRAMES + 2 {
            best = best.max(wipe_score(&v.frame(f)));
        }
        assert!(best > 0.5, "wipe score near replay open: {best}");
        // A calm frame scores zero.
        let calm_clip = (2..sc.n_clips.saturating_sub(2))
            .find(|&c| {
                (c - 2..=c + 2)
                    .all(|k| sc.is_live(k) && sc.event_at(k).is_none() && !sc.is_replay(k))
            })
            .unwrap();
        let fc = frame_of_clip(calm_clip);
        assert!(wipe_score(&v.frame(fc)) < 0.3);
    }

    #[test]
    fn replay_span_pairing_logic() {
        // Wipes at 100 (open, 3 detections) and 180 (close, 2 detections).
        let wipes = [100, 101, 102, 180, 181];
        let spans = replay_spans_from_wipes(&wipes, 30, 300);
        assert_eq!(spans, vec![(100, 180)]);
        // Unpaired wipe yields nothing.
        assert!(replay_spans_from_wipes(&[50], 30, 300).is_empty());
        // Too-distant wipes do not pair.
        assert!(replay_spans_from_wipes(&[50, 600], 30, 300).is_empty());
    }
}
