//! Speech endpoint detection (§5.2).
//!
//! The paper classifies each 0.1 s clip as speech or non-speech from two
//! statistics: a weighted combination of the average, maximum and dynamic
//! range of the 0–882 Hz short-time energy (threshold 2.2 × 10⁻³), and the
//! sum of the average and dynamic range of the first three MFCCs
//! (threshold 1.3). It also reports that entropy and zero-crossing rate
//! "showed powerless when applied in a noisy environment such as ours" —
//! both are implemented here so the endpoint experiment can reproduce
//! that comparison.

use crate::features::audio::AudioClipFeatures;

/// Endpoint-detector thresholds. Defaults are the paper's values; the
/// synthetic broadcast calibrates its own (slightly different absolute
/// signal levels) via [`EndpointConfig::calibrated`].
#[derive(Debug, Clone)]
pub struct EndpointConfig {
    /// Threshold on the combined STE statistic (paper: 2.2e-3).
    pub ste_threshold: f64,
    /// Threshold on the combined MFCC statistic (paper: 1.3).
    pub mfcc_threshold: f64,
    /// Weights of (avg, max, dyn_range) in the STE statistic.
    pub ste_weights: [f64; 3],
}

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig {
            ste_threshold: 2.2e-3,
            mfcc_threshold: 1.3,
            ste_weights: [1.0, 0.5, 1.0],
        }
    }
}

impl EndpointConfig {
    /// Thresholds calibrated to the synthetic broadcast's signal levels
    /// (the paper's absolute values assume its particular digitization
    /// gain).
    pub fn calibrated() -> Self {
        EndpointConfig {
            ste_threshold: 1.2e-3,
            mfcc_threshold: 0.35,
            ste_weights: [1.0, 0.5, 1.0],
        }
    }

    /// The combined STE statistic of a clip.
    pub fn ste_statistic(&self, f: &AudioClipFeatures) -> f64 {
        let [wa, wm, wd] = self.ste_weights;
        wa * f.ste_low.avg + wm * f.ste_low.max + wd * f.ste_low.dyn_range
    }

    /// The combined MFCC statistic of a clip.
    pub fn mfcc_statistic(&self, f: &AudioClipFeatures) -> f64 {
        f.mfcc3.avg + f.mfcc3.dyn_range
    }

    /// True when the clip is classified as speech.
    pub fn is_speech(&self, f: &AudioClipFeatures) -> bool {
        self.ste_statistic(f) > self.ste_threshold && self.mfcc_statistic(f) > self.mfcc_threshold
    }
}

/// Energy entropy of a clip's frame energies — one of the features the
/// paper tried and rejected for noisy broadcasts.
pub fn energy_entropy(frame_energies: &[f64]) -> f64 {
    let total: f64 = frame_energies.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    -frame_energies
        .iter()
        .filter(|&&e| e > 0.0)
        .map(|&e| {
            let p = e / total;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Zero-crossing rate of a raw clip — the other rejected feature.
pub fn zero_crossing_rate(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let crossings = samples
        .windows(2)
        .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
        .count();
    crossings as f64 / (samples.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::audio::AudioAnalyzer;
    use crate::test_support::*;

    // Local helpers shared with vector tests live in the crate-level test
    // support module; here we exercise the detector directly.

    #[test]
    fn entropy_peaks_for_uniform_energy() {
        let uniform = energy_entropy(&[1.0; 8]);
        let spiky = energy_entropy(&[8.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!(uniform > spiky);
        assert!((uniform - (8f64).ln()).abs() < 1e-12);
        assert_eq!(energy_entropy(&[]), 0.0);
        assert_eq!(energy_entropy(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn zcr_of_alternating_signal_is_one() {
        let alt: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!((zero_crossing_rate(&alt) - 1.0).abs() < 1e-12);
        assert_eq!(zero_crossing_rate(&[1.0]), 0.0);
        let dc = vec![0.5; 100];
        assert_eq!(zero_crossing_rate(&dc), 0.0);
    }

    #[test]
    fn calibrated_detector_separates_speech_from_silence() {
        let (sc, audio) = german_broadcast(60);
        let analyzer = AudioAnalyzer::standard();
        let cfg = EndpointConfig::calibrated();
        let mut hits = 0usize;
        let mut total = 0usize;
        for clip in 0..sc.n_clips {
            let f = analyzer.analyze_clip(&audio.clip(clip)).unwrap();
            let detected = cfg.is_speech(&f);
            let truth = sc.is_speech(clip);
            total += 1;
            if detected == truth {
                hits += 1;
            }
        }
        let acc = hits as f64 / total as f64;
        assert!(acc > 0.7, "endpoint accuracy {acc}");
    }

    #[test]
    fn statistics_are_monotone_in_their_inputs() {
        use crate::features::audio::ClipStats;
        let cfg = EndpointConfig::default();
        let quiet = AudioClipFeatures {
            ste_low: ClipStats {
                avg: 1e-4,
                max: 2e-4,
                dyn_range: 1e-4,
            },
            ste_mid: ClipStats::default(),
            pitch: ClipStats::default(),
            mfcc3: ClipStats {
                avg: 0.1,
                max: 0.1,
                dyn_range: 0.05,
            },
            pause_rate: 1.0,
            voiced_rate: 0.0,
        };
        let loud = AudioClipFeatures {
            ste_low: ClipStats {
                avg: 5e-3,
                max: 9e-3,
                dyn_range: 6e-3,
            },
            mfcc3: ClipStats {
                avg: 1.0,
                max: 1.5,
                dyn_range: 0.8,
            },
            ..quiet.clone()
        };
        assert!(cfg.ste_statistic(&loud) > cfg.ste_statistic(&quiet));
        assert!(cfg.mfcc_statistic(&loud) > cfg.mfcc_statistic(&quiet));
        assert!(!cfg.is_speech(&quiet));
        assert!(cfg.is_speech(&loud));
    }
}
