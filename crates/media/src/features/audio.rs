//! Audio features: STE, pitch, MFCC, pause rate and clip aggregates.
//!
//! §5.2 of the paper: short-time energy over filtered sub-bands (Hamming
//! window), autocorrelation pitch below 1 kHz, mel-frequency cepstral
//! coefficients (first 3 of 12 indicative for speech), and the pause rate
//! of an audio clip. Frame-level values are aggregated per 0.1 s clip into
//! averages, maxima and dynamic ranges.

use crate::signal::{goertzel_power, FirFilter};
use crate::time::{CLIP_SAMPLES, FRAME_SAMPLES, SAMPLE_RATE};
use crate::window::Window;
use crate::{MediaError, Result};

/// Clip-level aggregate of a frame-level feature (§5.2 computes "average
/// values and dynamic range, and maximum values").
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ClipStats {
    /// Mean over the clip's frames.
    pub avg: f64,
    /// Maximum over the clip's frames.
    pub max: f64,
    /// Max − min over the clip's frames.
    pub dyn_range: f64,
}

impl ClipStats {
    /// Aggregates frame values (empty input gives zeros).
    pub fn from_frames(values: &[f64]) -> Self {
        if values.is_empty() {
            return ClipStats::default();
        }
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        ClipStats {
            avg: sum / values.len() as f64,
            max,
            dyn_range: max - min,
        }
    }
}

/// Short-time energy of one frame under an analysis window: the mean of
/// squared windowed samples.
pub fn short_time_energy(frame: &[f64], window: Window) -> f64 {
    if frame.is_empty() {
        return 0.0;
    }
    let coeffs = window.coefficients(frame.len());
    frame
        .iter()
        .zip(&coeffs)
        .map(|(x, w)| {
            let v = x * w;
            v * v
        })
        .sum::<f64>()
        / frame.len() as f64
}

/// Autocorrelation pitch estimate over a buffer (use ≥ 2 frames so lags
/// for low fundamentals fit). Returns `None` for unvoiced/silent input.
///
/// The search is limited to `min_hz..=max_hz` (the paper restricts pitch
/// to below 1 kHz, where human speech lives).
pub fn pitch_autocorrelation(
    buf: &[f64],
    min_hz: f64,
    max_hz: f64,
    voicing_threshold: f64,
) -> Option<f64> {
    if buf.len() < 8 || min_hz <= 0.0 || max_hz <= min_hz {
        return None;
    }
    let r0: f64 = buf.iter().map(|x| x * x).sum();
    if r0 < 1e-9 {
        return None;
    }
    let min_lag = (SAMPLE_RATE as f64 / max_hz).floor().max(2.0) as usize;
    let max_lag = ((SAMPLE_RATE as f64 / min_hz).ceil() as usize).min(buf.len() - 1);
    if min_lag >= max_lag {
        return None;
    }
    let mut scores = Vec::with_capacity(max_lag - min_lag + 1);
    let mut best = f64::MIN;
    for lag in min_lag..=max_lag {
        let mut r = 0.0;
        for i in 0..buf.len() - lag {
            r += buf[i] * buf[i + lag];
        }
        // Normalize for the shrinking overlap.
        let r = r / (buf.len() - lag) as f64 / (r0 / buf.len() as f64);
        scores.push(r);
        best = best.max(r);
    }
    if best < voicing_threshold {
        return None;
    }
    // Octave-error guard: among *local maxima*, take the smallest lag
    // scoring within 90% of the global best — integer multiples of the
    // true period peak almost identically for periodic signals.
    let cutoff = voicing_threshold.max(0.9 * best);
    let mut lag = None;
    for i in 0..scores.len() {
        let is_peak = (i == 0 || scores[i] >= scores[i - 1])
            && (i + 1 == scores.len() || scores[i] >= scores[i + 1]);
        if is_peak && scores[i] >= cutoff {
            lag = Some(i + min_lag);
            break;
        }
    }
    let lag = lag?;
    Some(SAMPLE_RATE as f64 / lag as f64)
}

/// Mel scale conversion.
fn hz_to_mel(hz: f64) -> f64 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

fn mel_to_hz(mel: f64) -> f64 {
    700.0 * (10f64.powf(mel / 2595.0) - 1.0)
}

/// Mel-frequency cepstral coefficients of a frame.
///
/// The mel filterbank energies are probed with Goertzel filters at the
/// mel-spaced centre frequencies (an FFT-free approximation of the
/// triangular filterbank; the cosine transform and the mel warping are
/// exactly the standard construction). Returns `n_coeffs` coefficients
/// (c1…cn, excluding c0).
pub fn mfcc(frame: &[f64], n_coeffs: usize, n_filters: usize, fmax_hz: f64) -> Vec<f64> {
    if frame.is_empty() || n_filters == 0 {
        return vec![0.0; n_coeffs];
    }
    let mel_max = hz_to_mel(fmax_hz);
    let mel_min = hz_to_mel(60.0);
    let energies: Vec<f64> = (0..n_filters)
        .map(|k| {
            let mel = mel_min + (mel_max - mel_min) * (k as f64 + 1.0) / (n_filters as f64 + 1.0);
            let hz = mel_to_hz(mel);
            let p = goertzel_power(frame, hz, SAMPLE_RATE);
            (p + 1e-12).ln()
        })
        .collect();
    // DCT-II over the log filterbank energies.
    (1..=n_coeffs)
        .map(|c| {
            energies
                .iter()
                .enumerate()
                .map(|(k, &e)| {
                    e * (std::f64::consts::PI * c as f64 * (k as f64 + 0.5) / n_filters as f64)
                        .cos()
                })
                .sum::<f64>()
                / n_filters as f64
        })
        .collect()
}

/// Configuration of the clip-level audio analysis.
#[derive(Debug, Clone)]
pub struct AudioConfig {
    /// STE analysis window (the paper selects Hamming).
    pub window: Window,
    /// FIR length for the sub-band filters.
    pub taps: usize,
    /// Voicing threshold for pitch tracking.
    pub voicing_threshold: f64,
    /// Frame STE below this (in the 0–2.5 kHz band) counts as a pause.
    pub silence_threshold: f64,
}

impl Default for AudioConfig {
    fn default() -> Self {
        AudioConfig {
            window: Window::Hamming,
            taps: 51,
            voicing_threshold: 0.35,
            silence_threshold: 2.0e-3,
        }
    }
}

/// Frame-level and clip-level audio features of one 0.1 s clip.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AudioClipFeatures {
    /// STE stats in the 0–882 Hz band (speech endpoint detection).
    pub ste_low: ClipStats,
    /// STE stats in the 882–2205 Hz band (emphasized speech).
    pub ste_mid: ClipStats,
    /// Pitch stats in Hz over voiced frames (0 when fully unvoiced).
    pub pitch: ClipStats,
    /// Sum of the first three MFCCs, per frame, aggregated.
    pub mfcc3: ClipStats,
    /// Fraction of silent frames in the clip.
    pub pause_rate: f64,
    /// Fraction of voiced frames.
    pub voiced_rate: f64,
}

/// The clip-level audio analyzer (owns the designed filters).
pub struct AudioAnalyzer {
    cfg: AudioConfig,
    low: FirFilter,  // 0–882 Hz
    mid: FirFilter,  // 882–2205 Hz
    wide: FirFilter, // 0–2500 Hz (speech characterization band)
}

impl AudioAnalyzer {
    /// Designs the paper's three sub-band filters.
    pub fn new(cfg: AudioConfig) -> Result<Self> {
        if cfg.taps < 3 || cfg.taps.is_multiple_of(2) {
            return Err(MediaError::BadParameter("taps must be odd ≥ 3".into()));
        }
        Ok(AudioAnalyzer {
            low: FirFilter::band_pass(0.0, 882.0, cfg.taps, SAMPLE_RATE)?,
            mid: FirFilter::band_pass(882.0, 2205.0, cfg.taps, SAMPLE_RATE)?,
            wide: FirFilter::band_pass(0.0, 2500.0, cfg.taps, SAMPLE_RATE)?,
            cfg,
        })
    }

    /// Analyzer with default configuration.
    pub fn standard() -> Self {
        AudioAnalyzer::new(AudioConfig::default()).expect("default config is valid")
    }

    /// The active configuration.
    pub fn config(&self) -> &AudioConfig {
        &self.cfg
    }

    /// Analyzes one clip of `CLIP_SAMPLES` samples.
    pub fn analyze_clip(&self, samples: &[f64]) -> Result<AudioClipFeatures> {
        if samples.len() != CLIP_SAMPLES {
            return Err(MediaError::Shape(format!(
                "clip must have {CLIP_SAMPLES} samples, got {}",
                samples.len()
            )));
        }
        let low = self.low.apply(samples);
        let mid = self.mid.apply(samples);
        let wide = self.wide.apply(samples);

        let n_frames = CLIP_SAMPLES / FRAME_SAMPLES;
        let mut ste_low = Vec::with_capacity(n_frames);
        let mut ste_mid = Vec::with_capacity(n_frames);
        let mut mfcc3 = Vec::with_capacity(n_frames);
        let mut silent = 0usize;
        for f in 0..n_frames {
            let lo = f * FRAME_SAMPLES;
            let hi = lo + FRAME_SAMPLES;
            ste_low.push(short_time_energy(&low[lo..hi], self.cfg.window));
            ste_mid.push(short_time_energy(&mid[lo..hi], self.cfg.window));
            let coeffs = mfcc(&low[lo..hi], 3, 16, 2500.0);
            mfcc3.push(coeffs.iter().map(|c| c.abs()).sum());
            let wide_e = short_time_energy(&wide[lo..hi], self.cfg.window);
            if wide_e < self.cfg.silence_threshold {
                silent += 1;
            }
        }

        // Pitch over 2-frame (20 ms) windows of the low band, stepping one
        // frame: lags down to ≈ 90 Hz fit in 440 samples.
        let mut pitches = Vec::new();
        let mut voiced = 0usize;
        let mut windows = 0usize;
        let wlen = 2 * FRAME_SAMPLES;
        let mut s = 0;
        while s + wlen <= CLIP_SAMPLES {
            windows += 1;
            if let Some(p) =
                pitch_autocorrelation(&low[s..s + wlen], 90.0, 400.0, self.cfg.voicing_threshold)
            {
                pitches.push(p);
                voiced += 1;
            }
            s += FRAME_SAMPLES * 2;
        }

        Ok(AudioClipFeatures {
            ste_low: ClipStats::from_frames(&ste_low),
            ste_mid: ClipStats::from_frames(&ste_mid),
            pitch: ClipStats::from_frames(&pitches),
            mfcc3: ClipStats::from_frames(&mfcc3),
            pause_rate: silent as f64 / n_frames as f64,
            voiced_rate: if windows == 0 {
                0.0
            } else {
                voiced as f64 / windows as f64
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::sine;
    use crate::synth::audio::AudioSynth;
    use crate::synth::scenario::{RaceProfile, RaceScenario, ScenarioConfig};

    #[test]
    fn clip_stats_aggregate_correctly() {
        let s = ClipStats::from_frames(&[1.0, 3.0, 2.0]);
        assert!((s.avg - 2.0).abs() < 1e-12);
        assert!((s.max - 3.0).abs() < 1e-12);
        assert!((s.dyn_range - 2.0).abs() < 1e-12);
        assert_eq!(ClipStats::from_frames(&[]), ClipStats::default());
    }

    #[test]
    fn ste_scales_with_amplitude_squared() {
        let quiet = sine(300.0, 0.1, FRAME_SAMPLES, SAMPLE_RATE);
        let loud = sine(300.0, 0.4, FRAME_SAMPLES, SAMPLE_RATE);
        let eq = short_time_energy(&quiet, Window::Hamming);
        let el = short_time_energy(&loud, Window::Hamming);
        assert!((el / eq - 16.0).abs() < 0.5, "ratio {}", el / eq);
        assert_eq!(short_time_energy(&[], Window::Hamming), 0.0);
    }

    #[test]
    fn hamming_ste_differs_from_rectangular() {
        let tone = sine(300.0, 0.3, FRAME_SAMPLES, SAMPLE_RATE);
        let h = short_time_energy(&tone, Window::Hamming);
        let r = short_time_energy(&tone, Window::Rectangular);
        assert!(h < r); // window mass < 1
        assert!(h > 0.0);
    }

    #[test]
    fn pitch_tracks_pure_tones() {
        for f0 in [110.0, 180.0, 250.0, 320.0] {
            let tone = sine(f0, 0.5, 2 * FRAME_SAMPLES, SAMPLE_RATE);
            let p = pitch_autocorrelation(&tone, 90.0, 400.0, 0.3)
                .unwrap_or_else(|| panic!("no pitch at {f0}"));
            assert!((p - f0).abs() / f0 < 0.06, "estimated {p} for true {f0}");
        }
    }

    #[test]
    fn pitch_rejects_noise_and_silence() {
        let silence = vec![0.0; 2 * FRAME_SAMPLES];
        assert_eq!(pitch_autocorrelation(&silence, 90.0, 400.0, 0.3), None);
        // Deterministic pseudo-noise (proper avalanche mixing — a bare
        // multiply leaves periodic structure the estimator would find).
        let noise: Vec<f64> = (0..2 * FRAME_SAMPLES)
            .map(|n| {
                let mut z = (n as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        // White noise has a flat autocorrelation: voicing check fails.
        assert_eq!(pitch_autocorrelation(&noise, 90.0, 400.0, 0.5), None);
    }

    #[test]
    fn harmonic_stack_pitch_is_the_fundamental() {
        let mut buf = vec![0.0; 2 * FRAME_SAMPLES];
        for k in 1..=4 {
            let tone = sine(140.0 * k as f64, 0.3 / k as f64, buf.len(), SAMPLE_RATE);
            for (b, t) in buf.iter_mut().zip(tone) {
                *b += t;
            }
        }
        let p = pitch_autocorrelation(&buf, 90.0, 400.0, 0.3).unwrap();
        assert!((p - 140.0).abs() < 10.0, "estimated {p}");
    }

    #[test]
    fn mfcc_distinguishes_spectral_shapes() {
        let low_tone = sine(200.0, 0.4, FRAME_SAMPLES, SAMPLE_RATE);
        let high_tone = sine(2000.0, 0.4, FRAME_SAMPLES, SAMPLE_RATE);
        let a = mfcc(&low_tone, 3, 16, 2500.0);
        let b = mfcc(&high_tone, 3, 16, 2500.0);
        assert_eq!(a.len(), 3);
        let dist: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(dist > 0.1, "MFCCs too similar: {a:?} vs {b:?}");
        assert_eq!(mfcc(&[], 3, 16, 2500.0), vec![0.0; 3]);
    }

    #[test]
    fn analyzer_rejects_wrong_clip_length() {
        let a = AudioAnalyzer::standard();
        assert!(a.analyze_clip(&vec![0.0; 100]).is_err());
    }

    #[test]
    fn excited_clips_score_higher_on_the_papers_cues() {
        let sc = RaceScenario::generate(ScenarioConfig::new(RaceProfile::German, 90));
        let audio = AudioSynth::new(&sc);
        let analyzer = AudioAnalyzer::standard();
        let mut excited = Vec::new();
        let mut calm = Vec::new();
        for clip in 0..sc.n_clips {
            let is_exc = sc.is_excited(clip);
            let is_speech = sc.is_speech(clip);
            if is_exc && excited.len() < 30 {
                excited.push(analyzer.analyze_clip(&audio.clip(clip)).unwrap());
            } else if is_speech && !is_exc && calm.len() < 30 {
                calm.push(analyzer.analyze_clip(&audio.clip(clip)).unwrap());
            }
        }
        assert!(excited.len() >= 10 && calm.len() >= 10);
        let mean = |v: &[AudioClipFeatures], f: fn(&AudioClipFeatures) -> f64| {
            v.iter().map(f).sum::<f64>() / v.len() as f64
        };
        // Mid-band STE (the paper's emphasized-speech band) rises.
        let e_mid = mean(&excited, |f| f.ste_mid.avg);
        let c_mid = mean(&calm, |f| f.ste_mid.avg);
        assert!(e_mid > c_mid * 1.5, "ste_mid {e_mid} vs {c_mid}");
        // Pitch rises (excited f0 ≈ 250 Hz vs ≈ 120 Hz).
        let e_pitch = mean(&excited, |f| f.pitch.avg);
        let c_pitch = mean(&calm, |f| f.pitch.avg);
        assert!(e_pitch > c_pitch + 40.0, "pitch {e_pitch} vs {c_pitch}");
        // Pause rate falls.
        let e_pause = mean(&excited, |f| f.pause_rate);
        let c_pause = mean(&calm, |f| f.pause_rate);
        assert!(e_pause < c_pause, "pause {e_pause} vs {c_pause}");
    }
}
