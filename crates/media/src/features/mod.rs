//! The paper's audio-visual feature extraction scheme (§5.2–§5.3).

pub mod audio;
pub mod endpoint;
pub mod vector;
pub mod video;
