//! Analysis windows for short-time energy computation.
//!
//! The paper compares four window filters for STE and selects the Hamming
//! window "because it brought the best results for speech endpoint
//! detection, and excited speech indication" (§5.2).

/// The four analysis windows considered by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Window {
    /// No shaping (boxcar).
    Rectangular,
    /// `0.54 - 0.46 cos(2πn/(N-1))` — the paper's choice.
    Hamming,
    /// `0.5 - 0.5 cos(2πn/(N-1))`.
    Hann,
    /// Three-term Blackman window.
    Blackman,
}

impl Window {
    /// Window coefficients of length `len`.
    pub fn coefficients(self, len: usize) -> Vec<f64> {
        if len == 0 {
            return Vec::new();
        }
        if len == 1 {
            return vec![1.0];
        }
        let denom = (len - 1) as f64;
        (0..len)
            .map(|n| {
                let x = std::f64::consts::TAU * n as f64 / denom;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hamming => 0.54 - 0.46 * x.cos(),
                    Window::Hann => 0.5 - 0.5 * x.cos(),
                    Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
                }
            })
            .collect()
    }

    /// Applies the window to a frame in place.
    pub fn apply(self, frame: &mut [f64]) {
        if self == Window::Rectangular {
            return;
        }
        let coeffs = self.coefficients(frame.len());
        for (v, w) in frame.iter_mut().zip(coeffs) {
            *v *= w;
        }
    }

    /// All four windows, for the selection experiment.
    pub const ALL: [Window; 4] = [
        Window::Rectangular,
        Window::Hamming,
        Window::Hann,
        Window::Blackman,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(16)
            .iter()
            .all(|&w| w == 1.0));
    }

    #[test]
    fn hamming_endpoints_and_peak() {
        let c = Window::Hamming.coefficients(11);
        assert!((c[0] - 0.08).abs() < 1e-12);
        assert!((c[10] - 0.08).abs() < 1e-12);
        assert!((c[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_endpoints_are_zero() {
        let c = Window::Hann.coefficients(9);
        assert!(c[0].abs() < 1e-12);
        assert!(c[8].abs() < 1e-12);
        assert!((c[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windows_are_symmetric() {
        for w in Window::ALL {
            let c = w.coefficients(32);
            for i in 0..16 {
                assert!(
                    (c[i] - c[31 - i]).abs() < 1e-12,
                    "{w:?} not symmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn degenerate_lengths() {
        for w in Window::ALL {
            assert!(w.coefficients(0).is_empty());
            assert_eq!(w.coefficients(1), vec![1.0]);
        }
    }

    #[test]
    fn apply_scales_samples() {
        let mut frame = vec![1.0; 8];
        Window::Hamming.apply(&mut frame);
        assert!((frame[0] - 0.08).abs() < 1e-12);
        let mut rect = vec![2.0; 8];
        Window::Rectangular.apply(&mut rect);
        assert!(rect.iter().all(|&v| v == 2.0));
    }
}
