//! The temporal grid: samples, frames, clips, video frames.
//!
//! The paper samples audio at 22 kHz, analyses it in 10 ms *frames* and
//! aggregates features over 0.1 s *clips* (§5.2, §5.5). We use exactly
//! 22 000 Hz (the paper's "22kHz"), which makes the grid exact:
//! 220 samples per frame, 10 frames (2 200 samples) per clip, 10 clips
//! per second. Video runs at 25 fps (PAL), i.e. 2.5 video frames per clip.

/// Audio sample rate in Hz.
pub const SAMPLE_RATE: usize = 22_000;

/// Samples per 10 ms analysis frame.
pub const FRAME_SAMPLES: usize = SAMPLE_RATE / 100;

/// Samples per 0.1 s clip.
pub const CLIP_SAMPLES: usize = SAMPLE_RATE / 10;

/// Video frames per second (PAL).
pub const VIDEO_FPS: usize = 25;

/// Analysis frames per clip.
pub const fn frames_per_clip() -> usize {
    CLIP_SAMPLES / FRAME_SAMPLES
}

/// Clips per second of media.
pub const fn clips_per_second() -> usize {
    SAMPLE_RATE / CLIP_SAMPLES
}

/// Clip index covering a given audio sample.
pub fn clip_of_sample(sample: usize) -> usize {
    sample / CLIP_SAMPLES
}

/// First audio sample of a clip.
pub fn clip_start_sample(clip: usize) -> usize {
    clip * CLIP_SAMPLES
}

/// Clip index covering a given video frame (25 fps → 2.5 frames/clip).
pub fn clip_of_video_frame(frame: usize) -> usize {
    frame * clips_per_second() / VIDEO_FPS
}

/// Video frame index at the start of a clip.
pub fn video_frame_of_clip(clip: usize) -> usize {
    clip * VIDEO_FPS / clips_per_second()
}

/// Number of clips covering `seconds` of media.
pub fn clips_in_seconds(seconds: usize) -> usize {
    seconds * clips_per_second()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_exact() {
        assert_eq!(FRAME_SAMPLES, 220);
        assert_eq!(CLIP_SAMPLES, 2200);
        assert_eq!(frames_per_clip(), 10);
        assert_eq!(clips_per_second(), 10);
    }

    #[test]
    fn sample_to_clip_mapping() {
        assert_eq!(clip_of_sample(0), 0);
        assert_eq!(clip_of_sample(2199), 0);
        assert_eq!(clip_of_sample(2200), 1);
        assert_eq!(clip_start_sample(3), 6600);
    }

    #[test]
    fn video_frame_of_clip_mapping() {
        assert_eq!(video_frame_of_clip(0), 0);
        assert_eq!(video_frame_of_clip(1), 2); // 2.5 fps/clip floored
        assert_eq!(video_frame_of_clip(2), 5);
        assert_eq!(video_frame_of_clip(10), 25);
    }

    #[test]
    fn clips_in_seconds_matches_rate() {
        assert_eq!(clips_in_seconds(300), 3000); // the paper's 300 s = 3000 evidences
    }
}
