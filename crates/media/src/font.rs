//! A 5×7 bitmap font for superimposed captions.
//!
//! The TV producer's caption generator is part of the broadcast signal the
//! paper analyses, so the font lives here in the media crate: the
//! synthetic video renderer draws captions with it, and the text
//! recognition crate uses the same glyphs as its *reference patterns*
//! (§5.4 matches recognized characters against reference patterns).

/// Glyph width in pixels.
pub const GLYPH_W: usize = 5;
/// Glyph height in pixels.
pub const GLYPH_H: usize = 7;
/// Horizontal spacing between glyphs, in pixels (before scaling).
pub const GLYPH_SPACING: usize = 1;

/// 7 rows of 5 bits (MSB = leftmost pixel) per glyph.
type Glyph = [u8; GLYPH_H];

const fn g(rows: [u8; GLYPH_H]) -> Glyph {
    rows
}

/// Returns the glyph bitmap for a character, if the font covers it.
/// Lowercase letters map onto uppercase.
pub fn glyph(c: char) -> Option<Glyph> {
    let c = c.to_ascii_uppercase();
    Some(match c {
        'A' => g([0x0E, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11]),
        'B' => g([0x1E, 0x11, 0x11, 0x1E, 0x11, 0x11, 0x1E]),
        'C' => g([0x0E, 0x11, 0x10, 0x10, 0x10, 0x11, 0x0E]),
        'D' => g([0x1E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x1E]),
        'E' => g([0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x1F]),
        'F' => g([0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x10]),
        'G' => g([0x0E, 0x11, 0x10, 0x17, 0x11, 0x11, 0x0F]),
        'H' => g([0x11, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11]),
        'I' => g([0x0E, 0x04, 0x04, 0x04, 0x04, 0x04, 0x0E]),
        'J' => g([0x07, 0x02, 0x02, 0x02, 0x02, 0x12, 0x0C]),
        'K' => g([0x11, 0x12, 0x14, 0x18, 0x14, 0x12, 0x11]),
        'L' => g([0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x1F]),
        'M' => g([0x11, 0x1B, 0x15, 0x15, 0x11, 0x11, 0x11]),
        'N' => g([0x11, 0x19, 0x15, 0x13, 0x11, 0x11, 0x11]),
        'O' => g([0x0E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E]),
        'P' => g([0x1E, 0x11, 0x11, 0x1E, 0x10, 0x10, 0x10]),
        'Q' => g([0x0E, 0x11, 0x11, 0x11, 0x15, 0x12, 0x0D]),
        'R' => g([0x1E, 0x11, 0x11, 0x1E, 0x14, 0x12, 0x11]),
        'S' => g([0x0F, 0x10, 0x10, 0x0E, 0x01, 0x01, 0x1E]),
        'T' => g([0x1F, 0x04, 0x04, 0x04, 0x04, 0x04, 0x04]),
        'U' => g([0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E]),
        'V' => g([0x11, 0x11, 0x11, 0x11, 0x11, 0x0A, 0x04]),
        'W' => g([0x11, 0x11, 0x11, 0x15, 0x15, 0x15, 0x0A]),
        'X' => g([0x11, 0x11, 0x0A, 0x04, 0x0A, 0x11, 0x11]),
        'Y' => g([0x11, 0x11, 0x0A, 0x04, 0x04, 0x04, 0x04]),
        'Z' => g([0x1F, 0x01, 0x02, 0x04, 0x08, 0x10, 0x1F]),
        '0' => g([0x0E, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0E]),
        '1' => g([0x04, 0x0C, 0x04, 0x04, 0x04, 0x04, 0x0E]),
        '2' => g([0x0E, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1F]),
        '3' => g([0x1F, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0E]),
        '4' => g([0x02, 0x06, 0x0A, 0x12, 0x1F, 0x02, 0x02]),
        '5' => g([0x1F, 0x10, 0x1E, 0x01, 0x01, 0x11, 0x0E]),
        '6' => g([0x06, 0x08, 0x10, 0x1E, 0x11, 0x11, 0x0E]),
        '7' => g([0x1F, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08]),
        '8' => g([0x0E, 0x11, 0x11, 0x0E, 0x11, 0x11, 0x0E]),
        '9' => g([0x0E, 0x11, 0x11, 0x0F, 0x01, 0x02, 0x0C]),
        ' ' => g([0, 0, 0, 0, 0, 0, 0]),
        '.' => g([0, 0, 0, 0, 0, 0x0C, 0x0C]),
        '-' => g([0, 0, 0, 0x1F, 0, 0, 0]),
        ':' => g([0, 0x0C, 0x0C, 0, 0x0C, 0x0C, 0]),
        _ => return None,
    })
}

/// True when the glyph has the pixel at (col, row) set.
pub fn glyph_pixel(glyph: &Glyph, col: usize, row: usize) -> bool {
    row < GLYPH_H && col < GLYPH_W && (glyph[row] >> (GLYPH_W - 1 - col)) & 1 == 1
}

/// Pixel width of a rendered string at scale 1 (including spacing).
pub fn text_width(text: &str) -> usize {
    if text.is_empty() {
        return 0;
    }
    text.chars().count() * (GLYPH_W + GLYPH_SPACING) - GLYPH_SPACING
}

/// Draws `text` onto a frame buffer at (x, y), scaled by `scale`,
/// in `color`. Characters outside the font are skipped (advancing).
pub fn draw_text(
    fb: &mut crate::frame::FrameBuf,
    x: usize,
    y: usize,
    scale: usize,
    color: [u8; 3],
    text: &str,
) {
    let mut cx = x;
    for c in text.chars() {
        if let Some(gl) = glyph(c) {
            for row in 0..GLYPH_H {
                for col in 0..GLYPH_W {
                    if glyph_pixel(&gl, col, row) {
                        fb.fill_rect(cx + col * scale, y + row * scale, scale, scale, color);
                    }
                }
            }
        }
        cx += (GLYPH_W + GLYPH_SPACING) * scale;
    }
}

/// Renders a string into a boolean bitmap (true = ink) at scale 1 —
/// the reference-pattern form used by the text recognizer.
pub fn render_pattern(text: &str) -> Vec<Vec<bool>> {
    let w = text_width(text);
    let mut out = vec![vec![false; w]; GLYPH_H];
    let mut cx = 0usize;
    for c in text.chars() {
        if let Some(gl) = glyph(c) {
            for (row, out_row) in out.iter_mut().enumerate() {
                for col in 0..GLYPH_W {
                    if glyph_pixel(&gl, col, row) {
                        out_row[cx + col] = true;
                    }
                }
            }
        }
        cx += GLYPH_W + GLYPH_SPACING;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBuf;

    #[test]
    fn font_covers_the_caption_alphabet() {
        for c in ('A'..='Z').chain('0'..='9').chain([' ', '.', '-', ':']) {
            assert!(glyph(c).is_some(), "missing glyph '{c}'");
        }
        assert!(glyph('€').is_none());
        assert_eq!(glyph('a'), glyph('A'));
    }

    #[test]
    fn glyphs_are_distinct() {
        let chars: Vec<char> = ('A'..='Z').chain('0'..='9').collect();
        for (i, &a) in chars.iter().enumerate() {
            for &b in &chars[i + 1..] {
                assert_ne!(glyph(a), glyph(b), "glyphs '{a}' and '{b}' collide");
            }
        }
    }

    #[test]
    fn glyph_pixel_reads_msb_left() {
        let t = glyph('T').unwrap();
        // Top row of T is full.
        for col in 0..GLYPH_W {
            assert!(glyph_pixel(&t, col, 0));
        }
        // Stem is centered.
        assert!(glyph_pixel(&t, 2, 3));
        assert!(!glyph_pixel(&t, 0, 3));
        assert!(!glyph_pixel(&t, 9, 0)); // out of bounds
    }

    #[test]
    fn text_width_accounts_for_spacing() {
        assert_eq!(text_width(""), 0);
        assert_eq!(text_width("A"), 5);
        assert_eq!(text_width("AB"), 11);
    }

    #[test]
    fn draw_text_puts_ink_on_the_frame() {
        let mut fb = FrameBuf::filled(64, 16, [0, 0, 0]);
        draw_text(&mut fb, 2, 2, 1, [255, 255, 0], "PIT");
        let f = fb.freeze();
        let ink = f.fraction_matching(0, 0, 64, 16, |[r, g, _]| r > 200 && g > 200);
        assert!(ink > 0.0);
        // Scale 2 covers 4x the area.
        let mut fb2 = FrameBuf::filled(64, 32, [0, 0, 0]);
        draw_text(&mut fb2, 2, 2, 2, [255, 255, 0], "PIT");
        let f2 = fb2.freeze();
        let ink2 = f2.fraction_matching(0, 0, 64, 32, |[r, g, _]| r > 200 && g > 200);
        assert!(ink2 > ink * 1.5);
    }

    #[test]
    fn render_pattern_round_trips_glyph_pixels() {
        let p = render_pattern("HI");
        assert_eq!(p.len(), GLYPH_H);
        assert_eq!(p[0].len(), text_width("HI"));
        // H has its verticals in columns 0 and 4.
        assert!(p[0][0] && p[0][4]);
        assert!(!p[0][2]);
        // I starts at column 6: top row 0x0E → columns 7,8,9.
        assert!(p[0][7] && p[0][8] && p[0][9]);
        assert!(!p[0][6]);
    }
}
