//! # f1-media — the raw-signal substrate of the Formula 1 case study
//!
//! The paper digitized three 2001 Formula 1 Grands Prix (PAL video at
//! 384×288, audio at 22 kHz/16-bit) and extracted seventeen audio-visual
//! features at a 0.1 s clip rate (§5.2–§5.3). Those tapes are not
//! available, so this crate substitutes a **seeded synthetic broadcast**:
//!
//! * [`synth::scenario`] draws a ground-truth race timeline — start,
//!   passings, fly-outs, pit stops, replays, excited commentary,
//!   superimposed captions — from a race *profile* (`german`, `belgian`,
//!   `usa`) that controls camera work and event statistics,
//! * [`synth::audio`] renders actual 22 kHz PCM: a harmonic speech source
//!   with pitch/energy contours (raised when the announcer is excited),
//!   engine roar, crowd noise and silence gaps,
//! * [`synth::video`] renders actual 384×288 RGB frames on demand: moving
//!   cars, camera cuts, DVE replay wipes, the start semaphore, dust and
//!   sand plumes, and shaded caption boxes with bitmap text.
//!
//! On top of the synthetic (but *raw*) signals, the crate implements the
//! paper's feature extraction for real:
//!
//! * [`features::audio`] — short-time energy over filtered sub-bands with
//!   a choice of four analysis windows, autocorrelation pitch tracking,
//!   mel-frequency cepstral coefficients, pause rate, and the clip-level
//!   aggregates (average / maximum / dynamic range) of §5.2,
//! * [`features::endpoint`] — the STE+MFCC speech endpoint detector with
//!   the paper's thresholds (2.2 × 10⁻³ and 1.3),
//! * [`features::video`] — multi-frame histogram shot detection, color
//!   difference motion, semaphore detection, dust/sand color filtering,
//!   motion-histogram passing cues and DVE replay detection,
//! * [`features::vector`] — assembly of the f1…f17 evidence matrix in the
//!   paper's feature order, ready for
//!   `f1_bayes::evidence::EvidenceSeq::from_matrix`.

pub mod features;
pub mod font;
pub mod frame;
pub mod signal;
pub mod synth;
#[cfg(test)]
pub(crate) mod test_support;
pub mod time;
pub mod window;

pub use frame::Frame;
pub use synth::scenario::{RaceProfile, RaceScenario, ScenarioConfig};
pub use time::{clips_per_second, frames_per_clip, CLIP_SAMPLES, FRAME_SAMPLES, SAMPLE_RATE};

/// Errors raised by media synthesis and feature extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum MediaError {
    /// A parameter was outside its valid range.
    BadParameter(String),
    /// A buffer had an unexpected length.
    Shape(String),
    /// A `cobra-faults` injection fired at a media fault site (tests
    /// only; never constructed in production runs).
    Fault {
        /// The fault site name.
        site: String,
        /// Whether a retry could plausibly clear it.
        transient: bool,
    },
}

impl std::fmt::Display for MediaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MediaError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
            MediaError::Shape(msg) => write!(f, "shape error: {msg}"),
            MediaError::Fault { site, transient } => {
                let kind = if *transient { "transient" } else { "permanent" };
                write!(f, "injected {kind} fault at site '{site}'")
            }
        }
    }
}

impl From<cobra_faults::FaultError> for MediaError {
    fn from(e: cobra_faults::FaultError) -> Self {
        MediaError::Fault {
            site: e.site,
            transient: e.transient,
        }
    }
}

impl std::error::Error for MediaError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, MediaError>;
