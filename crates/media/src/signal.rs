//! Basic DSP: FIR band-pass filtering and Goertzel spectral probes.
//!
//! The paper filters the audio into sub-bands before computing features:
//! 0–882 Hz for pitch and MFCC, 882–2205 Hz for the emphasized-speech STE,
//! and everything below 2.5 kHz for speech characterization (§5.2). A
//! windowed-sinc FIR filter covers all of these. Spectral energies for the
//! mel filterbank are probed with the Goertzel algorithm, which avoids an
//! FFT dependency at the small cost of evaluating only the frequencies we
//! need.

use crate::{MediaError, Result};

/// A linear-phase FIR filter designed by the windowed-sinc method.
#[derive(Debug, Clone)]
pub struct FirFilter {
    taps: Vec<f64>,
}

impl FirFilter {
    /// Designs a band-pass filter for `lo_hz..hi_hz` (pass `lo_hz = 0` for
    /// a low-pass). `taps` must be odd and ≥ 3.
    pub fn band_pass(lo_hz: f64, hi_hz: f64, taps: usize, sample_rate: usize) -> Result<Self> {
        if taps < 3 || taps.is_multiple_of(2) {
            return Err(MediaError::BadParameter(format!(
                "taps must be odd and >= 3, got {taps}"
            )));
        }
        let nyquist = sample_rate as f64 / 2.0;
        if !(0.0..nyquist).contains(&lo_hz) || hi_hz <= lo_hz || hi_hz > nyquist {
            return Err(MediaError::BadParameter(format!(
                "band {lo_hz}..{hi_hz} Hz invalid for sample rate {sample_rate}"
            )));
        }
        let fl = lo_hz / sample_rate as f64;
        let fh = hi_hz / sample_rate as f64;
        let mid = (taps / 2) as isize;
        let sinc = |f: f64, n: isize| -> f64 {
            if n == 0 {
                2.0 * f
            } else {
                (std::f64::consts::TAU * f * n as f64).sin() / (std::f64::consts::PI * n as f64)
            }
        };
        let mut t: Vec<f64> = (0..taps as isize)
            .map(|i| {
                let n = i - mid;
                let ideal = sinc(fh, n) - sinc(fl, n);
                // Hamming window on the impulse response.
                let w = 0.54 - 0.46 * (std::f64::consts::TAU * i as f64 / (taps - 1) as f64).cos();
                ideal * w
            })
            .collect();
        // Normalize passband gain at the band centre.
        let fc = (fl + fh) / 2.0;
        let gain: f64 = t
            .iter()
            .enumerate()
            .map(|(i, &h)| {
                let n = (i as isize - mid) as f64;
                h * (std::f64::consts::TAU * fc * n).cos()
            })
            .sum();
        if gain.abs() > 1e-9 {
            for v in &mut t {
                *v /= gain;
            }
        }
        Ok(FirFilter { taps: t })
    }

    /// Filters a signal (same length out, zero-padded edges).
    pub fn apply(&self, signal: &[f64]) -> Vec<f64> {
        let m = self.taps.len();
        let mid = m / 2;
        let n = signal.len();
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (k, &h) in self.taps.iter().enumerate() {
                let j = i as isize + k as isize - mid as isize;
                if j >= 0 && (j as usize) < n {
                    acc += h * signal[j as usize];
                }
            }
            *o = acc;
        }
        out
    }

    /// The filter's impulse response.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }
}

/// Power of `signal` at `freq_hz` via the Goertzel algorithm, normalized
/// by the frame length.
pub fn goertzel_power(signal: &[f64], freq_hz: f64, sample_rate: usize) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    let w = std::f64::consts::TAU * freq_hz / sample_rate as f64;
    let coeff = 2.0 * w.cos();
    let (mut s1, mut s2) = (0.0f64, 0.0f64);
    for &x in signal {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    let power = s1 * s1 + s2 * s2 - coeff * s1 * s2;
    power / (signal.len() as f64 * signal.len() as f64 / 4.0)
}

/// Generates a pure sine tone (for tests and calibration).
pub fn sine(freq_hz: f64, amplitude: f64, len: usize, sample_rate: usize) -> Vec<f64> {
    (0..len)
        .map(|n| {
            amplitude * (std::f64::consts::TAU * freq_hz * n as f64 / sample_rate as f64).sin()
        })
        .collect()
}

/// Root-mean-square of a signal.
pub fn rms(signal: &[f64]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    (signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SAMPLE_RATE;

    #[test]
    fn band_pass_design_validates_parameters() {
        assert!(FirFilter::band_pass(0.0, 882.0, 100, SAMPLE_RATE).is_err()); // even taps
        assert!(FirFilter::band_pass(0.0, 882.0, 1, SAMPLE_RATE).is_err());
        assert!(FirFilter::band_pass(900.0, 800.0, 101, SAMPLE_RATE).is_err());
        assert!(FirFilter::band_pass(0.0, 20_000.0, 101, SAMPLE_RATE).is_err());
        assert!(FirFilter::band_pass(0.0, 882.0, 101, SAMPLE_RATE).is_ok());
    }

    #[test]
    fn low_pass_passes_low_and_rejects_high() {
        let lp = FirFilter::band_pass(0.0, 882.0, 201, SAMPLE_RATE).unwrap();
        let low = sine(300.0, 1.0, 4400, SAMPLE_RATE);
        let high = sine(4000.0, 1.0, 4400, SAMPLE_RATE);
        let low_out = rms(&lp.apply(&low)[400..4000]);
        let high_out = rms(&lp.apply(&high)[400..4000]);
        assert!(low_out > 0.5, "low band attenuated: {low_out}");
        assert!(high_out < 0.05, "high band leaked: {high_out}");
    }

    #[test]
    fn band_pass_selects_the_mid_band() {
        let bp = FirFilter::band_pass(882.0, 2205.0, 201, SAMPLE_RATE).unwrap();
        let inside = sine(1500.0, 1.0, 4400, SAMPLE_RATE);
        let below = sine(300.0, 1.0, 4400, SAMPLE_RATE);
        let above = sine(5000.0, 1.0, 4400, SAMPLE_RATE);
        assert!(rms(&bp.apply(&inside)[400..4000]) > 0.5);
        assert!(rms(&bp.apply(&below)[400..4000]) < 0.08);
        assert!(rms(&bp.apply(&above)[400..4000]) < 0.08);
    }

    #[test]
    fn goertzel_detects_matching_frequency() {
        let tone = sine(440.0, 1.0, 2200, SAMPLE_RATE);
        let at = goertzel_power(&tone, 440.0, SAMPLE_RATE);
        let off = goertzel_power(&tone, 1320.0, SAMPLE_RATE);
        assert!(at > 10.0 * off, "at={at} off={off}");
        assert_eq!(goertzel_power(&[], 440.0, SAMPLE_RATE), 0.0);
    }

    #[test]
    fn rms_of_unit_sine_is_inv_sqrt2() {
        let tone = sine(100.0, 1.0, 22_000, SAMPLE_RATE);
        assert!((rms(&tone) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert_eq!(rms(&[]), 0.0);
    }
}
