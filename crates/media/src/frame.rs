//! RGB video frames.
//!
//! A [`Frame`] is a plain 24-bit RGB buffer at the paper's working
//! resolution (a quarter of PAL, 384×288). Both the synthetic broadcast
//! generator and the feature extractors operate on these buffers.

/// Default frame width (quarter PAL).
pub const WIDTH: usize = 384;
/// Default frame height (quarter PAL).
pub const HEIGHT: usize = 288;

/// A 24-bit RGB frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    data: bytes::Bytes,
}

/// A mutable frame under construction.
#[derive(Debug, Clone)]
pub struct FrameBuf {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl FrameBuf {
    /// A frame filled with one color.
    pub fn filled(width: usize, height: usize, rgb: [u8; 3]) -> Self {
        let mut data = Vec::with_capacity(width * height * 3);
        for _ in 0..width * height {
            data.extend_from_slice(&rgb);
        }
        FrameBuf {
            width,
            height,
            data,
        }
    }

    /// A black frame at the paper's 384×288 resolution.
    pub fn standard() -> Self {
        FrameBuf::filled(WIDTH, HEIGHT, [0, 0, 0])
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at (x, y); out-of-bounds reads return black.
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        if x >= self.width || y >= self.height {
            return [0, 0, 0];
        }
        let i = (y * self.width + x) * 3;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Sets a pixel; out-of-bounds writes are ignored.
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        if x >= self.width || y >= self.height {
            return;
        }
        let i = (y * self.width + x) * 3;
        self.data[i..i + 3].copy_from_slice(&rgb);
    }

    /// Fills the axis-aligned rectangle `[x, x+w) × [y, y+h)` (clipped).
    pub fn fill_rect(&mut self, x: usize, y: usize, w: usize, h: usize, rgb: [u8; 3]) {
        for yy in y..(y + h).min(self.height) {
            for xx in x..(x + w).min(self.width) {
                self.set(xx, yy, rgb);
            }
        }
    }

    /// Alpha-blends a rectangle towards `rgb` with weight `alpha`
    /// (0 = untouched, 255 = solid) — used for shaded caption boxes.
    pub fn blend_rect(&mut self, x: usize, y: usize, w: usize, h: usize, rgb: [u8; 3], alpha: u8) {
        let a = alpha as u32;
        for yy in y..(y + h).min(self.height) {
            for xx in x..(x + w).min(self.width) {
                let old = self.get(xx, yy);
                let mut new = [0u8; 3];
                for c in 0..3 {
                    new[c] = (((255 - a) * old[c] as u32 + a * rgb[c] as u32) / 255) as u8;
                }
                self.set(xx, yy, new);
            }
        }
    }

    /// Freezes the buffer into an immutable, cheaply clonable [`Frame`].
    pub fn freeze(self) -> Frame {
        Frame {
            width: self.width,
            height: self.height,
            data: bytes::Bytes::from(self.data),
        }
    }
}

impl Frame {
    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at (x, y); out-of-bounds reads return black.
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        if x >= self.width || y >= self.height {
            return [0, 0, 0];
        }
        let i = (y * self.width + x) * 3;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Luma (Rec. 601 approximation) of a pixel, in `0..=255`.
    pub fn luma(&self, x: usize, y: usize) -> u8 {
        let [r, g, b] = self.get(x, y);
        ((299 * r as u32 + 587 * g as u32 + 114 * b as u32) / 1000) as u8
    }

    /// Per-channel color histogram with `bins` buckets per channel,
    /// concatenated R‖G‖B and normalized to sum 1 per channel.
    pub fn histogram(&self, bins: usize) -> Vec<f64> {
        self.histogram_rows(bins, 0, self.height)
    }

    /// Histogram restricted to rows `y0..y1` — shot detectors exclude the
    /// caption band at the bottom of the picture.
    pub fn histogram_rows(&self, bins: usize, y0: usize, y1: usize) -> Vec<f64> {
        let y1 = y1.min(self.height);
        let y0 = y0.min(y1);
        let mut hist = vec![0.0; bins * 3];
        let rows = y1 - y0;
        if rows == 0 {
            return hist;
        }
        let n = (self.width * rows) as f64;
        for y in y0..y1 {
            for x in 0..self.width {
                let px = self.get(x, y);
                for (c, &v) in px.iter().enumerate() {
                    let b = (v as usize * bins / 256).min(bins - 1);
                    hist[c * bins + b] += 1.0;
                }
            }
        }
        for v in &mut hist {
            *v /= n;
        }
        hist
    }

    /// Mean absolute pixel difference between two frames, normalized to
    /// `[0, 1]` — the paper's "pixel color difference between two
    /// consecutive frames" motion cue.
    pub fn mean_abs_diff(&self, other: &Frame) -> f64 {
        assert_eq!(self.width, other.width, "frame width mismatch");
        assert_eq!(self.height, other.height, "frame height mismatch");
        let total: u64 = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a as i16 - b as i16).unsigned_abs() as u64)
            .sum();
        total as f64 / (self.data.len() as f64 * 255.0)
    }

    /// Fraction of pixels in a rectangle that satisfy `pred`.
    pub fn fraction_matching(
        &self,
        x: usize,
        y: usize,
        w: usize,
        h: usize,
        mut pred: impl FnMut([u8; 3]) -> bool,
    ) -> f64 {
        let x1 = (x + w).min(self.width);
        let y1 = (y + h).min(self.height);
        if x >= x1 || y >= y1 {
            return 0.0;
        }
        let mut hits = 0usize;
        let mut total = 0usize;
        for yy in y..y1 {
            for xx in x..x1 {
                total += 1;
                if pred(self.get(xx, yy)) {
                    hits += 1;
                }
            }
        }
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_get_round_trip() {
        let mut fb = FrameBuf::filled(16, 8, [1, 2, 3]);
        assert_eq!(fb.get(5, 5), [1, 2, 3]);
        fb.set(5, 5, [200, 100, 50]);
        assert_eq!(fb.get(5, 5), [200, 100, 50]);
        assert_eq!(fb.get(99, 0), [0, 0, 0]); // out of bounds
        fb.set(99, 99, [9, 9, 9]); // ignored
        let f = fb.freeze();
        assert_eq!(f.get(5, 5), [200, 100, 50]);
        assert_eq!(f.width(), 16);
        assert_eq!(f.height(), 8);
    }

    #[test]
    fn fill_rect_clips_at_edges() {
        let mut fb = FrameBuf::filled(10, 10, [0, 0, 0]);
        fb.fill_rect(8, 8, 5, 5, [255, 0, 0]);
        let f = fb.freeze();
        assert_eq!(f.get(9, 9), [255, 0, 0]);
        assert_eq!(f.get(7, 7), [0, 0, 0]);
    }

    #[test]
    fn blend_rect_mixes_colors() {
        let mut fb = FrameBuf::filled(4, 4, [200, 200, 200]);
        fb.blend_rect(0, 0, 4, 4, [0, 0, 0], 128);
        let v = fb.get(0, 0)[0];
        assert!((90..=110).contains(&v), "blend gave {v}");
    }

    #[test]
    fn luma_weights_green_highest() {
        let mut fb = FrameBuf::filled(2, 1, [0, 0, 0]);
        fb.set(0, 0, [255, 0, 0]);
        fb.set(1, 0, [0, 255, 0]);
        let f = fb.freeze();
        assert!(f.luma(1, 0) > f.luma(0, 0));
    }

    #[test]
    fn histogram_sums_to_one_per_channel() {
        let f = FrameBuf::filled(8, 8, [10, 128, 250]).freeze();
        let h = f.histogram(8);
        for c in 0..3 {
            let s: f64 = h[c * 8..(c + 1) * 8].iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // All mass in one bin per channel for a flat frame.
        assert!((h[0] - 1.0).abs() < 1e-12); // R=10 → bin 0
        assert!((h[8 + 4] - 1.0).abs() < 1e-12); // G=128 → bin 4
        assert!((h[16 + 7] - 1.0).abs() < 1e-12); // B=250 → bin 7
    }

    #[test]
    fn mean_abs_diff_detects_change() {
        let a = FrameBuf::filled(8, 8, [0, 0, 0]).freeze();
        let b = FrameBuf::filled(8, 8, [255, 255, 255]).freeze();
        assert!((a.mean_abs_diff(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.mean_abs_diff(&a), 0.0);
    }

    #[test]
    fn fraction_matching_counts_predicate_hits() {
        let mut fb = FrameBuf::filled(10, 10, [0, 0, 0]);
        fb.fill_rect(0, 0, 5, 10, [255, 0, 0]);
        let f = fb.freeze();
        let frac = f.fraction_matching(0, 0, 10, 10, |[r, _, _]| r > 128);
        assert!((frac - 0.5).abs() < 1e-12);
        assert_eq!(f.fraction_matching(20, 20, 5, 5, |_| true), 0.0);
    }
}
