//! Checksummed snapshot files: per-BAT column dumps plus the manifest
//! that binds them into one consistent checkpoint.
//!
//! Every snapshot artifact shares a framing:
//!
//! ```text
//! [u32 magic][u32 format version][u32 payload len][u32 crc32(payload)][payload]
//! ```
//!
//! A reader rejects the file (rather than trusting partial contents) on
//! any magic/version/length/CRC mismatch — a half-written BAT file or a
//! manifest torn mid-rename is indistinguishable from garbage, and
//! recovery falls back to the previous manifest generation.
//!
//! The manifest is the *commit point* of a checkpoint: BAT files are
//! written first under fresh names, then the manifest is written to a
//! temp file, fsynced, and atomically renamed over `MANIFEST`. A crash
//! before the rename leaves the old manifest (and the old, still-present
//! BAT files) in force; a crash after it leaves the new one. There is no
//! intermediate state.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use f1_monet::bat::{Bat, Column, ColumnData, StrColumn};

use crate::codec::{CodecError, Dec, Enc};
use crate::crc::crc32;
use crate::{StoreError, StoreResult};

const BAT_MAGIC: u32 = 0x5442_4243; // "CBBT" little-endian spirit: Cobra BAT
const MANIFEST_MAGIC: u32 = 0x4E4D_4243; // Cobra ManifestN
const FORMAT_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Framing

/// Frames `payload` with magic + format version + length + CRC.
fn frame(magic: u32, payload: &[u8]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(magic);
    e.u32(FORMAT_VERSION);
    e.u32(payload.len() as u32);
    e.u32(crc32(payload));
    let mut bytes = e.into_bytes();
    bytes.extend_from_slice(payload);
    bytes
}

/// Validates the framing of `bytes` and returns the payload slice.
fn unframe(magic: u32, bytes: &[u8]) -> Result<&[u8], CodecError> {
    let mut d = Dec::new(bytes);
    let got_magic = d.u32("file magic")?;
    if got_magic != magic {
        return Err(CodecError::new(format!(
            "file magic {got_magic:#010x}, expected {magic:#010x}"
        )));
    }
    let version = d.u32("format version")?;
    if version != FORMAT_VERSION {
        return Err(CodecError::new(format!("format version {version}")));
    }
    let len = d.u32("payload length")? as usize;
    let crc = d.u32("payload crc")?;
    if d.remaining() != len {
        return Err(CodecError::new(format!(
            "payload length {len} != {} bytes on disk",
            d.remaining()
        )));
    }
    let payload = &bytes[16..];
    if crc32(payload) != crc {
        return Err(CodecError::new("payload crc mismatch"));
    }
    Ok(payload)
}

/// Writes `bytes` to `path` via a temp file + fsync + atomic rename, then
/// fsyncs the parent directory so the rename itself is durable.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> StoreResult<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| StoreError::io("create tmp", &tmp, e))?;
        f.write_all(bytes)
            .map_err(|e| StoreError::io("write tmp", &tmp, e))?;
        f.sync_data()
            .map_err(|e| StoreError::io("sync tmp", &tmp, e))?;
    }
    cobra_faults::fire("store.checkpoint.rename")?;
    fs::rename(&tmp, path).map_err(|e| StoreError::io("rename tmp", path, e))?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn read_all(path: &Path) -> StoreResult<Vec<u8>> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| StoreError::io("read", path, e))?;
    Ok(bytes)
}

// ---------------------------------------------------------------------------
// Column / Bat encoding

const COL_VOID: u8 = 0;
const COL_OID: u8 = 1;
const COL_INT: u8 = 2;
const COL_DBL: u8 = 3;
const COL_STR: u8 = 4;
const COL_BIT: u8 = 5;

fn encode_column(e: &mut Enc, col: &Column) {
    match col {
        Column::Void { seqbase, len } => {
            e.u8(COL_VOID);
            e.u64(*seqbase);
            e.u64(*len as u64);
        }
        Column::Data(ColumnData::Oid(v)) => {
            e.u8(COL_OID);
            e.u32(v.len() as u32);
            for &x in v {
                e.u64(x);
            }
        }
        Column::Data(ColumnData::Int(v)) => {
            e.u8(COL_INT);
            e.u32(v.len() as u32);
            for &x in v {
                e.i64(x);
            }
        }
        Column::Data(ColumnData::Dbl(v)) => {
            e.u8(COL_DBL);
            e.u32(v.len() as u32);
            for &x in v {
                e.f64(x);
            }
        }
        Column::Data(ColumnData::Str(s)) => {
            e.u8(COL_STR);
            e.u32(s.dict().len() as u32);
            for d in s.dict() {
                e.str(d);
            }
            e.u32(s.codes().len() as u32);
            for &c in s.codes() {
                e.u32(c);
            }
        }
        Column::Data(ColumnData::Bit(v)) => {
            e.u8(COL_BIT);
            e.u32(v.len() as u32);
            for &x in v {
                e.u8(x as u8);
            }
        }
    }
}

fn decode_column(d: &mut Dec<'_>) -> Result<Column, CodecError> {
    match d.u8("column tag")? {
        COL_VOID => {
            let seqbase = d.u64("void seqbase")?;
            let len = d.u64("void len")?;
            Ok(Column::Void {
                seqbase,
                len: len as usize,
            })
        }
        COL_OID => {
            let n = d.count(8, "oid column")?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(d.u64("oid")?);
            }
            Ok(Column::Data(ColumnData::Oid(v)))
        }
        COL_INT => {
            let n = d.count(8, "int column")?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(d.i64("int")?);
            }
            Ok(Column::Data(ColumnData::Int(v)))
        }
        COL_DBL => {
            let n = d.count(8, "dbl column")?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(d.f64("dbl")?);
            }
            Ok(Column::Data(ColumnData::Dbl(v)))
        }
        COL_STR => {
            let nd = d.count(4, "str dictionary")?;
            let mut dict: Vec<Arc<str>> = Vec::with_capacity(nd);
            for _ in 0..nd {
                dict.push(d.arc_str("dict entry")?);
            }
            let nc = d.count(4, "str codes")?;
            let mut codes = Vec::with_capacity(nc);
            for _ in 0..nc {
                codes.push(d.u32("str code")?);
            }
            let col = StrColumn::from_parts(dict, codes)
                .map_err(|e| CodecError::new(format!("str column: {e}")))?;
            Ok(Column::Data(ColumnData::Str(col)))
        }
        COL_BIT => {
            let n = d.count(1, "bit column")?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(d.u8("bit")? != 0);
            }
            Ok(Column::Data(ColumnData::Bit(v)))
        }
        other => Err(CodecError::new(format!("unknown column tag {other}"))),
    }
}

/// Serializes one BAT into a framed, checksummed byte buffer.
pub fn encode_bat(bat: &Bat) -> Vec<u8> {
    let mut e = Enc::new();
    encode_column(&mut e, bat.head());
    encode_column(&mut e, bat.tail());
    frame(BAT_MAGIC, &e.into_bytes())
}

/// Decodes a framed BAT buffer. The rebuilt BAT has a fresh process-local
/// identity (ids are never persisted; the backend re-baselines them).
pub fn decode_bat(bytes: &[u8]) -> Result<Bat, CodecError> {
    let payload = unframe(BAT_MAGIC, bytes)?;
    let mut d = Dec::new(payload);
    let head = decode_column(&mut d)?;
    let tail = decode_column(&mut d)?;
    if !d.is_done() {
        return Err(CodecError::new(format!(
            "bat file: {} trailing bytes",
            d.remaining()
        )));
    }
    Bat::from_columns(head, tail).map_err(|e| CodecError::new(format!("bat columns: {e}")))
}

/// Reads and decodes the BAT file at `path`.
pub fn read_bat_file(path: &Path) -> StoreResult<Bat> {
    let bytes = read_all(path)?;
    decode_bat(&bytes).map_err(|e| StoreError::Corrupt {
        path: path.display().to_string(),
        what: e.what,
    })
}

// ---------------------------------------------------------------------------
// Manifest

/// A video registration as persisted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestVideo {
    /// Catalog name.
    pub name: String,
    /// Clips in the broadcast.
    pub n_clips: u64,
    /// Video frames.
    pub n_frames: u64,
}

/// One snapshotted BAT: catalog name → snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestBat {
    /// Kernel BAT name (`"german.f1"`, `"german.ev.kind"`, …).
    pub name: String,
    /// Snapshot file name inside the data dir.
    pub file: String,
}

/// The checkpoint commit record: which WAL prefix the snapshot covers and
/// which files realize it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Boot epoch at the time of the checkpoint.
    pub epoch: u64,
    /// Catalog generation at the time of the checkpoint.
    pub catalog_gen: u64,
    /// Highest WAL sequence number folded into this snapshot; recovery
    /// replays only records with larger sequence numbers.
    pub wal_seq: u64,
    /// Persisted video registry.
    pub videos: Vec<ManifestVideo>,
    /// Persisted BATs.
    pub bats: Vec<ManifestBat>,
}

/// Serializes a manifest into a framed, checksummed byte buffer.
pub fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(m.epoch);
    e.u64(m.catalog_gen);
    e.u64(m.wal_seq);
    e.u32(m.videos.len() as u32);
    for v in &m.videos {
        e.str(&v.name);
        e.u64(v.n_clips);
        e.u64(v.n_frames);
    }
    e.u32(m.bats.len() as u32);
    for b in &m.bats {
        e.str(&b.name);
        e.str(&b.file);
    }
    frame(MANIFEST_MAGIC, &e.into_bytes())
}

/// Decodes a framed manifest buffer.
pub fn decode_manifest(bytes: &[u8]) -> Result<Manifest, CodecError> {
    let payload = unframe(MANIFEST_MAGIC, bytes)?;
    let mut d = Dec::new(payload);
    let epoch = d.u64("epoch")?;
    let catalog_gen = d.u64("catalog generation")?;
    let wal_seq = d.u64("wal seq")?;
    let nv = d.count(20, "videos")?;
    let mut videos = Vec::with_capacity(nv);
    for _ in 0..nv {
        videos.push(ManifestVideo {
            name: d.str("video name")?,
            n_clips: d.u64("n_clips")?,
            n_frames: d.u64("n_frames")?,
        });
    }
    let nb = d.count(8, "bats")?;
    let mut bats = Vec::with_capacity(nb);
    for _ in 0..nb {
        bats.push(ManifestBat {
            name: d.str("bat name")?,
            file: d.str("bat file")?,
        });
    }
    if !d.is_done() {
        return Err(CodecError::new(format!(
            "manifest: {} trailing bytes",
            d.remaining()
        )));
    }
    Ok(Manifest {
        epoch,
        catalog_gen,
        wal_seq,
        videos,
        bats,
    })
}

/// Reads and decodes the manifest at `path`.
pub fn read_manifest_file(path: &Path) -> StoreResult<Manifest> {
    let bytes = read_all(path)?;
    decode_manifest(&bytes).map_err(|e| StoreError::Corrupt {
        path: path.display().to_string(),
        what: e.what,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_monet::value::{Atom, AtomType};

    fn sample_bats() -> Vec<Bat> {
        vec![
            Bat::from_tail(AtomType::Dbl, [0.5, f64::NAN, -0.0].map(Atom::Dbl)).unwrap(),
            Bat::from_tail(
                AtomType::Str,
                ["pit", "lap", "pit"].into_iter().map(Atom::str),
            )
            .unwrap(),
            Bat::from_tail(AtomType::Int, (0..5).map(Atom::Int)).unwrap(),
            Bat::from_tail(AtomType::Bit, [true, false, true].map(Atom::Bit)).unwrap(),
            Bat::from_pairs(AtomType::Oid, AtomType::Oid, [(Atom::Oid(7), Atom::Oid(9))]).unwrap(),
            Bat::new(AtomType::Void, AtomType::Dbl),
        ]
    }

    #[test]
    fn bat_round_trip_preserves_logical_contents() {
        for bat in sample_bats() {
            let bytes = encode_bat(&bat);
            let back = decode_bat(&bytes).unwrap();
            assert_eq!(back, bat);
        }
    }

    #[test]
    fn str_column_round_trip_keeps_dictionary_shape() {
        let bat = &sample_bats()[1];
        let back = decode_bat(&encode_bat(bat)).unwrap();
        let s = back.tail().strs().unwrap();
        assert_eq!(s.dict_len(), 2);
        assert_eq!(s.codes(), bat.tail().strs().unwrap().codes());
        assert_eq!(s.code_of("pit"), Some(0));
    }

    #[test]
    fn corrupt_bat_bytes_are_rejected() {
        let bytes = encode_bat(&sample_bats()[0]);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(decode_bat(&bad).is_err(), "flip at byte {i} accepted");
        }
        assert!(decode_bat(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_bat(&[]).is_err());
    }

    #[test]
    fn manifest_round_trip() {
        let m = Manifest {
            epoch: 4,
            catalog_gen: 17,
            wal_seq: 321,
            videos: vec![ManifestVideo {
                name: "german".into(),
                n_clips: 1800,
                n_frames: 4500,
            }],
            bats: vec![
                ManifestBat {
                    name: "german.f1".into(),
                    file: "ck3-0.bat".into(),
                },
                ManifestBat {
                    name: "german.ev.kind".into(),
                    file: "ck3-1.bat".into(),
                },
            ],
        };
        let back = decode_manifest(&encode_manifest(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_rejects_wrong_magic() {
        let m = Manifest::default();
        let bytes = encode_manifest(&m);
        assert!(decode_bat(&bytes).is_err());
        assert!(decode_manifest(&encode_bat(&sample_bats()[0])).is_err());
    }

    #[test]
    fn write_atomic_replaces_contents() {
        let dir = std::env::temp_dir().join(format!("cobra-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("MANIFEST");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!path.with_extension("tmp").exists());
    }
}
