//! The [`StorageBackend`] trait and its two implementations.
//!
//! The engine core talks to storage through `Arc<dyn StorageBackend>`:
//! [`MemBackend`] keeps every call a no-op (the pre-durability
//! behaviour, zero overhead), while [`FileBackend`] implements the
//! log/checkpoint/recover protocol described at the crate root.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cobra_obs::{Counter, Gauge, Registry};
use f1_monet::bat::Bat;
use parking_lot::Mutex;

use crate::snapshot::{
    encode_bat, encode_manifest, read_bat_file, read_manifest_file, write_atomic, Manifest,
    ManifestBat, ManifestVideo,
};
use crate::wal::{read_wal_file, FsyncPolicy, WalOp, WalWriter};
use crate::{StoreConfig, StoreError, StoreResult};

const MANIFEST_NAME: &str = "MANIFEST";

/// A live BAT handed to the backend for checkpointing: a clone of the
/// kernel's column data plus the *source* identity `(src_id,
/// src_version)` of the live BAT it was cloned from, which is what the
/// dirty-tracking baseline compares against.
#[derive(Debug)]
pub struct NamedBat {
    /// Kernel BAT name.
    pub name: String,
    /// A clone of the live BAT (clones get fresh ids; that is fine, the
    /// snapshot only needs the column data).
    pub bat: Bat,
    /// `id()` of the live kernel BAT.
    pub src_id: u64,
    /// `version()` of the live kernel BAT.
    pub src_version: u64,
}

/// Everything a checkpoint persists, collected under the commit lock.
#[derive(Debug, Default)]
pub struct SnapshotState {
    /// Catalog generation at the cut.
    pub catalog_gen: u64,
    /// The video registry.
    pub videos: Vec<ManifestVideo>,
    /// Every catalog-owned BAT.
    pub bats: Vec<NamedBat>,
}

/// What recovery found at open.
#[derive(Debug, Default)]
pub struct Recovery {
    /// The boot epoch of this process (strictly greater than any prior
    /// boot against the same data dir; 1 for a fresh dir, 0 for
    /// [`MemBackend`]).
    pub epoch: u64,
    /// Catalog generation recorded by the manifest (replay advances it
    /// further).
    pub catalog_gen: u64,
    /// Videos from the manifest.
    pub videos: Vec<ManifestVideo>,
    /// BATs loaded from snapshot files, ready to install in the kernel.
    pub bats: Vec<(String, Bat)>,
    /// WAL tail operations to replay, in log order.
    pub replay: Vec<WalOp>,
    /// Number of replayed (non-boot) records.
    pub replayed: u64,
    /// True when the WAL tail was torn and trailing bytes were dropped.
    pub torn_tail: bool,
    /// WAL files scanned.
    pub wal_files: u64,
    /// Valid WAL bytes scanned.
    pub wal_bytes: u64,
}

/// What one checkpoint did.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointOutcome {
    /// BAT files written (dirty since the previous checkpoint).
    pub bats_written: u64,
    /// BATs whose `(id, version)` was unchanged — their existing file
    /// was re-referenced without rewriting.
    pub bats_skipped: u64,
    /// Snapshot bytes written (BAT files + manifest).
    pub bytes_written: u64,
    /// Pre-cut WAL files deleted.
    pub wal_files_retired: u64,
    /// The WAL sequence number the snapshot now covers.
    pub wal_seq: u64,
}

/// A point-in-time summary of the storage layer, for `stats` and
/// benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// True for [`FileBackend`].
    pub durable: bool,
    /// Boot epoch.
    pub epoch: u64,
    /// WAL records appended this process.
    pub wal_records: u64,
    /// WAL bytes appended this process.
    pub wal_bytes: u64,
    /// `fdatasync` calls issued by the WAL.
    pub wal_fsyncs: u64,
    /// Records appended since the last checkpoint cut.
    pub pending_records: u64,
    /// Checkpoints completed this process.
    pub checkpoints: u64,
    /// Records replayed by recovery at boot.
    pub recovery_replayed: u64,
    /// BATs loaded from snapshot files at boot.
    pub recovery_bats_loaded: u64,
    /// True when boot recovery discarded a torn WAL tail.
    pub recovery_torn_tail: bool,
}

/// The storage engine as the core sees it.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// True when this backend persists state across restarts.
    fn is_durable(&self) -> bool;

    /// The boot epoch (0 for memory-only backends).
    fn epoch(&self) -> u64;

    /// Takes the recovery state captured at open, if any. Called once by
    /// the engine during boot; later calls return `None`.
    fn take_recovery(&self) -> Option<Recovery>;

    /// Appends one operation to the log and makes it durable per policy.
    /// Must be called *before* applying the mutation in memory; a
    /// returned error means the mutation must not be applied or
    /// acknowledged.
    fn log(&self, op: &WalOp) -> StoreResult<()>;

    /// Records appended since the last checkpoint cut (the automatic
    /// checkpoint trigger watches this).
    fn pending_records(&self) -> u64;

    /// Starts a checkpoint: rotates the WAL and remembers the cut.
    /// Must run under the caller's commit lock (no concurrent [`log`]
    /// between the rotation and the state collection). Returns `false`
    /// when this backend has nothing to checkpoint.
    ///
    /// [`log`]: StorageBackend::log
    fn begin_checkpoint(&self) -> StoreResult<bool>;

    /// Completes a checkpoint begun by
    /// [`begin_checkpoint`](StorageBackend::begin_checkpoint), off-lock:
    /// writes dirty BATs, commits the manifest, retires pre-cut WAL
    /// files.
    fn complete_checkpoint(&self, state: SnapshotState) -> StoreResult<CheckpointOutcome>;

    /// Forces buffered WAL records to disk regardless of fsync policy.
    fn flush(&self) -> StoreResult<()>;

    /// A point-in-time stats summary.
    fn stats(&self) -> StoreStats;
}

// ---------------------------------------------------------------------------
// MemBackend

/// The no-op backend: Cobra's original pure main-memory behaviour.
#[derive(Debug, Default)]
pub struct MemBackend;

impl MemBackend {
    /// A memory-only backend.
    pub fn new() -> Self {
        MemBackend
    }
}

impl StorageBackend for MemBackend {
    fn is_durable(&self) -> bool {
        false
    }

    fn epoch(&self) -> u64 {
        0
    }

    fn take_recovery(&self) -> Option<Recovery> {
        None
    }

    fn log(&self, _op: &WalOp) -> StoreResult<()> {
        Ok(())
    }

    fn pending_records(&self) -> u64 {
        0
    }

    fn begin_checkpoint(&self) -> StoreResult<bool> {
        Ok(false)
    }

    fn complete_checkpoint(&self, _state: SnapshotState) -> StoreResult<CheckpointOutcome> {
        Ok(CheckpointOutcome::default())
    }

    fn flush(&self) -> StoreResult<()> {
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }
}

// ---------------------------------------------------------------------------
// FileBackend

/// `store.*` metrics registered against the kernel's [`Registry`].
#[derive(Debug)]
struct StoreMetrics {
    wal_records: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    wal_fsyncs: Arc<Counter>,
    checkpoints: Arc<Counter>,
    ckpt_bats_written: Arc<Counter>,
    ckpt_bats_skipped: Arc<Counter>,
    recovery_replayed: Arc<Gauge>,
    recovery_bats_loaded: Arc<Gauge>,
    epoch: Arc<Gauge>,
}

impl StoreMetrics {
    fn new(registry: &Registry) -> Self {
        StoreMetrics {
            wal_records: registry.counter("store.wal.records", &[]),
            wal_bytes: registry.counter("store.wal.bytes", &[]),
            wal_fsyncs: registry.counter("store.wal.fsyncs", &[]),
            checkpoints: registry.counter("store.checkpoints", &[]),
            ckpt_bats_written: registry.counter("store.checkpoint.bats", &[("result", "written")]),
            ckpt_bats_skipped: registry.counter("store.checkpoint.bats", &[("result", "skipped")]),
            recovery_replayed: registry.gauge("store.recovery.replayed", &[]),
            recovery_bats_loaded: registry.gauge("store.recovery.bats_loaded", &[]),
            epoch: registry.gauge("store.epoch", &[]),
        }
    }
}

/// The previous checkpoint's identity for one BAT name.
#[derive(Debug, Clone)]
struct BaselineEntry {
    src_id: u64,
    src_version: u64,
    file: String,
}

/// The cut recorded by `begin_checkpoint`, consumed by
/// `complete_checkpoint`.
#[derive(Debug)]
struct CutState {
    wal_seq: u64,
    pending_at_cut: u64,
    /// Indices of pre-cut WAL files to delete once the manifest commits.
    retired: Vec<u64>,
}

/// The durable backend: WAL + snapshots in one data directory.
pub struct FileBackend {
    dir: PathBuf,
    epoch: u64,
    policy: FsyncPolicy,
    wal: Mutex<WalWriter>,
    wal_index: AtomicU64,
    /// Indices of WAL files currently on disk (ascending). Checkpoints
    /// retire from this list instead of probing every index ever used.
    live_wal: Mutex<Vec<u64>>,
    pending: AtomicU64,
    ckpt_counter: AtomicU64,
    recovery: Mutex<Option<Recovery>>,
    recovery_stats: (u64, u64, bool),
    baseline: Mutex<HashMap<String, BaselineEntry>>,
    cut: Mutex<Option<CutState>>,
    manifest: Mutex<Manifest>,
    metrics: StoreMetrics,
    records: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
    checkpoints: AtomicU64,
}

impl fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileBackend")
            .field("dir", &self.dir)
            .field("epoch", &self.epoch)
            .field("pending", &self.pending.load(Ordering::Relaxed))
            .finish()
    }
}

fn wal_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.log"))
}

fn parse_wal_index(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Cuts a torn WAL file back to its last intact record and fsyncs, so
/// every subsequent recovery scan reads straight past it.
fn truncate_torn(path: &Path, valid_bytes: u64) -> StoreResult<()> {
    let f = fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StoreError::io("open torn wal", path, e))?;
    f.set_len(valid_bytes)
        .map_err(|e| StoreError::io("truncate torn wal", path, e))?;
    f.sync_data()
        .map_err(|e| StoreError::io("sync torn wal", path, e))?;
    Ok(())
}

impl FileBackend {
    /// Opens (and if necessary creates) the data directory, scans the
    /// manifest and WAL, computes the boot epoch, and readies a fresh
    /// WAL file. The recovery state is retrieved once via
    /// [`take_recovery`](StorageBackend::take_recovery).
    pub fn open(config: &StoreConfig, registry: &Registry) -> StoreResult<FileBackend> {
        let dir = &config.data_dir;
        fs::create_dir_all(dir).map_err(|e| StoreError::io("create data dir", dir, e))?;

        // Leftover temp files from a crash mid-checkpoint are garbage.
        for entry in fs::read_dir(dir).map_err(|e| StoreError::io("scan data dir", dir, e))? {
            let entry = entry.map_err(|e| StoreError::io("scan data dir", dir, e))?;
            if entry.path().extension().is_some_and(|e| e == "tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }

        let manifest_path = dir.join(MANIFEST_NAME);
        let manifest = if manifest_path.exists() {
            read_manifest_file(&manifest_path)?
        } else {
            Manifest::default()
        };

        // Scan every WAL file in index order. A file with a torn tail is
        // truncated back to its last intact record *now* (and fsynced):
        // a boot after a tear appends acknowledged records to a fresh
        // higher-index file, so leaving the tear in place would make the
        // next recovery stop at it and silently drop those later files.
        // With the tear cut off, continuing into later files is safe —
        // sequence numbers still arrive in order.
        let mut wal_indices: Vec<u64> = fs::read_dir(dir)
            .map_err(|e| StoreError::io("scan data dir", dir, e))?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_wal_index(&e.file_name().to_string_lossy()))
            .collect();
        wal_indices.sort_unstable();

        let mut replay = Vec::new();
        let mut max_boot_epoch = manifest.epoch;
        // Highest sequence number any scanned record occupies — Boot
        // records included, so a reboot never re-issues their seqs.
        let mut max_seq = manifest.wal_seq;
        let mut torn_tail = false;
        let mut wal_bytes = 0u64;
        let wal_files = wal_indices.len() as u64;
        for &idx in &wal_indices {
            let path = wal_path(dir, idx);
            let scan = read_wal_file(&path)?;
            wal_bytes += scan.valid_bytes;
            for (seq, op) in scan.records {
                max_seq = max_seq.max(seq);
                if let WalOp::Boot { epoch } = op {
                    max_boot_epoch = max_boot_epoch.max(epoch);
                } else if seq > manifest.wal_seq {
                    replay.push((seq, op));
                }
            }
            if scan.torn {
                torn_tail = true;
                truncate_torn(&path, scan.valid_bytes)?;
            }
        }
        // Scan order already yields ascending seqs; the stable sort is a
        // belt against WALs written by older (seq-reusing) builds.
        replay.sort_by_key(|(seq, _)| *seq);
        let epoch = max_boot_epoch + 1;
        let next_seq = max_seq + 1;

        // Load snapshot BATs and seed the dirty-tracking baseline with
        // their freshly assigned identities (the same `Bat` values are
        // handed to the engine, so the ids stay comparable).
        let mut bats = Vec::with_capacity(manifest.bats.len());
        let mut baseline = HashMap::with_capacity(manifest.bats.len());
        for mb in &manifest.bats {
            let bat = read_bat_file(&dir.join(&mb.file))?;
            baseline.insert(
                mb.name.clone(),
                BaselineEntry {
                    src_id: bat.id(),
                    src_version: bat.version(),
                    file: mb.file.clone(),
                },
            );
            bats.push((mb.name.clone(), bat));
        }

        // Always start a fresh WAL file: appending after a torn tail
        // would hide new records behind garbage.
        let next_index = wal_indices.last().copied().unwrap_or(0) + 1;
        let mut writer = WalWriter::open(&wal_path(dir, next_index), next_seq, config.fsync)?;
        let boot = writer.append(&WalOp::Boot { epoch })?;
        writer.flush()?;
        let mut live_wal = wal_indices;
        live_wal.push(next_index);

        let replayed = replay.len() as u64;
        let recovery = Recovery {
            epoch,
            catalog_gen: manifest.catalog_gen,
            videos: manifest.videos.clone(),
            bats,
            replay: replay.into_iter().map(|(_, op)| op).collect(),
            replayed,
            torn_tail,
            wal_files,
            wal_bytes,
        };

        let metrics = StoreMetrics::new(registry);
        metrics.epoch.set(epoch as i64);
        metrics.recovery_replayed.set(replayed as i64);
        metrics.recovery_bats_loaded.set(recovery.bats.len() as i64);
        metrics.wal_records.inc();
        metrics.wal_bytes.add(boot.bytes);
        metrics.wal_fsyncs.inc();

        Ok(FileBackend {
            dir: dir.clone(),
            epoch,
            policy: config.fsync,
            wal: Mutex::new(writer),
            wal_index: AtomicU64::new(next_index),
            live_wal: Mutex::new(live_wal),
            pending: AtomicU64::new(replayed),
            ckpt_counter: AtomicU64::new(0),
            recovery_stats: (replayed, recovery.bats.len() as u64, torn_tail),
            recovery: Mutex::new(Some(recovery)),
            baseline: Mutex::new(baseline),
            cut: Mutex::new(None),
            manifest: Mutex::new(manifest),
            metrics,
            records: AtomicU64::new(1),
            bytes: AtomicU64::new(boot.bytes),
            fsyncs: AtomicU64::new(1),
            checkpoints: AtomicU64::new(0),
        })
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn write_bat_file(&self, path: &Path, bytes: &[u8]) -> StoreResult<()> {
        let mut f = fs::File::create(path).map_err(|e| StoreError::io("create bat", path, e))?;
        f.write_all(bytes)
            .map_err(|e| StoreError::io("write bat", path, e))?;
        f.sync_data()
            .map_err(|e| StoreError::io("sync bat", path, e))?;
        Ok(())
    }

    /// Deletes snapshot files not referenced by `keep` (best-effort; a
    /// leaked file wastes space but never corrupts recovery, since only
    /// the manifest gives files meaning).
    fn gc_unreferenced(&self, keep: &Manifest) {
        let referenced: std::collections::HashSet<&str> =
            keep.bats.iter().map(|b| b.file.as_str()).collect();
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.ends_with(".bat") && !referenced.contains(name.as_str()) {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }
}

impl StorageBackend for FileBackend {
    fn is_durable(&self) -> bool {
        true
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn take_recovery(&self) -> Option<Recovery> {
        self.recovery.lock().take()
    }

    fn log(&self, op: &WalOp) -> StoreResult<()> {
        let mut wal = self.wal.lock();
        let appended = wal.append(op)?;
        drop(wal);
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(appended.bytes, Ordering::Relaxed);
        self.metrics.wal_records.inc();
        self.metrics.wal_bytes.add(appended.bytes);
        if appended.synced {
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            self.metrics.wal_fsyncs.inc();
        }
        self.pending.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn pending_records(&self) -> u64 {
        self.pending.load(Ordering::Relaxed)
    }

    fn begin_checkpoint(&self) -> StoreResult<bool> {
        let mut cut = self.cut.lock();
        if cut.is_some() {
            return Err(StoreError::Protocol("checkpoint already in progress"));
        }
        let mut wal = self.wal.lock();
        wal.flush()?;
        let cut_seq = wal.last_seq();
        let old_index = self.wal_index.load(Ordering::Relaxed);
        let new_index = old_index + 1;
        let new_writer =
            WalWriter::open(&wal_path(&self.dir, new_index), cut_seq + 1, self.policy)?;
        let _old = std::mem::replace(&mut *wal, new_writer);
        self.wal_index.store(new_index, Ordering::Relaxed);
        drop(wal);

        let retired: Vec<u64> = {
            let mut live = self.live_wal.lock();
            let retired = live.clone();
            live.push(new_index);
            retired
        };
        *cut = Some(CutState {
            wal_seq: cut_seq,
            pending_at_cut: self.pending.load(Ordering::Relaxed),
            retired,
        });
        Ok(true)
    }

    fn complete_checkpoint(&self, state: SnapshotState) -> StoreResult<CheckpointOutcome> {
        let cut = self
            .cut
            .lock()
            .take()
            .ok_or(StoreError::Protocol("complete_checkpoint without begin"))?;
        cobra_faults::fire("store.checkpoint.write")?;

        let ckpt_n = self.ckpt_counter.fetch_add(1, Ordering::Relaxed);
        let mut outcome = CheckpointOutcome {
            wal_seq: cut.wal_seq,
            ..CheckpointOutcome::default()
        };
        let mut new_entries: Vec<(String, BaselineEntry)> = Vec::with_capacity(state.bats.len());
        let mut manifest_bats = Vec::with_capacity(state.bats.len());
        {
            let baseline = self.baseline.lock();
            for (i, nb) in state.bats.iter().enumerate() {
                let unchanged = baseline
                    .get(&nb.name)
                    .filter(|e| e.src_id == nb.src_id && e.src_version == nb.src_version);
                let file = match unchanged {
                    Some(entry) => {
                        outcome.bats_skipped += 1;
                        self.metrics.ckpt_bats_skipped.inc();
                        entry.file.clone()
                    }
                    None => {
                        let file = format!("ck{}-{}-{}.bat", self.epoch, ckpt_n, i);
                        let bytes = encode_bat(&nb.bat);
                        self.write_bat_file(&self.dir.join(&file), &bytes)?;
                        outcome.bats_written += 1;
                        outcome.bytes_written += bytes.len() as u64;
                        self.metrics.ckpt_bats_written.inc();
                        file
                    }
                };
                manifest_bats.push(ManifestBat {
                    name: nb.name.clone(),
                    file: file.clone(),
                });
                new_entries.push((
                    nb.name.clone(),
                    BaselineEntry {
                        src_id: nb.src_id,
                        src_version: nb.src_version,
                        file,
                    },
                ));
            }
        }

        let manifest = Manifest {
            epoch: self.epoch,
            catalog_gen: state.catalog_gen,
            wal_seq: cut.wal_seq,
            videos: state.videos,
            bats: manifest_bats,
        };
        let bytes = encode_manifest(&manifest);
        // The commit point: crash before this rename keeps the old
        // checkpoint, crash after keeps the new one.
        write_atomic(&self.dir.join(MANIFEST_NAME), &bytes)?;
        outcome.bytes_written += bytes.len() as u64;

        *self.baseline.lock() = new_entries.into_iter().collect();
        *self.manifest.lock() = manifest.clone();
        self.pending.fetch_sub(
            cut.pending_at_cut.min(self.pending.load(Ordering::Relaxed)),
            Ordering::Relaxed,
        );
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.metrics.checkpoints.inc();

        cobra_faults::fire("store.checkpoint.truncate")?;
        {
            let mut live = self.live_wal.lock();
            for &idx in &cut.retired {
                let path = wal_path(&self.dir, idx);
                if fs::remove_file(&path).is_ok() {
                    outcome.wal_files_retired += 1;
                }
                if !path.exists() {
                    live.retain(|&i| i != idx);
                }
            }
        }
        self.gc_unreferenced(&manifest);
        Ok(outcome)
    }

    fn flush(&self) -> StoreResult<()> {
        self.wal.lock().flush()
    }

    fn stats(&self) -> StoreStats {
        let (recovery_replayed, recovery_bats_loaded, recovery_torn_tail) = self.recovery_stats;
        StoreStats {
            durable: true,
            epoch: self.epoch,
            wal_records: self.records.load(Ordering::Relaxed),
            wal_bytes: self.bytes.load(Ordering::Relaxed),
            wal_fsyncs: self.fsyncs.load(Ordering::Relaxed),
            pending_records: self.pending.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            recovery_replayed,
            recovery_bats_loaded,
            recovery_torn_tail,
        }
    }
}
