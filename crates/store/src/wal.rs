//! The write-ahead log: typed catalog mutations in an append-only,
//! length-prefixed, CRC-guarded record stream.
//!
//! ## Record format
//!
//! ```text
//! [u32 len][u32 crc32(payload)][payload]
//! payload = [u64 seq][u8 op tag][op body]
//! ```
//!
//! `len` counts payload bytes only. Sequence numbers are assigned by the
//! writer, strictly increasing across file rotations, and never reused —
//! recovery uses them to skip records a snapshot already covers.
//!
//! ## Torn-tail tolerance
//!
//! A crash can leave the final record truncated (partial write) or
//! corrupt (the length prefix landed, the payload did not). The reader
//! stops at the first record whose length prefix is incomplete, whose
//! declared length exceeds the remaining bytes or the frame bound, or
//! whose CRC disagrees — everything before that point is intact by CRC,
//! everything after is discarded. This is the standard ARIES-style
//! contract: an acknowledged (synced) record is never behind a torn one.
//!
//! ## Fault sites
//!
//! * `store.wal.append` — fails *before* any byte is written: the op is
//!   neither durable nor acknowledged.
//! * `store.wal.torn` — writes only a prefix of the frame and fails:
//!   models a crash mid-write (the tail is torn on disk).
//! * `store.wal.ack` — fails *after* write + sync: the op is durable but
//!   the caller never sees the acknowledgement.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::codec::{CodecError, Dec, Enc};
use crate::crc::crc32;
use crate::{StoreError, StoreResult};

/// Upper bound on one record's payload, enforced on both paths: the
/// writer rejects a larger record before any byte lands (so it is never
/// acknowledged), and the reader treats a larger length prefix as a torn
/// tail rather than an allocation request. Writer enforcement is what
/// makes reader rejection safe — every frame the writer can produce is
/// replayable.
pub const MAX_RECORD_LEN: usize = 64 << 20;

/// One event-layer row as logged (mirrors the catalog's `EventRecord`
/// without depending on the core crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEvent {
    /// Event kind ("highlight", "caption:pit_stop", …).
    pub kind: String,
    /// First clip.
    pub start: u64,
    /// One past the last clip.
    pub end: u64,
    /// Driver name, when known.
    pub driver: Option<String>,
}

/// A typed, replayable catalog mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A process (re)opened the store at this boot epoch. Not a catalog
    /// mutation; persists the epoch even before the first checkpoint.
    Boot {
        /// The strictly increasing boot counter.
        epoch: u64,
    },
    /// Raw-layer registration of a video.
    RegisterVideo {
        /// Catalog name.
        name: String,
        /// Clips in the broadcast.
        n_clips: u64,
        /// Video frames.
        n_frames: u64,
    },
    /// The feature layer of a video, row-major (`values[t * n_features + k]`).
    StoreFeatures {
        /// The video.
        video: String,
        /// Features per clip.
        n_features: u64,
        /// Row-major feature values (`n_clips * n_features` entries).
        values: Vec<f64>,
    },
    /// Appended event-layer rows.
    StoreEvents {
        /// The video.
        video: String,
        /// The appended rows, in order.
        events: Vec<WalEvent>,
    },
    /// The event layer of a video was dropped.
    ClearEvents {
        /// The video.
        video: String,
    },
    /// Feature rows appended to the tail of a video's feature layer
    /// (streaming ingest), row-major like `StoreFeatures`. Replay
    /// extends the existing columns instead of replacing them.
    AppendFeatures {
        /// The video.
        video: String,
        /// Features per clip (must match the existing layer, if any).
        n_features: u64,
        /// Row-major appended values (`n_new_clips * n_features`).
        values: Vec<f64>,
    },
}

const TAG_BOOT: u8 = 1;
const TAG_REGISTER: u8 = 2;
const TAG_FEATURES: u8 = 3;
const TAG_EVENTS: u8 = 4;
const TAG_CLEAR: u8 = 5;
const TAG_APPEND_FEATURES: u8 = 6;

impl WalOp {
    /// Encodes the op body (tag included) into `e`.
    pub fn encode(&self, e: &mut Enc) {
        match self {
            WalOp::Boot { epoch } => {
                e.u8(TAG_BOOT);
                e.u64(*epoch);
            }
            WalOp::RegisterVideo {
                name,
                n_clips,
                n_frames,
            } => {
                e.u8(TAG_REGISTER);
                e.str(name);
                e.u64(*n_clips);
                e.u64(*n_frames);
            }
            WalOp::StoreFeatures {
                video,
                n_features,
                values,
            } => {
                e.u8(TAG_FEATURES);
                e.str(video);
                e.u64(*n_features);
                e.u32(values.len() as u32);
                for v in values {
                    e.f64(*v);
                }
            }
            WalOp::StoreEvents { video, events } => {
                e.u8(TAG_EVENTS);
                e.str(video);
                e.u32(events.len() as u32);
                for ev in events {
                    e.str(&ev.kind);
                    e.u64(ev.start);
                    e.u64(ev.end);
                    match &ev.driver {
                        Some(d) => {
                            e.u8(1);
                            e.str(d);
                        }
                        None => e.u8(0),
                    }
                }
            }
            WalOp::ClearEvents { video } => {
                e.u8(TAG_CLEAR);
                e.str(video);
            }
            WalOp::AppendFeatures {
                video,
                n_features,
                values,
            } => {
                e.u8(TAG_APPEND_FEATURES);
                e.str(video);
                e.u64(*n_features);
                e.u32(values.len() as u32);
                for v in values {
                    e.f64(*v);
                }
            }
        }
    }

    /// Decodes one op (tag first) from `d`.
    pub fn decode(d: &mut Dec<'_>) -> Result<WalOp, CodecError> {
        match d.u8("op tag")? {
            TAG_BOOT => Ok(WalOp::Boot {
                epoch: d.u64("boot epoch")?,
            }),
            TAG_REGISTER => Ok(WalOp::RegisterVideo {
                name: d.str("video name")?,
                n_clips: d.u64("n_clips")?,
                n_frames: d.u64("n_frames")?,
            }),
            TAG_FEATURES => {
                let video = d.str("video name")?;
                let n_features = d.u64("n_features")?;
                let n = d.count(8, "feature values")?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(d.f64("feature value")?);
                }
                if n_features > 0 && !(n as u64).is_multiple_of(n_features) {
                    return Err(CodecError::new(format!(
                        "feature matrix: {n} values not divisible by {n_features} columns"
                    )));
                }
                Ok(WalOp::StoreFeatures {
                    video,
                    n_features,
                    values,
                })
            }
            TAG_EVENTS => {
                let video = d.str("video name")?;
                let n = d.count(17, "event rows")?;
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    let kind = d.str("event kind")?;
                    let start = d.u64("event start")?;
                    let end = d.u64("event end")?;
                    let driver = match d.u8("driver flag")? {
                        0 => None,
                        1 => Some(d.str("event driver")?),
                        other => {
                            return Err(CodecError::new(format!("driver flag {other}")));
                        }
                    };
                    events.push(WalEvent {
                        kind,
                        start,
                        end,
                        driver,
                    });
                }
                Ok(WalOp::StoreEvents { video, events })
            }
            TAG_CLEAR => Ok(WalOp::ClearEvents {
                video: d.str("video name")?,
            }),
            TAG_APPEND_FEATURES => {
                let video = d.str("video name")?;
                let n_features = d.u64("n_features")?;
                let n = d.count(8, "appended feature values")?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(d.f64("feature value")?);
                }
                if n_features > 0 && !(n as u64).is_multiple_of(n_features) {
                    return Err(CodecError::new(format!(
                        "appended features: {n} values not divisible by {n_features} columns"
                    )));
                }
                Ok(WalOp::AppendFeatures {
                    video,
                    n_features,
                    values,
                })
            }
            other => Err(CodecError::new(format!("unknown op tag {other}"))),
        }
    }
}

/// Builds the on-disk frame for `(seq, op)`.
pub fn encode_record(seq: u64, op: &WalOp) -> Vec<u8> {
    let mut payload = Enc::new();
    payload.u64(seq);
    op.encode(&mut payload);
    let payload = payload.into_bytes();
    let mut frame = Enc::new();
    frame.u32(payload.len() as u32);
    frame.u32(crc32(&payload));
    let mut bytes = frame.into_bytes();
    bytes.extend_from_slice(&payload);
    bytes
}

/// How aggressively the WAL reaches the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record — an acknowledged op survives
    /// `kill -9` and power loss. The default.
    Always,
    /// `fdatasync` every `n` records (and on flush/rotate): group
    /// commit. A crash can lose up to the last `n - 1` acknowledged
    /// records, never tear the survivors.
    EveryN(u32),
    /// Never sync explicitly; the OS page cache decides. Survives
    /// process kill (the data is in kernel memory), not power loss.
    Never,
}

/// What one WAL file scan found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalScan {
    /// Decoded `(seq, op)` records, in file order.
    pub records: Vec<(u64, WalOp)>,
    /// Bytes consumed by intact records.
    pub valid_bytes: u64,
    /// True when trailing bytes were discarded (torn or corrupt tail).
    pub torn: bool,
}

/// Reads every intact record of one WAL file, stopping cleanly at the
/// first truncated or CRC-corrupt frame.
pub fn read_wal_file(path: &Path) -> StoreResult<WalScan> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| StoreError::io("read wal", path, e))?;
    let mut scan = WalScan::default();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len > MAX_RECORD_LEN || bytes.len() - pos - 8 < len {
            scan.torn = true;
            return Ok(scan);
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            scan.torn = true;
            return Ok(scan);
        }
        let mut d = Dec::new(payload);
        let seq = match d.u64("record seq") {
            Ok(s) => s,
            Err(_) => {
                scan.torn = true;
                return Ok(scan);
            }
        };
        match WalOp::decode(&mut d) {
            Ok(op) => scan.records.push((seq, op)),
            Err(_) => {
                // The CRC matched but the body does not parse: treat as
                // corruption and stop (a matching CRC over garbage means
                // the garbage was written as-is; nothing later is safe).
                scan.torn = true;
                return Ok(scan);
            }
        }
        pos += 8 + len;
        scan.valid_bytes = pos as u64;
    }
    if pos < bytes.len() {
        scan.torn = true; // trailing partial length prefix
    }
    Ok(scan)
}

/// The append half of the log: one open file, the next sequence number,
/// and the fsync batching state.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    offset: u64,
    next_seq: u64,
    policy: FsyncPolicy,
    unsynced: u32,
    /// Set when an undo (truncate-back after a failed write) itself
    /// failed: the tail is in an unknown state, further appends would
    /// sit behind garbage and be lost to recovery.
    poisoned: bool,
}

/// What a successful append did.
#[derive(Debug, Clone, Copy)]
pub struct Appended {
    /// The record's sequence number.
    pub seq: u64,
    /// Frame bytes written.
    pub bytes: u64,
    /// True when this append ran `fdatasync`.
    pub synced: bool,
}

impl WalWriter {
    /// Opens (creating or appending to) the WAL file at `path`; the
    /// first record will be numbered `next_seq`.
    pub fn open(path: &Path, next_seq: u64, policy: FsyncPolicy) -> StoreResult<WalWriter> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io("open wal", path, e))?;
        let offset = file
            .metadata()
            .map_err(|e| StoreError::io("stat wal", path, e))?
            .len();
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            offset,
            next_seq,
            policy,
            unsynced: 0,
            poisoned: false,
        })
    }

    /// The sequence number of the last appended record (`next - 1`).
    pub fn last_seq(&self) -> u64 {
        self.next_seq.saturating_sub(1)
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record, honoring the fsync policy, and acknowledges
    /// it. Any failure leaves the file logically unchanged (a partial
    /// write is truncated back) — except under the `store.wal.torn`
    /// fault site, which deliberately leaves a torn tail to model a
    /// crash mid-write.
    pub fn append(&mut self, op: &WalOp) -> StoreResult<Appended> {
        if self.poisoned {
            return Err(StoreError::Poisoned);
        }
        cobra_faults::fire("store.wal.append")?;
        let seq = self.next_seq;
        let frame = encode_record(seq, op);
        // A frame the reader would refuse must never be written: recovery
        // treats len > MAX_RECORD_LEN as a torn tail and would silently
        // drop this record and everything after it in the file.
        let payload_len = frame.len() - 8;
        if payload_len > MAX_RECORD_LEN {
            return Err(StoreError::RecordTooLarge {
                len: payload_len as u64,
                max: MAX_RECORD_LEN as u64,
            });
        }

        if cobra_faults::is_armed() && cobra_faults::fire("store.wal.torn").is_err() {
            // Crash mid-write: half the frame lands, the writer "dies".
            let half = &frame[..frame.len() / 2];
            let _ = self.file.write_all(half);
            let _ = self.file.sync_data();
            self.poisoned = true;
            return Err(StoreError::Fault {
                site: "store.wal.torn".into(),
            });
        }

        if let Err(e) = self.file.write_all(&frame) {
            // Undo the partial frame so later appends stay readable.
            if self.file.set_len(self.offset).is_err() {
                self.poisoned = true;
            }
            return Err(StoreError::io("append wal", &self.path, e));
        }
        let synced = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced + 1 >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if synced {
            if let Err(e) = self.file.sync_data() {
                // The frame is on disk but was never acknowledged: truncate
                // it back (like the write-failure path) so its sequence
                // number stays genuinely unused.
                if self.file.set_len(self.offset).is_err() {
                    self.poisoned = true;
                }
                return Err(StoreError::io("sync wal", &self.path, e));
            }
            self.unsynced = 0;
        } else {
            self.unsynced += 1;
        }
        self.offset += frame.len() as u64;
        self.next_seq += 1;
        cobra_faults::fire("store.wal.ack")?;
        Ok(Appended {
            seq,
            bytes: frame.len() as u64,
            synced,
        })
    }

    /// Forces buffered records to disk regardless of policy.
    pub fn flush(&mut self) -> StoreResult<()> {
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("sync wal", &self.path, e))?;
        self.unsynced = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("cobra-wal-test-{}-{n}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal-000001.log")
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Boot { epoch: 3 },
            WalOp::RegisterVideo {
                name: "german".into(),
                n_clips: 1800,
                n_frames: 4500,
            },
            WalOp::StoreFeatures {
                video: "german".into(),
                n_features: 2,
                values: vec![0.25, f64::NAN, -0.0, 1.0],
            },
            WalOp::StoreEvents {
                video: "german".into(),
                events: vec![
                    WalEvent {
                        kind: "highlight".into(),
                        start: 10,
                        end: 80,
                        driver: None,
                    },
                    WalEvent {
                        kind: "caption:pit_stop".into(),
                        start: 100,
                        end: 140,
                        driver: Some("HAKKINEN".into()),
                    },
                ],
            },
            WalOp::ClearEvents {
                video: "german".into(),
            },
            WalOp::AppendFeatures {
                video: "german".into(),
                n_features: 2,
                values: vec![0.5, 0.75],
            },
        ]
    }

    #[test]
    fn append_and_scan_round_trip() {
        let path = tmp("roundtrip");
        let mut w = WalWriter::open(&path, 1, FsyncPolicy::Always).unwrap();
        for op in sample_ops() {
            w.append(&op).unwrap();
        }
        let scan = read_wal_file(&path).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), 6);
        assert_eq!(
            scan.records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5, 6]
        );
        let decoded: Vec<WalOp> = scan.records.into_iter().map(|(_, op)| op).collect();
        // NaN != NaN under PartialEq for f64; compare via bit patterns.
        match (&decoded[2], &sample_ops()[2]) {
            (WalOp::StoreFeatures { values: a, .. }, WalOp::StoreFeatures { values: b, .. }) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            _ => panic!("wrong op"),
        }
        assert_eq!(decoded[0], sample_ops()[0]);
        assert_eq!(decoded[3], sample_ops()[3]);
        assert_eq!(decoded[5], sample_ops()[5]);
    }

    #[test]
    fn truncated_tail_stops_cleanly() {
        let path = tmp("trunc");
        let mut w = WalWriter::open(&path, 1, FsyncPolicy::Always).unwrap();
        for op in sample_ops() {
            w.append(&op).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        for cut in [full.len() - 1, full.len() - 7, full.len() / 2, 3, 0] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = read_wal_file(&path).unwrap();
            assert!(scan.records.len() <= 5);
            for (i, (seq, _)) in scan.records.iter().enumerate() {
                assert_eq!(*seq, i as u64 + 1, "prefix property violated");
            }
        }
    }

    #[test]
    fn crc_flip_stops_at_the_bad_record() {
        let path = tmp("flip");
        let mut w = WalWriter::open(&path, 1, FsyncPolicy::Always).unwrap();
        for op in sample_ops() {
            w.append(&op).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_wal_file(&path).unwrap();
        assert!(scan.torn);
        assert!(scan.records.len() < 5);
    }

    #[test]
    fn oversized_record_is_rejected_before_any_byte_lands() {
        let path = tmp("oversize");
        let mut w = WalWriter::open(&path, 1, FsyncPolicy::Never).unwrap();
        // ~68 MB of feature values: payload > MAX_RECORD_LEN (64 MiB).
        let huge = WalOp::StoreFeatures {
            video: "german".into(),
            n_features: 2,
            values: vec![0.5; 8_500_000],
        };
        match w.append(&huge) {
            Err(StoreError::RecordTooLarge { len, max }) => {
                assert!(len > max);
                assert_eq!(max, MAX_RECORD_LEN as u64);
            }
            other => panic!("expected RecordTooLarge, got {other:?}"),
        }
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            0,
            "nothing written"
        );
        // The rejected op consumed no sequence number; the log stays
        // fully replayable.
        let appended = w.append(&WalOp::Boot { epoch: 1 }).unwrap();
        assert_eq!(appended.seq, 1);
        w.flush().unwrap();
        let scan = read_wal_file(&path).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn every_n_policy_batches_syncs() {
        let path = tmp("batch");
        let mut w = WalWriter::open(&path, 1, FsyncPolicy::EveryN(3)).unwrap();
        let mut synced = 0;
        for _ in 0..7 {
            if w.append(&WalOp::Boot { epoch: 0 }).unwrap().synced {
                synced += 1;
            }
        }
        assert_eq!(synced, 2); // records 3 and 6
    }
}
