//! # cobra-store — durable storage for the Cobra VDBMS
//!
//! The paper's Monet instance kept its BATs on disk between sessions;
//! Cobra was pure main-memory until this crate. It adds the classical
//! snapshot + write-ahead-log pair behind a [`StorageBackend`] trait:
//!
//! * [`MemBackend`] — the old behaviour. Every operation is a no-op; the
//!   engine stays byte-for-byte as fast as before.
//! * [`FileBackend`] — an append-only, length-prefixed, CRC-guarded WAL
//!   ([`wal`]) plus checksummed per-BAT snapshot files bound together by
//!   an atomically renamed manifest ([`snapshot`]).
//!
//! ## Protocol
//!
//! **Log.** Each catalog mutation is encoded as a typed [`WalOp`],
//! appended and (per [`FsyncPolicy`]) fsynced *before* the mutation is
//! acknowledged. The WAL is a sequence of rotated files
//! `wal-000001.log, wal-000002.log, …`; records carry strictly
//! increasing sequence numbers across rotations.
//!
//! **Checkpoint.** Under the catalog's commit lock the backend rotates
//! to a fresh WAL file and remembers the cut sequence; the caller clones
//! the live state (videos + BATs with their live `(id, version)`) and
//! releases the lock. Off-lock, the backend writes dirty BATs to fresh
//! `ck<epoch>-<n>-<i>.bat` files (unchanged BATs — same `(id, version)`
//! as the previous checkpoint — reuse their existing file), then commits
//! by atomically renaming a new manifest over `MANIFEST`, and finally
//! retires pre-cut WAL files and unreferenced BAT files. A crash at any
//! point leaves either the old or the new checkpoint fully in force.
//!
//! **Recover.** [`FileBackend::open`] loads the manifest (if any), its
//! BAT files, and every WAL record with a sequence number past the
//! manifest's cut, stopping cleanly at the first torn or CRC-corrupt
//! record. It computes a strictly increasing *boot epoch* (persisted via
//! a `Boot` WAL record) which the engine folds into its result-cache
//! version vector, so a post-crash process can never serve pre-crash
//! cached results.
//!
//! Crash-robustness is exercised, not assumed: `store.wal.*` and
//! `store.checkpoint.*` fault sites let the test harness kill the engine
//! between append and ack, tear a record mid-write, or crash between
//! checkpoint write and rename, then assert recovery restores exactly
//! the acknowledged state.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod backend;
pub mod codec;
pub mod crc;
pub mod snapshot;
pub mod wal;

pub use backend::{
    CheckpointOutcome, FileBackend, MemBackend, NamedBat, Recovery, SnapshotState, StorageBackend,
    StoreStats,
};
pub use snapshot::{Manifest, ManifestBat, ManifestVideo};
pub use wal::{FsyncPolicy, WalEvent, WalOp};

/// A storage-layer failure.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level I/O failure.
    Io {
        /// What the store was doing ("append wal", "rename tmp", …).
        op: &'static str,
        /// The file involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A file failed its structural or checksum validation.
    Corrupt {
        /// The file involved.
        path: String,
        /// What the decoder was reading when it failed.
        what: String,
    },
    /// An injected fault (tests only).
    Fault {
        /// The `cobra-faults` site that fired.
        site: String,
    },
    /// The WAL writer hit an unrecoverable tail state (a failed write
    /// whose undo also failed); further appends would be lost.
    Poisoned,
    /// A single record's payload exceeds [`wal::MAX_RECORD_LEN`]; it was
    /// rejected before any byte hit the log (recovery treats larger
    /// lengths as torn, so writing it would be silent future data loss).
    RecordTooLarge {
        /// Payload bytes the record would have occupied.
        len: u64,
        /// The replayable maximum, [`wal::MAX_RECORD_LEN`].
        max: u64,
    },
    /// A protocol misuse, e.g. completing a checkpoint that was never
    /// begun.
    Protocol(&'static str),
}

impl StoreError {
    pub(crate) fn io(op: &'static str, path: &Path, source: std::io::Error) -> Self {
        StoreError::Io {
            op,
            path: path.display().to_string(),
            source,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "store i/o: {op} {path}: {source}")
            }
            StoreError::Corrupt { path, what } => {
                write!(f, "store corruption in {path}: {what}")
            }
            StoreError::Fault { site } => write!(f, "injected store fault at {site}"),
            StoreError::Poisoned => write!(f, "wal writer poisoned by unrecoverable tail"),
            StoreError::RecordTooLarge { len, max } => {
                write!(
                    f,
                    "wal record payload of {len} bytes exceeds the {max}-byte cap"
                )
            }
            StoreError::Protocol(what) => write!(f, "store protocol violation: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<cobra_faults::FaultError> for StoreError {
    fn from(e: cobra_faults::FaultError) -> Self {
        StoreError::Fault { site: e.site }
    }
}

/// Store-layer result.
pub type StoreResult<T> = Result<T, StoreError>;

/// Configuration for a [`FileBackend`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding WAL files, BAT snapshots and the manifest.
    /// Created if absent.
    pub data_dir: PathBuf,
    /// When the WAL reaches the platter.
    pub fsync: FsyncPolicy,
    /// Checkpoint after this many WAL records accumulate (0 disables the
    /// automatic trigger; explicit `CHECKPOINT` still works).
    pub checkpoint_every: u64,
    /// How often the background checkpointer polls, in milliseconds.
    pub checkpoint_interval_ms: u64,
}

impl StoreConfig {
    /// A durable configuration with the default policy: fsync on every
    /// record, checkpoint every 256 records, poll twice a second.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: 256,
            checkpoint_interval_ms: 500,
        }
    }
}
