//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every WAL record and snapshot file.
//!
//! Hand-rolled because the build environment vendors no checksum crate;
//! the table is computed at compile time, so runtime cost is the usual
//! one-lookup-per-byte loop.

/// The reflected CRC-32 polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sensitive_to_every_byte() {
        let base = crc32(b"cobra-store");
        for i in 0.."cobra-store".len() {
            let mut flipped = b"cobra-store".to_vec();
            flipped[i] ^= 0x01;
            assert_ne!(crc32(&flipped), base, "flip at byte {i} undetected");
        }
    }
}
