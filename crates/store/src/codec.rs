//! The binary codec shared by WAL records and snapshot files.
//!
//! Fixed-width integers are little-endian; floats are stored as their
//! IEEE-754 bit pattern (so NaN payloads and signed zeros round-trip
//! exactly, matching the kernel's bit-pattern column equality); strings
//! and byte runs are `u32` length-prefixed. The decoder is defensive:
//! every read is bounds-checked against the remaining buffer, and
//! declared lengths are validated *before* allocation, so corrupt or
//! adversarial input yields [`CodecError`] instead of a panic or an
//! attempted multi-gigabyte allocation.

use std::fmt;
use std::sync::Arc;

/// A structural decode failure (truncated buffer, absurd length, bad
/// UTF-8, unknown tag). Recovery treats any of these as "the record is
/// corrupt": replay stops cleanly at the previous record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What the decoder was reading when it failed.
    pub what: String,
}

impl CodecError {
    pub(crate) fn new(what: impl Into<String>) -> Self {
        CodecError { what: what.into() }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt encoding: {}", self.what)
    }
}

impl std::error::Error for CodecError {}

/// Codec-level result.
pub type CodecResult<T> = Result<T, CodecError>;

/// An append-only binary encoder over a growable buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` as its two's-complement little-endian bytes.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A bounds-checked binary decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decodes from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole buffer was consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::new(format!(
                "{what}: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> CodecResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> CodecResult<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> CodecResult<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self, what: &str) -> CodecResult<i64> {
        Ok(self.u64(what)? as i64)
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self, what: &str) -> CodecResult<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a declared element count and validates it against the bytes
    /// actually remaining (`min_elem_bytes` per element), so a corrupt
    /// length cannot drive a huge allocation.
    pub fn count(&mut self, min_elem_bytes: usize, what: &str) -> CodecResult<usize> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CodecError::new(format!(
                "{what}: declared {n} elements exceed {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> CodecResult<String> {
        let n = self.count(1, what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::new(format!("{what}: invalid UTF-8")))
    }

    /// Like [`str`](Self::str), interned as an `Arc<str>`.
    pub fn arc_str(&mut self, what: &str) -> CodecResult<Arc<str>> {
        Ok(Arc::from(self.str(what)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(-42);
        e.f64(f64::NAN);
        e.f64(-0.0);
        e.str("schumacher");
        e.str("");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8("a").unwrap(), 7);
        assert_eq!(d.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64("c").unwrap(), u64::MAX);
        assert_eq!(d.i64("d").unwrap(), -42);
        assert!(d.f64("e").unwrap().is_nan());
        assert_eq!(d.f64("f").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.str("g").unwrap(), "schumacher");
        assert_eq!(d.str("h").unwrap(), "");
        assert!(d.is_done());
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut e = Enc::new();
        e.u64(123);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..5]);
        assert!(d.u64("x").is_err());
    }

    #[test]
    fn absurd_length_is_rejected_before_allocation() {
        let mut e = Enc::new();
        e.u32(u32::MAX); // declared length far beyond the buffer
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(d.str("s").is_err());
    }

    #[test]
    fn invalid_utf8_is_a_codec_error() {
        let mut e = Enc::new();
        e.u32(2);
        let mut bytes = e.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut d = Dec::new(&bytes);
        assert!(d.str("s").is_err());
    }
}
