//! Property tests for WAL recovery under arbitrary corruption.
//!
//! The recovery contract: whatever happened to the tail of the log —
//! a torn write, a truncated file, a flipped bit — `read_wal_file`
//! returns the longest intact *prefix* of records, flags the damage,
//! and never panics. These tests build real WAL files with the real
//! writer, then mangle the bytes at proptest-chosen offsets.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use cobra_store::wal::{encode_record, read_wal_file, WalWriter};
use cobra_store::{FsyncPolicy, WalEvent, WalOp};
use proptest::prelude::*;

/// A unique scratch WAL path per case, removed on drop.
struct ScratchWal(PathBuf);

impl ScratchWal {
    fn new() -> ScratchWal {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        ScratchWal(std::env::temp_dir().join(format!(
            "cobra-walprop-{}-{}.log",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for ScratchWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Arbitrary catalog mutations, including `f64::from_bits` feature
/// values (NaNs and all), so byte-exactness is part of the property.
fn arb_op() -> impl Strategy<Value = WalOp> {
    (
        0u8..5,
        1u64..1_000,
        collection::vec(proptest::char::range('a', 'z'), 1..9),
        collection::vec(0u64..u64::MAX, 0..6),
    )
        .prop_map(|(kind, n, name_chars, bits)| {
            let name: String = name_chars.into_iter().collect();
            match kind {
                0 => WalOp::Boot { epoch: n },
                1 => WalOp::RegisterVideo {
                    name,
                    n_clips: n,
                    n_frames: n * 25,
                },
                // Two values per row keeps the decoder's divisibility
                // check (`values % n_features == 0`) satisfied.
                2 => WalOp::StoreFeatures {
                    video: name,
                    n_features: 2,
                    values: bits
                        .iter()
                        .flat_map(|&b| [f64::from_bits(b), f64::from_bits(!b)])
                        .collect(),
                },
                3 => WalOp::StoreEvents {
                    video: name.clone(),
                    events: bits
                        .iter()
                        .map(|&b| WalEvent {
                            kind: if b % 2 == 0 {
                                "highlight".to_string()
                            } else {
                                format!("caption:{name}")
                            },
                            start: b % 500,
                            end: b % 500 + 10,
                            driver: (b % 3 == 0).then(|| name.clone()),
                        })
                        .collect(),
                },
                _ => WalOp::ClearEvents { video: name },
            }
        })
}

/// Writes `ops` through the real writer and returns the file bytes plus
/// each record's exclusive end offset (frame boundaries).
fn write_wal(path: &std::path::Path, ops: &[WalOp]) -> (Vec<u8>, Vec<usize>) {
    let mut writer = WalWriter::open(path, 1, FsyncPolicy::Never).expect("open wal");
    let mut boundaries = Vec::with_capacity(ops.len());
    let mut end = 0usize;
    for op in ops {
        let appended = writer.append(op).expect("append");
        end += appended.bytes as usize;
        boundaries.push(end);
    }
    writer.flush().expect("flush");
    (std::fs::read(path).expect("read back"), boundaries)
}

/// Frame-byte comparison: `WalOp` contains `f64`s, so `==` would reject
/// NaN round-trips that are in fact bit-exact.
fn frames(records: &[(u64, WalOp)]) -> Vec<Vec<u8>> {
    records
        .iter()
        .map(|(seq, op)| encode_record(*seq, op))
        .collect()
}

fn expected_frames(ops: &[WalOp], count: usize) -> Vec<Vec<u8>> {
    ops.iter()
        .take(count)
        .enumerate()
        .map(|(i, op)| encode_record(i as u64 + 1, op))
        .collect()
}

proptest! {
    #[test]
    fn intact_log_round_trips(ops in collection::vec(arb_op(), 1..12)) {
        let scratch = ScratchWal::new();
        let (bytes, _) = write_wal(&scratch.0, &ops);
        let scan = read_wal_file(&scratch.0).expect("scan");
        prop_assert!(!scan.torn);
        prop_assert_eq!(scan.valid_bytes, bytes.len() as u64);
        prop_assert_eq!(frames(&scan.records), expected_frames(&ops, ops.len()));
    }

    #[test]
    fn truncation_keeps_longest_whole_prefix(
        ops in collection::vec(arb_op(), 1..10),
        cut in 0.0f64..1.0,
    ) {
        let scratch = ScratchWal::new();
        let (bytes, boundaries) = write_wal(&scratch.0, &ops);
        let cut = (bytes.len() as f64 * cut) as usize;
        std::fs::write(&scratch.0, &bytes[..cut]).expect("truncate");

        let scan = read_wal_file(&scratch.0).expect("scan never errors on truncation");
        let survivors = boundaries.iter().filter(|&&end| end <= cut).count();
        prop_assert_eq!(frames(&scan.records), expected_frames(&ops, survivors));
        // Torn iff the cut landed inside a frame.
        let clean_cut = cut == survivors.checked_sub(1).map_or(0, |i| boundaries[i]);
        prop_assert_eq!(scan.torn, !clean_cut);
    }

    #[test]
    fn bit_flip_stops_cleanly_at_the_damage(
        ops in collection::vec(arb_op(), 1..10),
        byte_pick in 0u64..u64::MAX,
        bit in 0u8..8,
    ) {
        let scratch = ScratchWal::new();
        let (mut bytes, boundaries) = write_wal(&scratch.0, &ops);
        let flip_at = (byte_pick % bytes.len() as u64) as usize;
        bytes[flip_at] ^= 1 << bit;
        std::fs::write(&scratch.0, &bytes).expect("corrupt");

        let scan = read_wal_file(&scratch.0).expect("scan never errors on corruption");
        // Every record before the damaged frame survives; the damaged
        // frame and everything after it is discarded and flagged.
        let survivors = boundaries.iter().filter(|&&end| end <= flip_at).count();
        prop_assert_eq!(frames(&scan.records), expected_frames(&ops, survivors));
        prop_assert!(scan.torn, "a flipped bit is always detected");
    }
}
