//! `cobra-obs` — observability primitives for the Cobra VDBMS.
//!
//! The paper's query pre-processor "picks the cheapest/most accurate
//! method using cost & quality models", which presupposes the system can
//! *measure* its own costs.  This crate supplies the measurement
//! substrate used by every level of the stack:
//!
//! * [`Counter`] / [`Gauge`] — lock-free monotonic counts and levels,
//! * [`Histogram`] — log-scaled (power-of-two bucket) latency histogram
//!   with p50/p95/p99 readouts and associative merge,
//! * [`Registry`] — a labeled metric namespace with cheap `Arc` handles,
//!   consistent snapshots and snapshot deltas,
//! * [`SpanNode`] / [`SpanTimer`] — per-query span trees backing the
//!   `PROFILE <query>` / `EXPLAIN <query>` surface at the conceptual
//!   level.
//!
//! All hot-path types are wait-free on record (a relaxed atomic add);
//! locks are only taken when resolving a handle by name or when
//! snapshotting.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

/// Number of log-scaled histogram buckets: bucket `i` holds values whose
/// bit length is `i` (bucket 0 holds exactly the value 0), so the full
/// `u64` range is covered with ~2x relative resolution.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Default cap on distinct label sets per metric name; see
/// [`Registry::with_label_cap`].
pub const DEFAULT_LABEL_CAP: usize = 64;

/// Label set recorded when a metric name exceeds its label-cardinality
/// cap: the overflowing series are folded into this sentinel.
pub const OVERFLOW_LABELS: [(&str, &str); 1] = [("overflow", "true")];

// ---------------------------------------------------------------------------
// Counter & gauge
// ---------------------------------------------------------------------------

/// A monotonically increasing lock-free counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free signed level (e.g. in-flight queries, configured threads).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Bucket index for a recorded value: its bit length, clamped to the
/// last bucket. 0 -> 0, 1 -> 1, 2..=3 -> 2, 4..=7 -> 3, ...
fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound reported for bucket `i`; percentiles quote this
/// bound, which keeps them monotone in the requested quantile.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log-scaled latency histogram: 64 power-of-two buckets, wait-free
/// record, exact total sum. Values are typically nanoseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records the elapsed time of `start` in nanoseconds.
    pub fn record_since(&self, start: Instant) {
        self.record(start.elapsed().as_nanos() as u64);
    }

    /// Takes a point-in-time copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Approximate percentile (see [`HistogramSnapshot::percentile`]).
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }
}

/// An immutable copy of a [`Histogram`]'s buckets, supporting percentile
/// readout, associative merge and delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Approximate percentile `p` in `[0, 1]`: the inclusive upper bound
    /// of the bucket containing the `ceil(p * count)`-th observation.
    /// Returns 0 on an empty histogram. Monotone in `p`.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile shorthand.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th-percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Bucket-wise merge. Associative and commutative, so partial
    /// histograms from worker threads can be combined in any order.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            sum: self.sum + other.sum,
        }
    }

    /// Bucket-wise difference `self - earlier` (saturating), for
    /// interval readouts between two snapshots.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// JSON readout: count, sum and the quartile summary.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "count": (self.count() as f64),
            "sum": (self.sum as f64),
            "mean": (self.mean()),
            "p50": (self.p50() as f64),
            "p95": (self.p95() as f64),
            "p99": (self.p99() as f64),
        })
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A metric identity: name plus a sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Metric name, e.g. `"mil.op_ns"`.
    pub name: String,
    /// Sorted `(key, value)` labels, e.g. `[("op", "join")]`.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels for a canonical identity.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Canonical rendering: `name` or `name{k=v,k2=v2}`.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = format!("{}{{", self.name);
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}={v}");
        }
        out.push('}');
        out
    }
}

/// A labeled metric namespace. Handles are `Arc`s resolved once and then
/// recorded to lock-free; `snapshot` gives a consistent point-in-time
/// copy of every series.
///
/// Per metric name at most `label_cap` distinct label sets are created;
/// further label sets fold into the [`OVERFLOW_LABELS`] sentinel series
/// so an unbounded label domain (e.g. video names) cannot leak memory.
#[derive(Debug)]
pub struct Registry {
    label_cap: usize,
    counters: RwLock<BTreeMap<MetricKey, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<MetricKey, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<MetricKey, Arc<Histogram>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_label_cap(DEFAULT_LABEL_CAP)
    }
}

fn resolve<T: Default>(
    map: &RwLock<BTreeMap<MetricKey, Arc<T>>>,
    label_cap: usize,
    name: &str,
    labels: &[(&str, &str)],
) -> Arc<T> {
    let key = MetricKey::new(name, labels);
    if let Some(found) = map.read().get(&key) {
        return Arc::clone(found);
    }
    let mut map = map.write();
    if let Some(found) = map.get(&key) {
        return Arc::clone(found);
    }
    let cardinality = map.keys().filter(|k| k.name == name).count();
    let key = if cardinality >= label_cap {
        MetricKey::new(name, &OVERFLOW_LABELS)
    } else {
        key
    };
    Arc::clone(map.entry(key).or_default())
}

impl Registry {
    /// Creates a registry with the default label-cardinality cap.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Creates a registry capping each metric name at `label_cap`
    /// distinct label sets (minimum 1; the sentinel series rides on top).
    pub fn with_label_cap(label_cap: usize) -> Self {
        Registry {
            label_cap: label_cap.max(1),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// Resolves (creating on first use) a counter handle.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        resolve(&self.counters, self.label_cap, name, labels)
    }

    /// Resolves (creating on first use) a gauge handle.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        resolve(&self.gauges, self.label_cap, name, labels)
    }

    /// Resolves (creating on first use) a histogram handle.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        resolve(&self.histograms, self.label_cap, name, labels)
    }

    /// Point-in-time copy of every series.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A consistent point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by key.
    pub counters: BTreeMap<MetricKey, u64>,
    /// Gauge levels by key.
    pub gauges: BTreeMap<MetricKey, i64>,
    /// Histogram copies by key.
    pub histograms: BTreeMap<MetricKey, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value for an exact key, 0 if the series does not exist.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Gauge level for an exact key, 0 if the series does not exist.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> i64 {
        self.gauges
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Histogram copy for an exact key, if the series exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.histograms.get(&MetricKey::new(name, labels))
    }

    /// All series of a given metric name, in label order.
    pub fn histograms_named(&self, name: &str) -> Vec<(&MetricKey, &HistogramSnapshot)> {
        self.histograms
            .iter()
            .filter(|(k, _)| k.name == name)
            .collect()
    }

    /// Interval readout `self - earlier`: counters and histograms are
    /// subtracted (saturating), gauges keep their current level. Series
    /// absent from `earlier` are reported whole.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| match earlier.histograms.get(k) {
                    Some(prev) => (k.clone(), h.delta(prev)),
                    None => (k.clone(), h.clone()),
                })
                .collect(),
        }
    }

    /// JSON readout keyed by the canonical series rendering. Key order
    /// is deterministic (sorted), so the output is stable across runs.
    pub fn to_json(&self) -> serde_json::Value {
        let mut counters = BTreeMap::new();
        for (k, v) in &self.counters {
            counters.insert(k.render(), serde_json::Value::Number(*v as f64));
        }
        let mut gauges = BTreeMap::new();
        for (k, v) in &self.gauges {
            gauges.insert(k.render(), serde_json::Value::Number(*v as f64));
        }
        let mut histograms = BTreeMap::new();
        for (k, h) in &self.histograms {
            histograms.insert(k.render(), h.to_json());
        }
        serde_json::json!({
            "counters": (serde_json::Value::Object(counters)),
            "gauges": (serde_json::Value::Object(gauges)),
            "histograms": (serde_json::Value::Object(histograms)),
        })
    }
}

// ---------------------------------------------------------------------------
// Span trees
// ---------------------------------------------------------------------------

/// One node of a query span tree: a named stage with its wall time,
/// metadata and nested children. Backs `PROFILE <query>` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Stage name, e.g. `"mil.eval"`.
    pub name: String,
    /// Wall time spent in this stage (including children), nanoseconds.
    pub elapsed_ns: u64,
    /// Free-form `(key, value)` annotations (program text, row counts).
    pub meta: Vec<(String, String)>,
    /// Nested stages.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Creates a zero-duration node.
    pub fn new(name: &str) -> Self {
        SpanNode {
            name: name.to_string(),
            elapsed_ns: 0,
            meta: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Creates a leaf with a recorded duration.
    pub fn leaf(name: &str, elapsed_ns: u64) -> Self {
        SpanNode {
            elapsed_ns,
            ..SpanNode::new(name)
        }
    }

    /// Adds a metadata annotation; returns `self` for chaining.
    pub fn with_meta(mut self, key: &str, value: impl Into<String>) -> Self {
        self.meta.push((key.to_string(), value.into()));
        self
    }

    /// Appends a child node; returns `self` for chaining.
    pub fn with_child(mut self, child: SpanNode) -> Self {
        self.children.push(child);
        self
    }

    /// A copy with every duration zeroed — the *shape* of the tree,
    /// used by `EXPLAIN` and by golden-file tests.
    pub fn zeroed(&self) -> SpanNode {
        SpanNode {
            name: self.name.clone(),
            elapsed_ns: 0,
            meta: self.meta.clone(),
            children: self.children.iter().map(SpanNode::zeroed).collect(),
        }
    }

    /// Indented tree of stage names only (no timings, no metadata) —
    /// the contract-tested profile shape.
    pub fn shape(&self) -> String {
        fn walk(node: &SpanNode, depth: usize, out: &mut String) {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&node.name);
            out.push('\n');
            for child in &node.children {
                walk(child, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }

    /// Human-readable rendering with timings and metadata.
    pub fn render(&self) -> String {
        fn walk(node: &SpanNode, depth: usize, out: &mut String) {
            for _ in 0..depth {
                out.push_str("  ");
            }
            let ms = node.elapsed_ns as f64 / 1e6;
            let _ = write!(out, "{} {ms:.3}ms", node.name);
            for (k, v) in &node.meta {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
            for child in &node.children {
                walk(child, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }

    /// JSON rendering of the full tree.
    pub fn to_json(&self) -> serde_json::Value {
        let meta: BTreeMap<String, serde_json::Value> = self
            .meta
            .iter()
            .map(|(k, v)| (k.clone(), serde_json::Value::String(v.clone())))
            .collect();
        serde_json::json!({
            "name": (self.name.clone()),
            "elapsed_ns": (self.elapsed_ns as f64),
            "meta": (serde_json::Value::Object(meta)),
            "children": (serde_json::Value::Array(
                self.children.iter().map(SpanNode::to_json).collect()
            )),
        })
    }

    /// Decodes a tree produced by [`to_json`](Self::to_json). Meta keys
    /// come back sorted (JSON objects are ordered maps here); timings
    /// and structure round-trip exactly. Returns `None` on shape
    /// mismatch — wire data is untrusted.
    pub fn from_json(v: &serde_json::Value) -> Option<SpanNode> {
        let name = v.get("name")?.as_str()?.to_string();
        let elapsed_ns = v.get("elapsed_ns")?.as_u64()?;
        let meta = v
            .get("meta")?
            .as_object()?
            .iter()
            .map(|(k, val)| Some((k.clone(), val.as_str()?.to_string())))
            .collect::<Option<Vec<_>>>()?;
        let children = v
            .get("children")?
            .as_array()?
            .iter()
            .map(SpanNode::from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(SpanNode {
            name,
            elapsed_ns,
            meta,
            children,
        })
    }

    /// Depth-first search for the first node with the given name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Builds a [`SpanNode`] around a running stage.
#[derive(Debug)]
pub struct SpanTimer {
    node: SpanNode,
    start: Instant,
}

impl SpanTimer {
    /// Starts timing a stage.
    pub fn start(name: &str) -> Self {
        SpanTimer {
            node: SpanNode::new(name),
            start: Instant::now(),
        }
    }

    /// Adds a metadata annotation.
    pub fn meta(&mut self, key: &str, value: impl Into<String>) {
        self.node.meta.push((key.to_string(), value.into()));
    }

    /// Appends a completed child span.
    pub fn child(&mut self, child: SpanNode) {
        self.node.children.push(child);
    }

    /// Stops the clock and returns the finished node.
    pub fn finish(mut self) -> SpanNode {
        self.node.elapsed_ns = self.start.elapsed().as_nanos() as u64;
        self.node
    }
}

/// Times a closure, returning its result and a finished leaf span.
pub fn timed<R>(name: &str, f: impl FnOnce() -> R) -> (R, SpanNode) {
    let start = Instant::now();
    let out = f();
    (out, SpanNode::leaf(name, start.elapsed().as_nanos() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_cover_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 1106);
        assert!(s.p50() >= 2);
        assert!(s.p99() >= 1000);
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99());
    }

    #[test]
    fn histogram_merge_and_delta() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(500);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.sum(), 505);
        let before = a.snapshot();
        a.record(9);
        let delta = a.snapshot().delta(&before);
        assert_eq!(delta.count(), 1);
        assert_eq!(delta.sum(), 9);
    }

    #[test]
    fn registry_handles_are_shared() {
        let reg = Registry::new();
        let a = reg.counter("x", &[("k", "v")]);
        let b = reg.counter("x", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("x", &[("k", "v")]), 2);
    }

    #[test]
    fn registry_label_cap_folds_overflow() {
        let reg = Registry::with_label_cap(2);
        for i in 0..10 {
            reg.counter("c", &[("i", &i.to_string())]).inc();
        }
        let snap = reg.snapshot();
        let series: Vec<_> = snap.counters.keys().filter(|k| k.name == "c").collect();
        // 2 real series plus the sentinel.
        assert_eq!(series.len(), 3);
        assert_eq!(snap.counter("c", &OVERFLOW_LABELS), 8);
    }

    #[test]
    fn snapshot_delta_and_json() {
        let reg = Registry::new();
        reg.counter("n", &[]).add(3);
        reg.histogram("h", &[("op", "join")]).record(7);
        let before = reg.snapshot();
        reg.counter("n", &[]).add(2);
        reg.histogram("h", &[("op", "join")]).record(9);
        let delta = reg.snapshot().delta(&before);
        assert_eq!(delta.counter("n", &[]), 2);
        let h = delta.histogram("h", &[("op", "join")]).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 9);
        let json = reg.snapshot().to_json().to_string();
        assert!(json.contains("\"h{op=join}\""));
        assert!(json.contains("\"counters\""));
    }

    #[test]
    fn span_tree_shape_and_zeroing() {
        let mut timer = SpanTimer::start("query");
        timer.meta("video", "german");
        timer.child(SpanNode::leaf("conceptual.parse", 10));
        timer.child(SpanNode::new("mil.eval").with_child(SpanNode::leaf("kernel.op.join", 5)));
        let node = timer.finish();
        assert!(node.find("kernel.op.join").is_some());
        let zeroed = node.zeroed();
        assert_eq!(zeroed.elapsed_ns, 0);
        assert_eq!(zeroed.children[1].children[0].elapsed_ns, 0);
        assert_eq!(
            node.shape(),
            "query\n  conceptual.parse\n  mil.eval\n    kernel.op.join\n"
        );
        assert!(node.render().contains("kernel.op.join"));
        assert!(node.to_json().to_string().contains("conceptual.parse"));
    }
}
