//! Property tests for the `cobra-obs` primitives.
//!
//! The observability layer is only trustworthy if its arithmetic is:
//! percentiles must be monotone, merges associative, and concurrent
//! recording lossless. These properties are exercised over generated
//! inputs rather than hand-picked cases.

use cobra_obs::{Histogram, HistogramSnapshot, Registry, OVERFLOW_LABELS};
use f1_monet::parallel::run_jobs;
use proptest::prelude::*;

/// Records every value into a fresh histogram and snapshots it.
fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Value strategy small enough that 200 observations cannot overflow the
/// u64 running sum, while still spanning many histogram buckets.
fn values(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    collection::vec(0u64..(1u64 << 40), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn percentiles_are_monotone_and_bracket_the_data(
        vals in collection::vec(0u64..(1u64 << 40), 1..200),
        mut ps in collection::vec(0.0f64..=1.0, 2..8),
    ) {
        let s = snapshot_of(&vals);
        prop_assert_eq!(s.count(), vals.len() as u64);
        prop_assert_eq!(s.sum(), vals.iter().sum::<u64>());

        // Monotone in the requested quantile, for any sampled grid.
        ps.sort_by(f64::total_cmp);
        let qs: Vec<u64> = ps.iter().map(|&p| s.percentile(p)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "percentiles not monotone: {:?}", qs);
        }
        prop_assert!(s.p50() <= s.p95() && s.p95() <= s.p99());

        // Log-scaled buckets quote an upper bound with ~2x resolution:
        // the extreme percentiles bracket the extreme observations.
        let min = *vals.iter().min().unwrap();
        let max = *vals.iter().max().unwrap();
        let p0 = s.percentile(0.0);
        let p100 = s.percentile(1.0);
        prop_assert!(p0 >= min && p0 <= min.saturating_mul(2));
        prop_assert!(p100 >= max && p100 <= max.saturating_mul(2));
    }

    #[test]
    fn merge_is_associative_commutative_and_matches_one_histogram(
        a in values(100),
        b in values(100),
        c in values(100),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
        prop_assert_eq!(sa.merge(&sb).count(), sa.count() + sb.count());
        prop_assert_eq!(sa.merge(&sb).sum(), sa.sum() + sb.sum());

        // Merging partials equals recording everything in one histogram,
        // which is what makes per-thread histograms combinable.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(sa.merge(&sb).merge(&sc), snapshot_of(&all));

        // Delta undoes merge: (a + b) - b == a.
        prop_assert_eq!(sa.merge(&sb).delta(&sb), sa);
    }
}

proptest! {
    // Each case forks real threads; fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_recording_is_lossless_across_snapshot_deltas(
        threads in 1usize..=8,
        jobs in collection::vec((1u64..48, 0u64..(1u64 << 20)), 1..32),
    ) {
        let reg = Registry::new();
        // Pre-existing traffic the delta must subtract back out.
        reg.counter("obs.records", &[]).add(17);
        reg.histogram("obs.ns", &[("op", "work")]).record(5);
        let before = reg.snapshot();

        let work: Vec<_> = jobs
            .iter()
            .map(|&(n, v)| {
                let reg = &reg;
                move || {
                    for _ in 0..n {
                        reg.counter("obs.records", &[]).inc();
                        reg.histogram("obs.ns", &[("op", "work")]).record(v);
                        reg.gauge("obs.level", &[]).add(1);
                    }
                }
            })
            .collect();
        run_jobs(threads, work).unwrap();

        let total: u64 = jobs.iter().map(|&(n, _)| n).sum();
        let sum: u64 = jobs.iter().map(|&(n, v)| n * v).sum();
        let delta = reg.snapshot().delta(&before);
        prop_assert_eq!(delta.counter("obs.records", &[]), total);
        prop_assert_eq!(delta.gauge("obs.level", &[]), total as i64);
        let h = delta.histogram("obs.ns", &[("op", "work")]);
        prop_assert!(h.is_some());
        let h = h.unwrap();
        prop_assert_eq!(h.count(), total);
        prop_assert_eq!(h.sum(), sum);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn label_cardinality_cap_folds_overflow_without_losing_counts(
        cap in 1usize..6,
        n in 0usize..24,
    ) {
        let reg = Registry::with_label_cap(cap);
        for i in 0..n {
            let i = i.to_string();
            reg.counter("series", &[("i", &i)]).inc();
            reg.histogram("series_ns", &[("i", &i)]).record(7);
        }
        let snap = reg.snapshot();

        let series = snap.counters.keys().filter(|k| k.name == "series").count();
        if n <= cap {
            prop_assert_eq!(series, n);
            prop_assert_eq!(snap.counter("series", &OVERFLOW_LABELS), 0);
        } else {
            // Exactly `cap` real series plus the sentinel holding the rest.
            prop_assert_eq!(series, cap + 1);
            prop_assert_eq!(
                snap.counter("series", &OVERFLOW_LABELS) as usize,
                n - cap
            );
        }
        // The cap bounds memory, never drops observations.
        let counted: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.name == "series")
            .map(|(_, v)| *v)
            .sum();
        prop_assert_eq!(counted as usize, n);

        let hists = snap.histograms_named("series_ns");
        prop_assert!(hists.len() <= cap + 1);
        let recorded: u64 = hists.iter().map(|(_, h)| h.count()).sum();
        prop_assert_eq!(recorded as usize, n);
    }
}
