//! The forward-chaining rule engine.
//!
//! A rule matches a conjunction of fact patterns (with shared variables),
//! checks Allen-relation constraints between the matched facts' intervals
//! — the "spatio-temporal reasoning" of the paper's rule extension — and
//! produces a new fact. Evaluation runs to a fixpoint, so compound events
//! can build on other compound events.

use std::collections::{HashMap, HashSet};

use crate::fact::{Fact, Value};
use crate::interval::{relation, AllenRelation, Interval};
use crate::{Result, RuleError};

/// A term in a condition or production: variable or constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Term {
    /// A variable, bound on first match.
    Var(String),
    /// A constant that must match exactly.
    Const(Value),
}

impl Term {
    /// Variable constructor.
    pub fn var(name: &str) -> Self {
        Term::Var(name.to_string())
    }
}

/// One fact pattern in a rule body.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Condition {
    /// Predicate to match.
    pub predicate: String,
    /// Argument patterns (arity must match the fact's).
    pub args: Vec<Term>,
}

impl Condition {
    /// Creates a condition.
    pub fn new(predicate: &str, args: Vec<Term>) -> Self {
        Condition {
            predicate: predicate.to_string(),
            args,
        }
    }
}

/// An Allen-relation constraint between two matched conditions.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TemporalConstraint {
    /// Index of the left condition.
    pub a: usize,
    /// Index of the right condition.
    pub b: usize,
    /// Accepted relations (`interval(a) REL interval(b)`).
    pub relations: Vec<AllenRelation>,
}

/// How the produced fact's interval derives from the match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum IntervalSpec {
    /// Hull over every matched condition's interval.
    Hull,
    /// The interval of one matched condition.
    Of(usize),
}

/// A compound-event rule.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Rule {
    /// Rule name (for diagnostics).
    pub name: String,
    /// Body: all conditions must match.
    pub conditions: Vec<Condition>,
    /// Temporal constraints between matched conditions.
    pub temporal: Vec<TemporalConstraint>,
    /// Head predicate.
    pub head: String,
    /// Head arguments (variables must be bound by the body).
    pub head_args: Vec<Term>,
    /// Head interval derivation.
    pub interval: IntervalSpec,
}

/// The forward-chaining engine.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    rules: Vec<Rule>,
}

type Bindings = HashMap<String, Value>;

impl Engine {
    /// An engine with no rules.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Adds a rule, validating its head variables and temporal indices.
    pub fn add_rule(&mut self, rule: Rule) -> Result<()> {
        let bound: HashSet<&String> = rule
            .conditions
            .iter()
            .flat_map(|c| c.args.iter())
            .filter_map(|t| match t {
                Term::Var(v) => Some(v),
                Term::Const(_) => None,
            })
            .collect();
        for t in &rule.head_args {
            if let Term::Var(v) = t {
                if !bound.contains(v) {
                    return Err(RuleError::UnboundVariable(v.clone()));
                }
            }
        }
        for tc in &rule.temporal {
            if tc.a >= rule.conditions.len() || tc.b >= rule.conditions.len() {
                return Err(RuleError::BadConditionIndex(tc.a.max(tc.b)));
            }
        }
        if let IntervalSpec::Of(i) = rule.interval {
            if i >= rule.conditions.len() {
                return Err(RuleError::BadConditionIndex(i));
            }
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Forward-chains the rules over `facts` until no new facts derive.
    /// Returns the full fact set (input plus derived).
    pub fn run(&self, facts: Vec<Fact>) -> Result<Vec<Fact>> {
        let mut all: Vec<Fact> = Vec::new();
        let mut seen: HashSet<Fact> = HashSet::new();
        for f in facts {
            if seen.insert(f.clone()) {
                all.push(f);
            }
        }
        const MAX_ROUNDS: usize = 64;
        for _ in 0..MAX_ROUNDS {
            let mut derived = Vec::new();
            for rule in &self.rules {
                self.match_rule(rule, &all, &mut derived);
            }
            let mut grew = false;
            for f in derived {
                if seen.insert(f.clone()) {
                    all.push(f);
                    grew = true;
                }
            }
            if !grew {
                return Ok(all);
            }
        }
        Err(RuleError::NoFixpoint)
    }

    fn match_rule(&self, rule: &Rule, facts: &[Fact], out: &mut Vec<Fact>) {
        let mut chosen: Vec<usize> = Vec::with_capacity(rule.conditions.len());
        let mut bindings: Bindings = HashMap::new();
        self.match_conditions(rule, facts, 0, &mut chosen, &mut bindings, out);
    }

    fn match_conditions(
        &self,
        rule: &Rule,
        facts: &[Fact],
        depth: usize,
        chosen: &mut Vec<usize>,
        bindings: &mut Bindings,
        out: &mut Vec<Fact>,
    ) {
        if depth == rule.conditions.len() {
            // Check temporal constraints.
            for tc in &rule.temporal {
                let ia = facts[chosen[tc.a]].interval;
                let ib = facts[chosen[tc.b]].interval;
                if ia.is_empty() || ib.is_empty() {
                    return;
                }
                if !tc.relations.contains(&relation(&ia, &ib)) {
                    return;
                }
            }
            // Produce.
            let args: Vec<Value> = rule
                .head_args
                .iter()
                .map(|t| match t {
                    Term::Const(v) => v.clone(),
                    Term::Var(v) => bindings[v].clone(),
                })
                .collect();
            let interval = match rule.interval {
                IntervalSpec::Of(i) => facts[chosen[i]].interval,
                IntervalSpec::Hull => {
                    let mut hull: Option<Interval> = None;
                    for &i in chosen.iter() {
                        let iv = facts[i].interval;
                        hull = Some(match hull {
                            Some(h) => h.hull(&iv),
                            None => iv,
                        });
                    }
                    hull.expect("rules have at least one condition")
                }
            };
            out.push(Fact::new(&rule.head, args, interval));
            return;
        }
        let cond = &rule.conditions[depth];
        for (fi, fact) in facts.iter().enumerate() {
            if fact.predicate != cond.predicate || fact.args.len() != cond.args.len() {
                continue;
            }
            // Try binding.
            let mut new_binds: Vec<String> = Vec::new();
            let mut ok = true;
            for (t, v) in cond.args.iter().zip(&fact.args) {
                match t {
                    Term::Const(c) => {
                        if c != v {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(name) => match bindings.get(name) {
                        Some(bound) => {
                            if bound != v {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            bindings.insert(name.clone(), v.clone());
                            new_binds.push(name.clone());
                        }
                    },
                }
            }
            if ok {
                chosen.push(fi);
                self.match_conditions(rule, facts, depth + 1, chosen, bindings, out);
                chosen.pop();
            }
            for name in new_binds {
                bindings.remove(&name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AllenRelation::*;

    fn iv(s: usize, e: usize) -> Interval {
        Interval::new(s, e)
    }

    /// The paper's running example: "retrieve all highlights at the pit
    /// line involving <driver>" becomes a rule joining a highlight with an
    /// overlapping pit-stop caption of the same driver.
    fn pit_highlight_rule() -> Rule {
        Rule {
            name: "pit_highlight".into(),
            conditions: vec![
                Condition::new("highlight", vec![]),
                Condition::new("pit_stop", vec![Term::var("driver")]),
            ],
            temporal: vec![TemporalConstraint {
                a: 0,
                b: 1,
                relations: vec![
                    Overlaps,
                    OverlappedBy,
                    During,
                    Contains,
                    Starts,
                    StartedBy,
                    Finishes,
                    FinishedBy,
                    Equal,
                ],
            }],
            head: "pit_highlight".into(),
            head_args: vec![Term::var("driver")],
            interval: IntervalSpec::Hull,
        }
    }

    #[test]
    fn joins_facts_with_temporal_overlap() {
        let mut engine = Engine::new();
        engine.add_rule(pit_highlight_rule()).unwrap();
        let facts = vec![
            Fact::new("highlight", vec![], iv(100, 160)),
            Fact::new("pit_stop", vec![Value::str("HAKKINEN")], iv(150, 200)),
            Fact::new("pit_stop", vec![Value::str("TRULLI")], iv(400, 440)), // no overlap
        ];
        let all = engine.run(facts).unwrap();
        let derived: Vec<&Fact> = all
            .iter()
            .filter(|f| f.predicate == "pit_highlight")
            .collect();
        assert_eq!(derived.len(), 1);
        assert_eq!(derived[0].args, vec![Value::str("HAKKINEN")]);
        assert_eq!(derived[0].interval, iv(100, 200)); // hull
    }

    #[test]
    fn variable_join_requires_consistent_binding() {
        // leader(d) ∧ pit_stop(d) with same driver variable.
        let mut engine = Engine::new();
        engine
            .add_rule(Rule {
                name: "leader_pits".into(),
                conditions: vec![
                    Condition::new("leader", vec![Term::var("d")]),
                    Condition::new("pit_stop", vec![Term::var("d")]),
                ],
                temporal: vec![],
                head: "leader_pits".into(),
                head_args: vec![Term::var("d")],
                interval: IntervalSpec::Of(1),
            })
            .unwrap();
        let facts = vec![
            Fact::new("leader", vec![Value::str("SCHUMACHER")], iv(0, 1000)),
            Fact::new("pit_stop", vec![Value::str("SCHUMACHER")], iv(300, 350)),
            Fact::new("pit_stop", vec![Value::str("HAKKINEN")], iv(400, 450)),
        ];
        let all = engine.run(facts).unwrap();
        let derived: Vec<&Fact> = all
            .iter()
            .filter(|f| f.predicate == "leader_pits")
            .collect();
        assert_eq!(derived.len(), 1);
        assert_eq!(derived[0].args, vec![Value::str("SCHUMACHER")]);
        assert_eq!(derived[0].interval, iv(300, 350)); // Of(1)
    }

    #[test]
    fn chained_rules_reach_fixpoint() {
        // a -> b, b -> c: two rounds of chaining.
        let mut engine = Engine::new();
        for (from, to) in [("a", "b"), ("b", "c")] {
            engine
                .add_rule(Rule {
                    name: format!("{from}_to_{to}"),
                    conditions: vec![Condition::new(from, vec![Term::var("x")])],
                    temporal: vec![],
                    head: to.into(),
                    head_args: vec![Term::var("x")],
                    interval: IntervalSpec::Of(0),
                })
                .unwrap();
        }
        let all = engine
            .run(vec![Fact::new("a", vec![Value::Int(1)], iv(0, 10))])
            .unwrap();
        assert!(all.iter().any(|f| f.predicate == "b"));
        assert!(all.iter().any(|f| f.predicate == "c"));
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn temporal_sequence_constraint() {
        // fly_out BEFORE replay within the rule set of accepted relations.
        let mut engine = Engine::new();
        engine
            .add_rule(Rule {
                name: "replayed_fly_out".into(),
                conditions: vec![
                    Condition::new("fly_out", vec![Term::var("d")]),
                    Condition::new("replay", vec![]),
                ],
                temporal: vec![TemporalConstraint {
                    a: 0,
                    b: 1,
                    relations: vec![Before, Meets],
                }],
                head: "replayed_fly_out".into(),
                head_args: vec![Term::var("d")],
                interval: IntervalSpec::Hull,
            })
            .unwrap();
        let facts = vec![
            Fact::new("fly_out", vec![Value::str("VILLENEUVE")], iv(100, 150)),
            Fact::new("replay", vec![], iv(180, 230)),
            Fact::new("replay", vec![], iv(90, 120)), // overlaps: rejected
        ];
        let all = engine.run(facts).unwrap();
        let derived: Vec<&Fact> = all
            .iter()
            .filter(|f| f.predicate == "replayed_fly_out")
            .collect();
        assert_eq!(derived.len(), 1);
        assert_eq!(derived[0].interval, iv(100, 230));
    }

    #[test]
    fn validation_rejects_malformed_rules() {
        let mut engine = Engine::new();
        // Unbound head variable.
        assert_eq!(
            engine.add_rule(Rule {
                name: "bad".into(),
                conditions: vec![Condition::new("a", vec![])],
                temporal: vec![],
                head: "b".into(),
                head_args: vec![Term::var("ghost")],
                interval: IntervalSpec::Hull,
            }),
            Err(RuleError::UnboundVariable("ghost".into()))
        );
        // Temporal index out of range.
        assert!(matches!(
            engine.add_rule(Rule {
                name: "bad2".into(),
                conditions: vec![Condition::new("a", vec![])],
                temporal: vec![TemporalConstraint {
                    a: 0,
                    b: 3,
                    relations: vec![Before]
                }],
                head: "b".into(),
                head_args: vec![],
                interval: IntervalSpec::Hull,
            }),
            Err(RuleError::BadConditionIndex(3))
        ));
        // Interval index out of range.
        assert!(matches!(
            engine.add_rule(Rule {
                name: "bad3".into(),
                conditions: vec![Condition::new("a", vec![])],
                temporal: vec![],
                head: "b".into(),
                head_args: vec![],
                interval: IntervalSpec::Of(5),
            }),
            Err(RuleError::BadConditionIndex(5))
        ));
        assert!(engine.is_empty());
    }

    #[test]
    fn derived_facts_are_deduplicated() {
        let mut engine = Engine::new();
        engine
            .add_rule(Rule {
                name: "dup".into(),
                conditions: vec![Condition::new("a", vec![])],
                temporal: vec![],
                head: "b".into(),
                head_args: vec![],
                interval: IntervalSpec::Of(0),
            })
            .unwrap();
        let all = engine
            .run(vec![
                Fact::new("a", vec![], iv(0, 5)),
                Fact::new("a", vec![], iv(0, 5)), // duplicate input
            ])
            .unwrap();
        assert_eq!(all.len(), 2); // one a, one b
    }
}
