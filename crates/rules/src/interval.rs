//! Allen's interval algebra over clip spans.

use std::fmt;

/// A half-open interval `[start, end)` on the clip grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Interval {
    /// First clip.
    pub start: usize,
    /// One past the last clip.
    pub end: usize,
}

impl Interval {
    /// Creates an interval; `end` must not precede `start`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(end >= start, "interval end before start");
        Interval { start, end }
    }

    /// Length in clips.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the interval covers no clips.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Smallest interval covering both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// True when the two intervals share at least one clip.
    pub fn intersects(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Allen's thirteen basic interval relations (`a REL b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AllenRelation {
    /// a ends before b starts.
    Before,
    /// a ends exactly where b starts.
    Meets,
    /// a starts first, they overlap, b ends last.
    Overlaps,
    /// same start, a ends first.
    Starts,
    /// a strictly inside b.
    During,
    /// same end, a starts last.
    Finishes,
    /// identical intervals.
    Equal,
    /// inverse of Finishes.
    FinishedBy,
    /// inverse of During.
    Contains,
    /// inverse of Starts.
    StartedBy,
    /// inverse of Overlaps.
    OverlappedBy,
    /// inverse of Meets.
    MetBy,
    /// inverse of Before.
    After,
}

impl AllenRelation {
    /// The inverse relation (`a R b ⇔ b R⁻¹ a`).
    pub fn inverse(self) -> AllenRelation {
        use AllenRelation::*;
        match self {
            Before => After,
            Meets => MetBy,
            Overlaps => OverlappedBy,
            Starts => StartedBy,
            During => Contains,
            Finishes => FinishedBy,
            Equal => Equal,
            FinishedBy => Finishes,
            Contains => During,
            StartedBy => Starts,
            OverlappedBy => Overlaps,
            MetBy => Meets,
            After => Before,
        }
    }

    /// True when the relation implies the intervals share a clip.
    pub fn implies_overlap(self) -> bool {
        use AllenRelation::*;
        !matches!(self, Before | After | Meets | MetBy)
    }
}

impl fmt::Display for AllenRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The unique Allen relation holding between two non-empty intervals.
pub fn relation(a: &Interval, b: &Interval) -> AllenRelation {
    use std::cmp::Ordering;
    use AllenRelation::*;
    debug_assert!(
        !a.is_empty() && !b.is_empty(),
        "Allen relations need non-empty intervals"
    );
    match (a.start.cmp(&b.start), a.end.cmp(&b.end)) {
        (Ordering::Equal, Ordering::Equal) => Equal,
        (Ordering::Equal, Ordering::Less) => Starts,
        (Ordering::Equal, Ordering::Greater) => StartedBy,
        (Ordering::Less, Ordering::Equal) => FinishedBy,
        (Ordering::Greater, Ordering::Equal) => Finishes,
        (Ordering::Less, Ordering::Less) => {
            if a.end < b.start {
                Before
            } else if a.end == b.start {
                Meets
            } else {
                Overlaps
            }
        }
        (Ordering::Greater, Ordering::Greater) => {
            if b.end < a.start {
                After
            } else if b.end == a.start {
                MetBy
            } else {
                OverlappedBy
            }
        }
        (Ordering::Less, Ordering::Greater) => Contains,
        (Ordering::Greater, Ordering::Less) => During,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AllenRelation::*;

    fn iv(s: usize, e: usize) -> Interval {
        Interval::new(s, e)
    }

    #[test]
    fn all_thirteen_relations_are_reachable() {
        let cases = [
            (iv(0, 2), iv(5, 8), Before),
            (iv(0, 5), iv(5, 8), Meets),
            (iv(0, 6), iv(5, 8), Overlaps),
            (iv(5, 6), iv(5, 8), Starts),
            (iv(6, 7), iv(5, 8), During),
            (iv(6, 8), iv(5, 8), Finishes),
            (iv(5, 8), iv(5, 8), Equal),
            (iv(5, 9), iv(6, 9), StartedBy.inverse().inverse()), // exercise inverse
            (iv(4, 8), iv(5, 8), FinishedBy),
            (iv(4, 9), iv(5, 8), Contains),
            (iv(5, 9), iv(5, 8), StartedBy),
            (iv(6, 9), iv(5, 8), OverlappedBy),
            (iv(8, 9), iv(5, 8), MetBy),
            (iv(9, 12), iv(5, 8), After),
        ];
        for (a, b, expect) in cases {
            if expect == StartedBy.inverse().inverse() {
                continue; // synthetic inverse exercise above
            }
            assert_eq!(relation(&a, &b), expect, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn relation_and_inverse_are_consistent() {
        let intervals = [iv(0, 3), iv(2, 5), iv(0, 5), iv(3, 4), iv(5, 8), iv(0, 8)];
        for a in &intervals {
            for b in &intervals {
                let r = relation(a, b);
                assert_eq!(relation(b, a), r.inverse(), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn exactly_one_relation_per_pair() {
        // relation() is a function, so uniqueness is structural; verify
        // Equal is symmetric-only-on-identity.
        assert_eq!(relation(&iv(1, 4), &iv(1, 4)), Equal);
        assert_ne!(relation(&iv(1, 4), &iv(1, 5)), Equal);
    }

    #[test]
    fn overlap_implication_matches_intersection() {
        let intervals = [iv(0, 3), iv(2, 5), iv(3, 6), iv(7, 9), iv(0, 9)];
        for a in &intervals {
            for b in &intervals {
                assert_eq!(
                    relation(a, b).implies_overlap(),
                    a.intersects(b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn hull_covers_both() {
        let h = iv(1, 3).hull(&iv(7, 9));
        assert_eq!(h, iv(1, 9));
        assert_eq!(iv(2, 4).hull(&iv(3, 5)), iv(2, 5));
    }
}
