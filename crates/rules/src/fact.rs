//! Facts: event-layer entities with a validity interval.

use std::fmt;

use crate::interval::Interval;

/// An attribute value of a fact.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Value {
    /// A string (driver names, caption classes, …).
    Str(String),
    /// An integer (positions, laps, …).
    Int(i64),
}

impl Value {
    /// String constructor.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(s.as_ref().to_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

/// A fact: `predicate(args…) @ interval`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Fact {
    /// Predicate name ("highlight", "pit_stop", …).
    pub predicate: String,
    /// Arguments in positional order.
    pub args: Vec<Value>,
    /// Validity interval on the clip grid.
    pub interval: Interval,
}

impl Fact {
    /// Creates a fact.
    pub fn new(predicate: &str, args: Vec<Value>, interval: Interval) -> Self {
        Fact {
            predicate: predicate.to_string(),
            args,
            interval,
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")@[{}, {})", self.interval.start, self.interval.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_facts() {
        let f = Fact::new(
            "pit_stop",
            vec![Value::str("SCHUMACHER"), Value::Int(2)],
            Interval::new(100, 160),
        );
        assert_eq!(f.to_string(), "pit_stop(SCHUMACHER, 2)@[100, 160)");
    }

    #[test]
    fn values_convert_and_compare() {
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_ne!(Value::str("3"), Value::Int(3));
    }
}
