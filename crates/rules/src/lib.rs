//! # f1-rules — the rule-based extension
//!
//! The Cobra system's rule-based extension "is implemented within the
//! query engine. It is aimed at formalizing the descriptions of high-level
//! concepts, as well as their extraction based on features and
//! spatio-temporal reasoning" (§3). The paper's UI also lets a user
//! "define new compound events by specifying different temporal
//! relationships among already defined events" (§5.6).
//!
//! This crate provides both pieces:
//!
//! * [`interval`] — Allen's interval algebra over clip spans (the thirteen
//!   basic relations and coarse groupings useful in queries),
//! * [`fact`] — typed facts with a validity interval (event-layer
//!   entities),
//! * [`engine`] — rule definitions with variable binding, attribute
//!   predicates and temporal constraints, evaluated by forward chaining
//!   to a fixpoint; derived facts are the user's compound events.

pub mod engine;
pub mod fact;
pub mod interval;

pub use engine::{Condition, Engine, IntervalSpec, Rule, TemporalConstraint, Term};
pub use fact::{Fact, Value};
pub use interval::{relation, AllenRelation, Interval};

/// Errors raised by the rule engine.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleError {
    /// A rule references an unbound variable in its production.
    UnboundVariable(String),
    /// A temporal constraint references a condition index out of range.
    BadConditionIndex(usize),
    /// Iteration limit reached before the fixpoint (runaway rule set).
    NoFixpoint,
}

impl std::fmt::Display for RuleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleError::UnboundVariable(v) => write!(f, "unbound variable '?{v}' in production"),
            RuleError::BadConditionIndex(i) => {
                write!(f, "temporal constraint on condition {i} out of range")
            }
            RuleError::NoFixpoint => write!(f, "rule evaluation did not reach a fixpoint"),
        }
    }
}

impl std::error::Error for RuleError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, RuleError>;
