//! Property tests for the Allen interval algebra and the rule engine.

use f1_rules::{relation, AllenRelation, Interval};
use proptest::prelude::*;

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0usize..50, 1usize..20).prop_map(|(s, l)| Interval::new(s, s + l))
}

proptest! {
    #[test]
    fn relation_inverse_round_trips(a in arb_interval(), b in arb_interval()) {
        let r = relation(&a, &b);
        prop_assert_eq!(relation(&b, &a), r.inverse());
        prop_assert_eq!(r.inverse().inverse(), r);
    }

    #[test]
    fn equal_iff_identical(a in arb_interval(), b in arb_interval()) {
        prop_assert_eq!(relation(&a, &b) == AllenRelation::Equal, a == b);
    }

    #[test]
    fn overlap_implication_matches_intersection(a in arb_interval(), b in arb_interval()) {
        prop_assert_eq!(relation(&a, &b).implies_overlap(), a.intersects(&b));
    }

    #[test]
    fn hull_contains_both(a in arb_interval(), b in arb_interval()) {
        let h = a.hull(&b);
        prop_assert!(h.start <= a.start && h.end >= a.end);
        prop_assert!(h.start <= b.start && h.end >= b.end);
        prop_assert!(h.len() <= a.len() + b.len() + a.start.abs_diff(b.start).max(a.end.abs_diff(b.end)));
    }

    #[test]
    fn engine_output_is_monotone_in_facts(
        spans in proptest::collection::vec(arb_interval(), 1..8),
    ) {
        use f1_rules::{Condition, Engine, Fact, IntervalSpec, Rule, Term};
        // join rule: a(x) && b() overlapping -> c(x)
        let mut engine = Engine::new();
        engine.add_rule(Rule {
            name: "join".into(),
            conditions: vec![
                Condition::new("a", vec![Term::var("x")]),
                Condition::new("b", vec![]),
            ],
            temporal: vec![],
            head: "c".into(),
            head_args: vec![Term::var("x")],
            interval: IntervalSpec::Hull,
        }).unwrap();
        let mut facts: Vec<Fact> = spans.iter().enumerate().map(|(i, iv)| {
            Fact::new("a", vec![f1_rules::Value::Int(i as i64)], *iv)
        }).collect();
        let small = engine.run(facts.clone()).unwrap();
        facts.push(Fact::new("b", vec![], Interval::new(0, 100)));
        let big = engine.run(facts).unwrap();
        // With the extra b fact, at least as many facts derive.
        prop_assert!(big.len() >= small.len());
        // Derived c facts equal the number of a facts (b spans everything).
        let c = big.iter().filter(|f| f.predicate == "c").count();
        prop_assert_eq!(c, spans.len());
    }
}
