//! Differential tests: the vectorized operators must be *result-identical*
//! to the naive atom-at-a-time reference implementations in `ops::naive`,
//! on random BATs covering every column representation — void heads,
//! materialized oid/int/dbl/str columns, dictionary-encoded strings, and
//! doubles with the awkward values (NaN, -0.0) whose total-order semantics
//! the typed kernels must preserve bit-for-bit.
//!
//! The `*_ctx` variants are additionally checked at 1, 2 and 4 threads:
//! morsel results are concatenated in range order, so row order (and, for
//! integer aggregations, every value) is independent of the thread count.

use f1_monet::ops::{self, naive, Aggregate, OpCtx};
use f1_monet::prelude::*;
use proptest::prelude::*;

fn keyed_int_bat() -> impl Strategy<Value = Bat> {
    proptest::collection::vec((0i64..16, -50i64..50), 0..48).prop_map(|pairs| {
        Bat::from_pairs(
            AtomType::Int,
            AtomType::Int,
            pairs.into_iter().map(|(k, v)| (Atom::Int(k), Atom::Int(v))),
        )
        .expect("homogeneous ints")
    })
}

fn void_int_bat() -> impl Strategy<Value = Bat> {
    proptest::collection::vec(-50i64..50, 0..48)
        .prop_map(|v| Bat::from_tail(AtomType::Int, v.into_iter().map(Atom::Int)).expect("ints"))
}

/// Doubles drawn from a pool that includes NaN, both zeros and halves.
fn tricky_dbl(i: i64) -> f64 {
    match i {
        0 => f64::NAN,
        1 => -0.0,
        2 => 0.0,
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        _ => (i - 12) as f64 * 0.5,
    }
}

fn dbl_bat() -> impl Strategy<Value = Bat> {
    proptest::collection::vec(0i64..20, 0..48).prop_map(|v| {
        Bat::from_tail(
            AtomType::Dbl,
            v.into_iter().map(|i| Atom::Dbl(tricky_dbl(i))),
        )
        .expect("doubles")
    })
}

fn word(i: i64) -> Atom {
    let pool = [
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
    ];
    Atom::str(pool[(i.unsigned_abs() as usize) % pool.len()])
}

fn str_bat() -> impl Strategy<Value = Bat> {
    proptest::collection::vec(0i64..8, 0..48)
        .prop_map(|v| Bat::from_tail(AtomType::Str, v.into_iter().map(word)).expect("strings"))
}

/// (int head, oid tail) pairs — probes a void-headed build side.
fn oid_tail_bat() -> impl Strategy<Value = Bat> {
    proptest::collection::vec((-50i64..50, 0u64..64), 0..48).prop_map(|pairs| {
        Bat::from_pairs(
            AtomType::Int,
            AtomType::Oid,
            pairs.into_iter().map(|(h, t)| (Atom::Int(h), Atom::Oid(t))),
        )
        .expect("oids")
    })
}

proptest! {
    #[test]
    fn select_eq_matches_naive(b in keyed_int_bat(), probe in -60i64..60) {
        prop_assert_eq!(ops::select_eq(&b, &Atom::Int(probe)), naive::select_eq(&b, &Atom::Int(probe)));
        // A widened dbl probe must hit the same int rows.
        let d = Atom::Dbl(probe as f64);
        prop_assert_eq!(ops::select_eq(&b, &d), naive::select_eq(&b, &d));
    }

    #[test]
    fn select_eq_on_doubles_matches_naive(b in dbl_bat(), probe in 0i64..20) {
        let v = Atom::Dbl(tricky_dbl(probe));
        prop_assert_eq!(ops::select_eq(&b, &v), naive::select_eq(&b, &v));
    }

    #[test]
    fn select_range_matches_naive(b in keyed_int_bat(), lo in -60i64..60, hi in -60i64..60) {
        let (lo, hi) = (Atom::Int(lo), Atom::Int(hi));
        prop_assert_eq!(ops::select_range(&b, &lo, &hi), naive::select_range(&b, &lo, &hi));
        // Mixed-type bounds: dbl lo against the int column.
        let dlo = Atom::Dbl(lo.as_dbl().unwrap() + 0.5);
        prop_assert_eq!(ops::select_range(&b, &dlo, &hi), naive::select_range(&b, &dlo, &hi));
    }

    #[test]
    fn select_range_on_doubles_matches_naive(b in dbl_bat(), lo in 0i64..20, hi in 0i64..20) {
        let (lo, hi) = (Atom::Dbl(tricky_dbl(lo)), Atom::Dbl(tricky_dbl(hi)));
        prop_assert_eq!(ops::select_range(&b, &lo, &hi), naive::select_range(&b, &lo, &hi));
    }

    #[test]
    fn select_range_on_strings_matches_naive(b in str_bat(), lo in 0i64..8, hi in 0i64..8) {
        let (lo, hi) = (word(lo), word(hi));
        prop_assert_eq!(ops::select_range(&b, &lo, &hi), naive::select_range(&b, &lo, &hi));
        // Cross-type bounds collapse to constants in both implementations.
        prop_assert_eq!(
            ops::select_range(&b, &Atom::Int(0), &hi),
            naive::select_range(&b, &Atom::Int(0), &hi)
        );
    }

    #[test]
    fn select_range_on_void_tail_matches_naive(n in 0usize..48, lo in 0u64..64, hi in 0u64..64) {
        let b = Bat::from_tail(AtomType::Int, (0..n as i64).map(Atom::Int)).unwrap().reverse();
        let (lo, hi) = (Atom::Oid(lo), Atom::Oid(hi));
        prop_assert_eq!(ops::select_range(&b, &lo, &hi), naive::select_range(&b, &lo, &hi));
    }

    #[test]
    fn join_matches_naive(l in keyed_int_bat(), r in keyed_int_bat()) {
        prop_assert_eq!(ops::join(&l, &r), naive::join(&l, &r));
        prop_assert_eq!(ops::semijoin(&l, &r), naive::semijoin(&l, &r));
        prop_assert_eq!(ops::antijoin(&l, &r), naive::antijoin(&l, &r));
    }

    #[test]
    fn join_against_void_build_matches_naive(l in oid_tail_bat(), n in 0usize..48) {
        // r's head is a void run 0..n — the vectorized join uses pure
        // oid arithmetic where the naive one builds a positional index.
        let r = Bat::from_tail(AtomType::Int, (0..n as i64).map(Atom::Int)).unwrap();
        prop_assert_eq!(ops::join(&l, &r), naive::join(&l, &r));
    }

    #[test]
    fn join_with_mixed_numeric_keys_matches_naive(l in dbl_bat(), r in keyed_int_bat()) {
        // Dbl probes into an int build side force the widened index.
        prop_assert_eq!(ops::join(&l.reverse(), &r), naive::join(&l.reverse(), &r));
    }

    #[test]
    fn join_on_strings_matches_naive(l in str_bat(), r in str_bat()) {
        let rk = r.reverse(); // str head, void tail
        prop_assert_eq!(ops::join(&l, &rk), naive::join(&l, &rk));
        let lk = l.reverse();
        prop_assert_eq!(ops::semijoin(&lk, &rk), naive::semijoin(&lk, &rk));
        prop_assert_eq!(ops::antijoin(&lk, &rk), naive::antijoin(&lk, &rk));
    }

    #[test]
    fn grouping_ops_match_naive(b in keyed_int_bat()) {
        prop_assert_eq!(ops::unique_tail(&b), naive::unique_tail(&b));
        prop_assert_eq!(ops::histogram(&b), naive::histogram(&b));
        prop_assert_eq!(ops::group(&b), naive::group(&b));
        prop_assert_eq!(ops::sort_by_tail(&b), naive::sort_by_tail(&b));
    }

    #[test]
    fn grouping_ops_match_naive_on_doubles_and_strings(d in dbl_bat(), s in str_bat()) {
        for b in [&d, &s] {
            prop_assert_eq!(ops::unique_tail(b), naive::unique_tail(b));
            prop_assert_eq!(ops::histogram(b), naive::histogram(b));
            prop_assert_eq!(ops::group(b), naive::group(b));
            prop_assert_eq!(ops::sort_by_tail(b), naive::sort_by_tail(b));
        }
    }

    #[test]
    fn aggregates_match_naive(b in void_int_bat(), d in dbl_bat()) {
        for bat in [&b, &d] {
            for kind in [Aggregate::Sum, Aggregate::Avg, Aggregate::Min, Aggregate::Max, Aggregate::Count] {
                prop_assert_eq!(ops::aggregate(bat, kind), naive::aggregate(bat, kind));
            }
        }
    }

    #[test]
    fn grouped_aggregate_matches_naive(vals in proptest::collection::vec(-50i64..50, 1..48), g in 1u64..6) {
        let values = Bat::from_tail(AtomType::Int, vals.iter().copied().map(Atom::Int)).unwrap();
        // Cover every head: oid i -> group i % g, so nothing is dropped
        // by the naive path and nothing errors in the vectorized one.
        let groups = Bat::from_pairs(
            AtomType::Oid,
            AtomType::Oid,
            (0..values.len() as u64).map(|i| (Atom::Oid(i), Atom::Oid(i % g))),
        )
        .unwrap();
        for kind in [Aggregate::Sum, Aggregate::Avg, Aggregate::Min, Aggregate::Max, Aggregate::Count] {
            prop_assert_eq!(
                ops::grouped_aggregate(&values, &groups, kind),
                naive::grouped_aggregate(&values, &groups, kind)
            );
        }
    }

    #[test]
    fn ctx_variants_are_thread_count_invariant(l in keyed_int_bat(), r in keyed_int_bat(), probe in -60i64..60) {
        for threads in [1usize, 2, 4] {
            let ctx = OpCtx::with_threads(threads);
            prop_assert_eq!(ops::select_eq_ctx(&l, &Atom::Int(probe), &ctx).unwrap(), ops::select_eq(&l, &Atom::Int(probe)));
            prop_assert_eq!(
                ops::select_range_ctx(&l, &Atom::Int(-10), &Atom::Int(probe), &ctx).unwrap(),
                ops::select_range(&l, &Atom::Int(-10), &Atom::Int(probe))
            );
            prop_assert_eq!(ops::join_ctx(&l, &r, None, &ctx).unwrap(), ops::join(&l, &r));
            prop_assert_eq!(ops::semijoin_ctx(&l, &r, None, &ctx).unwrap(), ops::semijoin(&l, &r));
            prop_assert_eq!(ops::antijoin_ctx(&l, &r, None, &ctx).unwrap(), ops::antijoin(&l, &r));
        }
    }

    #[test]
    fn grouped_aggregate_ctx_is_exact_on_ints_at_any_thread_count(vals in proptest::collection::vec(-50i64..50, 1..48), g in 1u64..6) {
        let values = Bat::from_tail(AtomType::Int, vals.iter().copied().map(Atom::Int)).unwrap();
        let groups = Bat::from_pairs(
            AtomType::Oid,
            AtomType::Oid,
            (0..values.len() as u64).map(|i| (Atom::Oid(i), Atom::Oid(i % g))),
        )
        .unwrap();
        let baseline = ops::grouped_aggregate(&values, &groups, Aggregate::Sum).unwrap();
        for threads in [2usize, 4] {
            let ctx = OpCtx::with_threads(threads);
            // Integer sums accumulate in wrapping i64 per morsel and merge
            // exactly — the thread count must not change a single bit.
            prop_assert_eq!(
                ops::grouped_aggregate_ctx(&values, &groups, Aggregate::Sum, &ctx).unwrap(),
                baseline.clone()
            );
            prop_assert_eq!(
                ops::grouped_aggregate_ctx(&values, &groups, Aggregate::Count, &ctx).unwrap(),
                ops::grouped_aggregate(&values, &groups, Aggregate::Count).unwrap()
            );
        }
    }

    #[test]
    fn cached_index_never_changes_join_results(l in keyed_int_bat(), r in keyed_int_bat()) {
        let ctx = OpCtx::default();
        if let Some(idx) = ColumnIndex::build(r.head()) {
            prop_assert_eq!(ops::join_ctx(&l, &r, Some(&idx), &ctx).unwrap(), ops::join(&l, &r));
            prop_assert_eq!(ops::semijoin_ctx(&l, &r, Some(&idx), &ctx).unwrap(), ops::semijoin(&l, &r));
            prop_assert_eq!(ops::antijoin_ctx(&l, &r, Some(&idx), &ctx).unwrap(), ops::antijoin(&l, &r));
        }
    }
}
