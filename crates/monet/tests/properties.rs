//! Property-based tests for the BAT kernel invariants.

use f1_monet::ops::{self, Aggregate};
use f1_monet::prelude::*;
use proptest::prelude::*;

fn arb_atom_int() -> impl Strategy<Value = Atom> {
    (-100i64..100).prop_map(Atom::Int)
}

fn arb_int_bat() -> impl Strategy<Value = Bat> {
    proptest::collection::vec(arb_atom_int(), 0..64)
        .prop_map(|v| Bat::from_tail(AtomType::Int, v).expect("homogeneous ints"))
}

fn arb_keyed_bat() -> impl Strategy<Value = Bat> {
    proptest::collection::vec((0i64..20, -50i64..50), 0..64).prop_map(|pairs| {
        Bat::from_pairs(
            AtomType::Int,
            AtomType::Int,
            pairs.into_iter().map(|(k, v)| (Atom::Int(k), Atom::Int(v))),
        )
        .expect("homogeneous ints")
    })
}

proptest! {
    #[test]
    fn reverse_is_an_involution(b in arb_int_bat()) {
        prop_assert_eq!(b.reverse().reverse(), b);
    }

    #[test]
    fn mirror_head_equals_tail(b in arb_int_bat()) {
        let m = b.mirror();
        for i in 0..m.len() {
            prop_assert_eq!(m.head_at(i).unwrap(), m.tail_at(i).unwrap());
        }
    }

    #[test]
    fn slice_never_exceeds_bounds(b in arb_int_bat(), lo in 0usize..80, hi in 0usize..80) {
        let s = b.slice(lo, hi);
        prop_assert!(s.len() <= b.len());
        prop_assert!(s.len() <= hi.saturating_sub(lo));
    }

    #[test]
    fn select_range_returns_only_in_range(b in arb_keyed_bat(), lo in -50i64..50, hi in -50i64..50) {
        let s = ops::select_range(&b, &Atom::Int(lo), &Atom::Int(hi));
        for (_, t) in s.iter() {
            let v = t.as_int().unwrap();
            prop_assert!(v >= lo && v <= hi);
        }
        // Completeness: every qualifying pair survives.
        let expected = b.iter().filter(|(_, t)| {
            let v = t.as_int().unwrap();
            v >= lo && v <= hi
        }).count();
        prop_assert_eq!(s.len(), expected);
    }

    #[test]
    fn semijoin_antijoin_partition_input(l in arb_keyed_bat(), r in arb_keyed_bat()) {
        let semi = ops::semijoin(&l, &r);
        let anti = ops::antijoin(&l, &r);
        prop_assert_eq!(semi.len() + anti.len(), l.len());
    }

    #[test]
    fn join_size_matches_key_multiplicity(l in arb_keyed_bat(), r in arb_keyed_bat()) {
        let j = ops::join(&l, &r);
        let expected: usize = l.iter().map(|(_, t)| {
            r.iter().filter(|(h, _)| *h == t).count()
        }).sum();
        prop_assert_eq!(j.len(), expected);
    }

    #[test]
    fn sort_is_ordered_and_permutation(b in arb_int_bat()) {
        let s = ops::sort_by_tail(&b);
        prop_assert_eq!(s.len(), b.len());
        let tails: Vec<Atom> = s.tail().iter().collect();
        for w in tails.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut orig: Vec<Atom> = b.tail().iter().collect();
        let mut sorted = tails.clone();
        orig.sort();
        sorted.sort();
        prop_assert_eq!(orig, sorted);
    }

    #[test]
    fn histogram_counts_sum_to_len(b in arb_int_bat()) {
        let h = ops::histogram(&b);
        let total: i64 = h.tail().iter().map(|a| a.as_int().unwrap()).sum();
        prop_assert_eq!(total as usize, b.len());
    }

    #[test]
    fn unique_has_no_duplicate_tails(b in arb_int_bat()) {
        let u = ops::unique_tail(&b);
        let mut seen = std::collections::HashSet::new();
        for (_, t) in u.iter() {
            prop_assert!(seen.insert(t));
        }
    }

    #[test]
    fn sum_matches_iterator_sum(b in arb_int_bat()) {
        prop_assume!(!b.is_empty());
        let s = ops::aggregate(&b, Aggregate::Sum).unwrap().as_int().unwrap();
        let expected: i64 = b.tail().iter().map(|a| a.as_int().unwrap()).sum();
        prop_assert_eq!(s, expected);
    }

    #[test]
    fn min_max_bound_every_element(b in arb_int_bat()) {
        prop_assume!(!b.is_empty());
        let mn = ops::aggregate(&b, Aggregate::Min).unwrap();
        let mx = ops::aggregate(&b, Aggregate::Max).unwrap();
        for (_, t) in b.iter() {
            prop_assert!(t >= mn && t <= mx);
        }
    }

    #[test]
    fn mil_arithmetic_matches_rust(a in -1000i64..1000, c in -1000i64..1000) {
        let k = Kernel::new();
        let v = k.eval_mil(&format!("RETURN ({a}) + ({c}) * 2;")).unwrap();
        prop_assert_eq!(v, MilValue::Atom(Atom::Int(a + c * 2)));
    }

    #[test]
    fn mil_bat_roundtrip_preserves_values(values in proptest::collection::vec(-100i64..100, 1..32)) {
        let k = Kernel::new();
        let inserts: String = values.iter().map(|v| format!("b.insert({v});")).collect();
        let script = format!("VAR b := new(void, int); {inserts} RETURN b.sum;");
        let v = k.eval_mil(&script).unwrap();
        let expected: i64 = values.iter().sum();
        prop_assert_eq!(v, MilValue::Atom(Atom::Int(expected)));
    }

    #[test]
    fn parallel_insert_count_is_deterministic(n in 1usize..12, threads in 1i64..8) {
        let k = Kernel::new();
        let stmts: String = (0..n).map(|i| format!("p.insert(\"m{i}\", {i}.0);")).collect();
        let script = format!(
            "threadcnt({threads}); VAR p := new(str, dbl); PARALLEL {{ {stmts} }} RETURN p.count;"
        );
        let v = k.eval_mil(&script).unwrap();
        prop_assert_eq!(v, MilValue::Atom(Atom::Int(n as i64)));
    }
}
