//! A MIL (Monet Interface Language) interpreter.
//!
//! The Cobra system compiles Moa object-algebra plans into MIL programs
//! that the Monet kernel executes (paper §3, Fig. 4 and Fig. 5b). This
//! module implements the subset of MIL those programs need:
//!
//! * `VAR x := expr;` declarations and `x := expr;` assignments,
//! * `PROC name(params) : type := { … }` procedure definitions,
//! * BAT method calls (`b.insert(h,t)`, `b.reverse`, `b.find(k)`, …),
//! * builtin functions (`new(void,int)`, `bat("name")`, `count`, …),
//! * extension-module procedure calls resolved through the kernel,
//! * `threadcnt(n)` plus `PARALLEL { … }` blocks that evaluate their
//!   statements on concurrent threads — the construct behind the paper's
//!   parallel evaluation of six HMM servers,
//! * `WHILE (cond) { … }` loops, `IF (cond) { … } ELSE { … }`
//!   conditionals and `true`/`false` literals,
//! * `RETURN expr;` and `#`-comments.
//!
//! Because `WHILE` and recursive `PROC`s make nontermination expressible,
//! evaluation can be bounded by an [`ExecBudget`](crate::guard::ExecBudget)
//! (step fuel, wall-clock deadline, cancellation token) through
//! [`Kernel::eval_mil_guarded`]; see [`crate::guard`]. The unguarded
//! entry points run with an unlimited budget.
//!
//! ```
//! use f1_monet::prelude::*;
//! let k = Kernel::new();
//! let v = k.eval_mil(r#"
//!     VAR b := new(void, dbl);
//!     b.insert(1.5); b.insert(2.5); b.insert(0.5);
//!     RETURN b.max;
//! "#).unwrap();
//! assert_eq!(v, MilValue::Atom(Atom::Dbl(2.5)));
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::bat::Bat;
use crate::error::{MonetError, Result};
use crate::guard::{ExecBudget, ExecGuard};
use crate::kernel::{BatHandle, Kernel};
use crate::ops::{self, Aggregate};
use crate::parallel;
use crate::value::{Atom, AtomType};

/// Maximum nesting of user-`PROC` calls: recursion beyond this fails
/// with an eval error instead of overflowing the interpreter stack.
const MAX_CALL_DEPTH: usize = 128;

/// A value produced by MIL evaluation.
#[derive(Clone)]
pub enum MilValue {
    /// Absence of a value (e.g. an expression statement's result).
    Nil,
    /// A scalar atom.
    Atom(Atom),
    /// A (shared, mutable) BAT.
    Bat(BatHandle),
}

impl MilValue {
    /// Wraps a fresh BAT in a handle.
    pub fn new_bat(bat: Bat) -> Self {
        MilValue::Bat(Arc::new(RwLock::new(bat)))
    }

    /// Extracts the atom, failing on Nil/Bat.
    pub fn as_atom(&self) -> Result<Atom> {
        match self {
            MilValue::Atom(a) => Ok(a.clone()),
            other => Err(MonetError::Eval(format!("expected atom, found {other}"))),
        }
    }

    /// Extracts the BAT handle, failing on Nil/Atom.
    pub fn as_bat(&self) -> Result<BatHandle> {
        match self {
            MilValue::Bat(b) => Ok(Arc::clone(b)),
            other => Err(MonetError::Eval(format!("expected BAT, found {other}"))),
        }
    }

    /// Clones the underlying BAT out of the handle.
    pub fn bat_snapshot(&self) -> Result<Bat> {
        Ok(self.as_bat()?.read().clone())
    }
}

impl fmt::Debug for MilValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilValue::Nil => write!(f, "Nil"),
            MilValue::Atom(a) => write!(f, "Atom({a})"),
            MilValue::Bat(b) => write!(f, "Bat(len={})", b.read().len()),
        }
    }
}

impl fmt::Display for MilValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilValue::Nil => write!(f, "nil"),
            MilValue::Atom(a) => write!(f, "{a}"),
            MilValue::Bat(b) => {
                let bat = b.read();
                write!(
                    f,
                    "[{} pairs of {}|{}]",
                    bat.len(),
                    bat.types().0,
                    bat.types().1
                )
            }
        }
    }
}

impl PartialEq for MilValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (MilValue::Nil, MilValue::Nil) => true,
            (MilValue::Atom(a), MilValue::Atom(b)) => a == b,
            (MilValue::Bat(a), MilValue::Bat(b)) => Arc::ptr_eq(a, b) || *a.read() == *b.read(),
            _ => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Dbl(f64),
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Dot,
    Assign, // :=
    Plus,
    Minus,
    Star,
    Slash,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '#' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push(SpannedTok {
                    tok: Tok::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                toks.push(SpannedTok {
                    tok: Tok::RParen,
                    line,
                });
                i += 1;
            }
            '{' => {
                toks.push(SpannedTok {
                    tok: Tok::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                toks.push(SpannedTok {
                    tok: Tok::RBrace,
                    line,
                });
                i += 1;
            }
            '[' => {
                toks.push(SpannedTok {
                    tok: Tok::LBracket,
                    line,
                });
                i += 1;
            }
            ']' => {
                toks.push(SpannedTok {
                    tok: Tok::RBracket,
                    line,
                });
                i += 1;
            }
            ',' => {
                toks.push(SpannedTok {
                    tok: Tok::Comma,
                    line,
                });
                i += 1;
            }
            ';' => {
                toks.push(SpannedTok {
                    tok: Tok::Semi,
                    line,
                });
                i += 1;
            }
            '.' => {
                toks.push(SpannedTok {
                    tok: Tok::Dot,
                    line,
                });
                i += 1;
            }
            ':' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    toks.push(SpannedTok {
                        tok: Tok::Assign,
                        line,
                    });
                    i += 2;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Colon,
                        line,
                    });
                    i += 1;
                }
            }
            '+' => {
                toks.push(SpannedTok {
                    tok: Tok::Plus,
                    line,
                });
                i += 1;
            }
            '-' => {
                toks.push(SpannedTok {
                    tok: Tok::Minus,
                    line,
                });
                i += 1;
            }
            '*' => {
                toks.push(SpannedTok {
                    tok: Tok::Star,
                    line,
                });
                i += 1;
            }
            '/' => {
                toks.push(SpannedTok {
                    tok: Tok::Slash,
                    line,
                });
                i += 1;
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    toks.push(SpannedTok { tok: Tok::Le, line });
                    i += 2;
                } else {
                    toks.push(SpannedTok { tok: Tok::Lt, line });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    toks.push(SpannedTok { tok: Tok::Ge, line });
                    i += 2;
                } else {
                    toks.push(SpannedTok { tok: Tok::Gt, line });
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    toks.push(SpannedTok {
                        tok: Tok::EqEq,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(MonetError::Parse {
                        line,
                        message: "single '=' (use ':=' or '==')".into(),
                    });
                }
            }
            '!' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    toks.push(SpannedTok { tok: Tok::Ne, line });
                    i += 2;
                } else {
                    return Err(MonetError::Parse {
                        line,
                        message: "lone '!'".into(),
                    });
                }
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= n {
                        return Err(MonetError::Parse {
                            line,
                            message: "unterminated string".into(),
                        });
                    }
                    match bytes[i] {
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\\' => {
                            i += 1;
                            if i >= n {
                                return Err(MonetError::Parse {
                                    line,
                                    message: "dangling escape".into(),
                                });
                            }
                            s.push(match bytes[i] {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                            i += 1;
                        }
                        c => {
                            if c == '\n' {
                                line += 1;
                            }
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                toks.push(SpannedTok {
                    tok: Tok::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < n && bytes[i] == '.' && i + 1 < n && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < n && (bytes[i] == 'e' || bytes[i] == 'E') {
                    let mut j = i + 1;
                    if j < n && (bytes[j] == '+' || bytes[j] == '-') {
                        j += 1;
                    }
                    if j < n && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < n && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                let tok = if is_float {
                    Tok::Dbl(text.parse().map_err(|_| MonetError::Parse {
                        line,
                        message: format!("bad float literal '{text}'"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| MonetError::Parse {
                        line,
                        message: format!("bad int literal '{text}'"),
                    })?)
                };
                toks.push(SpannedTok { tok, line });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                toks.push(SpannedTok {
                    tok: Tok::Ident(text),
                    line,
                });
            }
            other => {
                return Err(MonetError::Parse {
                    line,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// AST + parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
}

#[derive(Debug, Clone)]
enum Expr {
    Int(i64),
    Dbl(f64),
    Str(String),
    Ident(String),
    Bit(bool),
    Call {
        name: String,
        args: Vec<Expr>,
    },
    Method {
        recv: Box<Expr>,
        name: String,
        args: Vec<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Neg(Box<Expr>),
}

#[derive(Debug, Clone)]
enum Stmt {
    Var {
        name: String,
        expr: Expr,
    },
    Assign {
        name: String,
        expr: Expr,
    },
    Expr(Expr),
    Return(Expr),
    Parallel(Vec<Stmt>),
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
}

/// A user-defined MIL procedure.
#[derive(Debug, Clone)]
struct ProcDef {
    params: Vec<String>,
    body: Vec<Stmt>,
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<()> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn err(&self, message: String) -> MonetError {
        MonetError::Parse {
            line: self.line(),
            message,
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Keyword check, case-insensitive (the paper mixes `PROC`/`VAR` with
    /// lowercase identifiers).
    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn parse_program(&mut self) -> Result<(HashMap<String, ProcDef>, Vec<Stmt>)> {
        let mut procs = HashMap::new();
        let mut stmts = Vec::new();
        while self.peek().is_some() {
            if self.is_kw("PROC") {
                self.bump();
                let name = self.ident("procedure name")?;
                let def = self.parse_proc_tail()?;
                procs.insert(name, def);
            } else {
                stmts.push(self.parse_stmt()?);
            }
        }
        Ok((procs, stmts))
    }

    fn parse_proc_tail(&mut self) -> Result<ProcDef> {
        self.expect(&Tok::LParen, "'('")?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                // Parameter: [type] name, where type may be `BAT[t1,t2]` or
                // an atom type. The last identifier before ',' or ')' is the
                // parameter name; preceding type tokens are skipped.
                let mut last_ident: Option<String> = None;
                loop {
                    match self.peek() {
                        Some(Tok::Ident(_)) => {
                            last_ident = Some(self.ident("parameter")?);
                        }
                        Some(Tok::LBracket) => {
                            // skip [t1,t2]
                            self.bump();
                            while self.peek() != Some(&Tok::RBracket) {
                                if self.bump().is_none() {
                                    return Err(self.err("unterminated '['".into()));
                                }
                            }
                            self.bump();
                        }
                        Some(Tok::Comma) | Some(Tok::RParen) => break,
                        other => {
                            return Err(self.err(format!("unexpected token in params: {other:?}")))
                        }
                    }
                }
                params.push(last_ident.ok_or_else(|| self.err("missing parameter name".into()))?);
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        // Optional ': returntype'
        if self.peek() == Some(&Tok::Colon) {
            self.bump();
            self.ident("return type")?;
        }
        self.expect(&Tok::Assign, "':='")?;
        let body = self.parse_block("procedure body")?;
        Ok(ProcDef { params, body })
    }

    /// Parses `{ stmt* }` with an optional trailing `;`.
    fn parse_block(&mut self, what: &str) -> Result<Vec<Stmt>> {
        self.expect(&Tok::LBrace, "'{'")?;
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.err(format!("unterminated {what}")));
            }
            body.push(self.parse_stmt()?);
        }
        self.bump();
        if self.peek() == Some(&Tok::Semi) {
            self.bump();
        }
        Ok(body)
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        if self.is_kw("WHILE") {
            self.bump();
            self.expect(&Tok::LParen, "'('")?;
            let cond = self.parse_expr()?;
            self.expect(&Tok::RParen, "')'")?;
            let body = self.parse_block("WHILE body")?;
            return Ok(Stmt::While { cond, body });
        }
        if self.is_kw("IF") {
            self.bump();
            self.expect(&Tok::LParen, "'('")?;
            let cond = self.parse_expr()?;
            self.expect(&Tok::RParen, "')'")?;
            let then_body = self.parse_block("IF body")?;
            let else_body = if self.is_kw("ELSE") {
                self.bump();
                if self.is_kw("IF") {
                    // `ELSE IF (…) { … }` chains as a nested conditional.
                    vec![self.parse_stmt()?]
                } else {
                    self.parse_block("ELSE body")?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_body,
                else_body,
            });
        }
        if self.is_kw("VAR") {
            self.bump();
            let name = self.ident("variable name")?;
            self.expect(&Tok::Assign, "':='")?;
            let expr = self.parse_expr()?;
            self.expect(&Tok::Semi, "';'")?;
            return Ok(Stmt::Var { name, expr });
        }
        if self.is_kw("RETURN") {
            self.bump();
            let expr = self.parse_expr()?;
            self.expect(&Tok::Semi, "';'")?;
            return Ok(Stmt::Return(expr));
        }
        if self.is_kw("PARALLEL") {
            self.bump();
            let body = self.parse_block("PARALLEL block")?;
            return Ok(Stmt::Parallel(body));
        }
        // Assignment `x := expr;` vs expression statement.
        if let Some(Tok::Ident(name)) = self.peek().cloned() {
            if self.toks.get(self.pos + 1).map(|t| &t.tok) == Some(&Tok::Assign) {
                self.bump();
                self.bump();
                let expr = self.parse_expr()?;
                self.expect(&Tok::Semi, "';'")?;
                return Ok(Stmt::Assign { name, expr });
            }
        }
        let expr = self.parse_expr()?;
        self.expect(&Tok::Semi, "';'")?;
        Ok(Stmt::Expr(expr))
    }

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_add()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Lt) => BinOp::Lt,
                Some(Tok::Gt) => BinOp::Gt,
                Some(Tok::Le) => BinOp::Le,
                Some(Tok::Ge) => BinOp::Ge,
                Some(Tok::EqEq) => BinOp::Eq,
                Some(Tok::Ne) => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_add()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.peek() == Some(&Tok::Minus) {
            self.bump();
            let inner = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut expr = self.parse_primary()?;
        while self.peek() == Some(&Tok::Dot) {
            self.bump();
            let name = self.ident("method name")?;
            let args = if self.peek() == Some(&Tok::LParen) {
                self.parse_args()?
            } else {
                Vec::new()
            };
            expr = Expr::Method {
                recv: Box::new(expr),
                name,
                args,
            };
        }
        Ok(expr)
    }

    fn parse_args(&mut self) -> Result<Vec<Expr>> {
        self.expect(&Tok::LParen, "'('")?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                args.push(self.parse_expr()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        Ok(args)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Some(Tok::Dbl(v)) => {
                self.bump();
                Ok(Expr::Dbl(v))
            }
            Some(Tok::Str(s)) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Some(Tok::LParen) => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                self.bump();
                if name.eq_ignore_ascii_case("true") {
                    Ok(Expr::Bit(true))
                } else if name.eq_ignore_ascii_case("false") {
                    Ok(Expr::Bit(false))
                } else if self.peek() == Some(&Tok::LParen) {
                    let args = self.parse_args()?;
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Env<'k> {
    kernel: &'k Kernel,
    vars: HashMap<String, MilValue>,
    procs: Arc<HashMap<String, ProcDef>>,
    threads: Arc<AtomicUsize>,
    /// Shared across PARALLEL threads and procedure frames so the budget
    /// bounds the whole program.
    guard: Arc<ExecGuard>,
    /// Current user-PROC nesting, capped at [`MAX_CALL_DEPTH`].
    depth: usize,
}

impl<'k> Env<'k> {
    fn lookup(&self, name: &str) -> Result<MilValue> {
        self.vars
            .get(name)
            .cloned()
            .ok_or_else(|| MonetError::Eval(format!("undefined variable '{name}'")))
    }
}

enum Flow {
    Normal,
    Return(MilValue),
}

/// Parses and evaluates a MIL program, returning the value of the first
/// executed `RETURN` at the top level (or [`MilValue::Nil`]).
///
/// Runs with an unlimited [`ExecBudget`]; a `WHILE (true) { }` program
/// will spin forever. Use [`eval_program_guarded`] to bound execution.
pub fn eval_program(kernel: &Kernel, source: &str) -> Result<MilValue> {
    eval_program_guarded(kernel, source, &ExecBudget::unlimited())
}

/// Like [`eval_program`], but bounded by `budget`: evaluation fails with
/// [`MonetError::BudgetExhausted`], [`MonetError::Deadline`] or
/// [`MonetError::Interrupted`] when a limit trips, instead of running
/// (potentially) forever.
pub fn eval_program_guarded(
    kernel: &Kernel,
    source: &str,
    budget: &ExecBudget,
) -> Result<MilValue> {
    let toks = lex(source)?;
    let mut parser = Parser { toks, pos: 0 };
    let (procs, stmts) = parser.parse_program()?;
    let mut env = Env {
        kernel,
        vars: HashMap::new(),
        procs: Arc::new(procs),
        threads: Arc::new(AtomicUsize::new(1)),
        guard: Arc::new(budget.start()),
        depth: 0,
    };
    let out = exec_stmts(&mut env, &stmts);
    let metrics = kernel.metrics();
    metrics.mil_ticks.add(env.guard.ticks());
    metrics.mil_fuel_used.add(env.guard.fuel_used());
    match out? {
        Flow::Return(v) => Ok(v),
        Flow::Normal => Ok(MilValue::Nil),
    }
}

fn exec_stmts(env: &mut Env<'_>, stmts: &[Stmt]) -> Result<Flow> {
    for stmt in stmts {
        match exec_stmt(env, stmt)? {
            Flow::Normal => {}
            ret @ Flow::Return(_) => return Ok(ret),
        }
    }
    Ok(Flow::Normal)
}

fn exec_stmt(env: &mut Env<'_>, stmt: &Stmt) -> Result<Flow> {
    env.guard.tick()?;
    match stmt {
        Stmt::Var { name, expr } => {
            let v = eval_expr(env, expr)?;
            env.vars.insert(name.clone(), v);
            Ok(Flow::Normal)
        }
        Stmt::Assign { name, expr } => {
            if !env.vars.contains_key(name) {
                return Err(MonetError::Eval(format!(
                    "assignment to undeclared variable '{name}' (use VAR)"
                )));
            }
            let v = eval_expr(env, expr)?;
            env.vars.insert(name.clone(), v);
            Ok(Flow::Normal)
        }
        Stmt::Expr(expr) => {
            eval_expr(env, expr)?;
            Ok(Flow::Normal)
        }
        Stmt::Return(expr) => {
            let v = eval_expr(env, expr)?;
            Ok(Flow::Return(v))
        }
        Stmt::Parallel(body) => exec_parallel(env, body),
        Stmt::While { cond, body } => {
            loop {
                // The back-edge tick makes even `WHILE (true) { }` (an
                // empty body charges nothing) consume fuel every pass.
                env.guard.tick()?;
                if !eval_cond(env, cond)? {
                    break;
                }
                match exec_stmts(env, body)? {
                    Flow::Normal => {}
                    ret @ Flow::Return(_) => return Ok(ret),
                }
            }
            Ok(Flow::Normal)
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            if eval_cond(env, cond)? {
                exec_stmts(env, then_body)
            } else {
                exec_stmts(env, else_body)
            }
        }
    }
}

/// Evaluates a `WHILE`/`IF` condition, which must produce a bit.
fn eval_cond(env: &mut Env<'_>, cond: &Expr) -> Result<bool> {
    match eval_expr(env, cond)?.as_atom()? {
        Atom::Bit(b) => Ok(b),
        other => Err(MonetError::TypeMismatch {
            expected: "bit condition".into(),
            found: other.to_string(),
        }),
    }
}

/// Executes the statements of a `PARALLEL { … }` block concurrently.
///
/// Each statement gets a snapshot of the environment (BAT handles are
/// shared, so inserts into a common BAT — as in the paper's `parEval` —
/// are visible to all). New variable bindings merge back in statement
/// order; a `RETURN` inside a parallel block returns after the whole
/// block completes, earliest statement winning.
fn exec_parallel(env: &mut Env<'_>, body: &[Stmt]) -> Result<Flow> {
    let threads = env.threads.load(Ordering::Relaxed).max(1);
    env.kernel.metrics().parallel_blocks.inc();
    env.kernel.metrics().threads.set(threads as i64);
    type JobOut = Result<(HashMap<String, MilValue>, Option<MilValue>)>;
    let jobs: Vec<Box<dyn FnOnce() -> JobOut + Send + '_>> = body
        .iter()
        .map(|stmt| {
            let mut local = env.clone();
            let stmt = stmt.clone();
            Box::new(move || -> JobOut {
                let flow = exec_stmt(&mut local, &stmt)?;
                let ret = match flow {
                    Flow::Return(v) => Some(v),
                    Flow::Normal => None,
                };
                Ok((local.vars, ret))
            }) as Box<dyn FnOnce() -> JobOut + Send>
        })
        .collect();
    let outcomes = parallel::run_jobs(threads, jobs)?;
    let mut ret: Option<MilValue> = None;
    for outcome in outcomes {
        let (vars, r) = outcome?;
        for (k, v) in vars {
            env.vars.insert(k, v);
        }
        if ret.is_none() {
            ret = r;
        }
    }
    match ret {
        Some(v) => Ok(Flow::Return(v)),
        None => Ok(Flow::Normal),
    }
}

fn eval_expr(env: &mut Env<'_>, expr: &Expr) -> Result<MilValue> {
    match expr {
        Expr::Int(v) => Ok(MilValue::Atom(Atom::Int(*v))),
        Expr::Dbl(v) => Ok(MilValue::Atom(Atom::Dbl(*v))),
        Expr::Str(s) => Ok(MilValue::Atom(Atom::str(s))),
        Expr::Bit(b) => Ok(MilValue::Atom(Atom::Bit(*b))),
        Expr::Ident(name) => env.lookup(name),
        Expr::Neg(inner) => {
            let v = eval_expr(env, inner)?.as_atom()?;
            match v {
                Atom::Int(i) => Ok(MilValue::Atom(Atom::Int(-i))),
                Atom::Dbl(d) => Ok(MilValue::Atom(Atom::Dbl(-d))),
                other => Err(MonetError::Eval(format!("cannot negate {other}"))),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_expr(env, lhs)?.as_atom()?;
            let r = eval_expr(env, rhs)?.as_atom()?;
            eval_binop(op, &l, &r).map(MilValue::Atom)
        }
        Expr::Call { name, args } => eval_call(env, name, args),
        Expr::Method { recv, name, args } => {
            let recv = eval_expr(env, recv)?;
            let mut argv = Vec::with_capacity(args.len());
            for a in args {
                argv.push(eval_expr(env, a)?);
            }
            eval_method(env, &recv, name, &argv)
        }
    }
}

fn eval_binop(op: &BinOp, l: &Atom, r: &Atom) -> Result<Atom> {
    use BinOp::*;
    match op {
        Eq => return Ok(Atom::Bit(l == r)),
        Ne => return Ok(Atom::Bit(l != r)),
        Lt => return Ok(Atom::Bit(l < r)),
        Gt => return Ok(Atom::Bit(l > r)),
        Le => return Ok(Atom::Bit(l <= r)),
        Ge => return Ok(Atom::Bit(l >= r)),
        _ => {}
    }
    // String concatenation with '+'.
    if let (Atom::Str(a), Atom::Str(b)) = (l, r) {
        if *op == Add {
            return Ok(Atom::str(format!("{a}{b}")));
        }
    }
    // Integer arithmetic stays integral; anything else widens to dbl.
    if let (Atom::Int(a), Atom::Int(b)) = (l, r) {
        return Ok(match op {
            Add => Atom::Int(a.wrapping_add(*b)),
            Sub => Atom::Int(a.wrapping_sub(*b)),
            Mul => Atom::Int(a.wrapping_mul(*b)),
            Div => {
                if *b == 0 {
                    return Err(MonetError::Eval("integer division by zero".into()));
                }
                Atom::Int(a / b)
            }
            _ => unreachable!(),
        });
    }
    let a = l.as_dbl()?;
    let b = r.as_dbl()?;
    Ok(Atom::Dbl(match op {
        Add => a + b,
        Sub => a - b,
        Mul => a * b,
        Div => a / b,
        _ => unreachable!(),
    }))
}

fn eval_call(env: &mut Env<'_>, name: &str, args: &[Expr]) -> Result<MilValue> {
    // `new(headtype, tailtype)` reads its arguments as type names.
    if name == "new" {
        if args.len() != 2 {
            return Err(MonetError::Eval("new(headtype, tailtype)".into()));
        }
        let ty = |e: &Expr| -> Result<AtomType> {
            match e {
                Expr::Ident(n) => AtomType::parse(n),
                Expr::Str(s) => AtomType::parse(s),
                other => Err(MonetError::Eval(format!(
                    "new() expects type names, found {other:?}"
                ))),
            }
        };
        let head = ty(&args[0])?;
        let tail = ty(&args[1])?;
        return Ok(MilValue::new_bat(Bat::new(head, tail)));
    }

    let mut argv = Vec::with_capacity(args.len());
    for a in args {
        argv.push(eval_expr(env, a)?);
    }

    match name {
        "bat" => {
            let name = argv
                .first()
                .ok_or_else(|| MonetError::Eval("bat(name)".into()))?
                .as_atom()?;
            Ok(MilValue::Bat(env.kernel.bat(name.as_str()?)?))
        }
        "register" => {
            let bname = argv
                .first()
                .ok_or_else(|| MonetError::Eval("register(name, bat)".into()))?
                .as_atom()?;
            let bat = argv
                .get(1)
                .ok_or_else(|| MonetError::Eval("register(name, bat)".into()))?
                .bat_snapshot()?;
            Ok(MilValue::Bat(env.kernel.set_bat(bname.as_str()?, bat)))
        }
        "unregister" => {
            let bname = argv
                .first()
                .ok_or_else(|| MonetError::Eval("unregister(name)".into()))?
                .as_atom()?;
            env.kernel.drop_bat(bname.as_str()?)?;
            Ok(MilValue::Nil)
        }
        "count" => {
            let b = argv
                .first()
                .ok_or_else(|| MonetError::Eval("count(bat)".into()))?
                .as_bat()?;
            let n = b.read().len();
            Ok(MilValue::Atom(Atom::Int(n as i64)))
        }
        "threadcnt" => {
            let n = argv
                .first()
                .ok_or_else(|| MonetError::Eval("threadcnt(n)".into()))?
                .as_atom()?
                .as_int()?;
            if n < 1 {
                return Err(MonetError::Eval("threadcnt requires n >= 1".into()));
            }
            env.threads.store(n as usize, Ordering::Relaxed);
            Ok(MilValue::Atom(Atom::Int(n)))
        }
        "print" => {
            // Deterministic, side-effect-free print: formats its argument.
            let text = argv
                .first()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "nil".into());
            Ok(MilValue::Atom(Atom::str(text)))
        }
        "int" => {
            let a = argv
                .first()
                .ok_or_else(|| MonetError::Eval("int(x)".into()))?
                .as_atom()?;
            let v = match a {
                Atom::Int(v) => v,
                Atom::Dbl(v) => v as i64,
                Atom::Bit(b) => b as i64,
                Atom::Str(s) => s
                    .trim()
                    .parse()
                    .map_err(|_| MonetError::Eval(format!("cannot parse '{s}' as int")))?,
                Atom::Oid(o) => o as i64,
            };
            Ok(MilValue::Atom(Atom::Int(v)))
        }
        "dbl" => {
            let a = argv
                .first()
                .ok_or_else(|| MonetError::Eval("dbl(x)".into()))?
                .as_atom()?;
            let v = match a {
                Atom::Dbl(v) => v,
                Atom::Int(v) => v as f64,
                Atom::Str(s) => s
                    .trim()
                    .parse()
                    .map_err(|_| MonetError::Eval(format!("cannot parse '{s}' as dbl")))?,
                other => return Err(MonetError::Eval(format!("cannot convert {other} to dbl"))),
            };
            Ok(MilValue::Atom(Atom::Dbl(v)))
        }
        "str" => {
            let a = argv
                .first()
                .ok_or_else(|| MonetError::Eval("str(x)".into()))?
                .as_atom()?;
            let v = match a {
                Atom::Str(s) => s.to_string(),
                other => other.to_string(),
            };
            Ok(MilValue::Atom(Atom::str(v)))
        }
        "sqrt" | "abs" | "ln" | "exp" | "floor" => {
            let v = argv
                .first()
                .ok_or_else(|| MonetError::Eval(format!("{name}(x)")))?
                .as_atom()?
                .as_dbl()?;
            let out = match name {
                "sqrt" => v.sqrt(),
                "abs" => v.abs(),
                "ln" => v.ln(),
                "exp" => v.exp(),
                "floor" => v.floor(),
                _ => unreachable!(),
            };
            Ok(MilValue::Atom(Atom::Dbl(out)))
        }
        "error" => {
            let msg = argv
                .first()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "error()".into());
            Err(MonetError::Eval(msg))
        }
        _ => {
            // User-defined PROC?
            if let Some(def) = env.procs.get(name).cloned() {
                env.guard.tick()?;
                if def.params.len() != argv.len() {
                    return Err(MonetError::Eval(format!(
                        "procedure '{name}' expects {} arguments, got {}",
                        def.params.len(),
                        argv.len()
                    )));
                }
                if env.depth + 1 > MAX_CALL_DEPTH {
                    return Err(MonetError::Eval(format!(
                        "procedure call depth exceeded {MAX_CALL_DEPTH} (runaway recursion in '{name}'?)"
                    )));
                }
                let mut callee = Env {
                    kernel: env.kernel,
                    vars: def.params.iter().cloned().zip(argv).collect(),
                    procs: Arc::clone(&env.procs),
                    threads: Arc::clone(&env.threads),
                    guard: Arc::clone(&env.guard),
                    depth: env.depth + 1,
                };
                return match exec_stmts(&mut callee, &def.body)? {
                    Flow::Return(v) => Ok(v),
                    Flow::Normal => Ok(MilValue::Nil),
                };
            }
            // Extension-module procedure?
            env.guard.tick()?;
            env.kernel.call_proc(name, &argv)
        }
    }
}

/// The operator context for the current MIL evaluation: `threadcnt(n)`
/// workers and the program's execution guard, so vectorized operators
/// morselize across threads and honour the budget inside long scans.
fn op_ctx<'e>(env: &'e Env<'_>) -> ops::OpCtx<'e> {
    ops::OpCtx {
        threads: env.threads.load(Ordering::Relaxed).max(1),
        guard: Some(env.guard.as_ref()),
        metrics: Some(env.kernel.metrics().as_ref()),
    }
}

fn eval_method(env: &Env<'_>, recv: &MilValue, name: &str, args: &[MilValue]) -> Result<MilValue> {
    env.guard.tick()?;
    // Fault site `bat.{method}`: only pay the format when a plan is armed.
    if cobra_faults::is_armed() {
        if let Err(fault) = cobra_faults::fire(&format!("bat.{name}")) {
            env.kernel.metrics().record_failure(&format!("bat.{name}"));
            return Err(fault.into());
        }
    }
    // The receiver's row count is the dominant input size of every BAT
    // method; recorded alongside the wall time it gives the plan coster
    // a measured ns-per-row figure per opcode.
    let rows = recv
        .as_bat()
        .ok()
        .map_or(0, |handle| handle.read().len() as u64);
    let start = std::time::Instant::now();
    let out = eval_method_op(env, recv, name, args);
    env.kernel
        .metrics()
        .record_op_sized(name, start.elapsed().as_nanos() as u64, rows);
    out
}

/// The BAT-method dispatch proper, separated from [`eval_method`] so the
/// wrapper can time every opcode uniformly.
fn eval_method_op(
    env: &Env<'_>,
    recv: &MilValue,
    name: &str,
    args: &[MilValue],
) -> Result<MilValue> {
    let handle = recv
        .as_bat()
        .map_err(|_| MonetError::Eval(format!("method '.{name}' requires a BAT receiver")))?;
    match name {
        "insert" => {
            let mut bat = handle.write();
            match args.len() {
                1 => bat.append_void(args[0].as_atom()?)?,
                2 => bat.append(args[0].as_atom()?, args[1].as_atom()?)?,
                n => {
                    return Err(MonetError::Eval(format!(
                        "insert takes 1 or 2 arguments, got {n}"
                    )))
                }
            }
            drop(bat);
            Ok(MilValue::Bat(handle))
        }
        "replace" => {
            if args.len() != 2 {
                return Err(MonetError::Eval("replace(key, value)".into()));
            }
            handle
                .write()
                .replace(args[0].as_atom()?, args[1].as_atom()?)?;
            Ok(MilValue::Bat(handle))
        }
        "reverse" => Ok(MilValue::new_bat(handle.read().reverse())),
        "mirror" => Ok(MilValue::new_bat(handle.read().mirror())),
        "mark" => {
            let base = match args.first() {
                Some(v) => {
                    let a = v.as_atom()?;
                    match a {
                        Atom::Oid(o) => o,
                        Atom::Int(i) if i >= 0 => i as u64,
                        other => {
                            return Err(MonetError::Eval(format!(
                                "mark expects a non-negative base, got {other}"
                            )))
                        }
                    }
                }
                None => 0,
            };
            Ok(MilValue::new_bat(handle.read().mark(base)))
        }
        "count" => Ok(MilValue::Atom(Atom::Int(handle.read().len() as i64))),
        "max" | "min" | "sum" | "avg" => {
            let kind = match name {
                "max" => Aggregate::Max,
                "min" => Aggregate::Min,
                "sum" => Aggregate::Sum,
                _ => Aggregate::Avg,
            };
            Ok(MilValue::Atom(ops::aggregate(&handle.read(), kind)?))
        }
        "find" => {
            let key = args
                .first()
                .ok_or_else(|| MonetError::Eval("find(key)".into()))?
                .as_atom()?;
            match handle.read().find(&key) {
                Some(v) => Ok(MilValue::Atom(v)),
                None => Err(MonetError::NotFound(format!("key {key} in BAT"))),
            }
        }
        "select" => match args.len() {
            1 => Ok(MilValue::new_bat(ops::select_eq_ctx(
                &handle.read(),
                &args[0].as_atom()?,
                &op_ctx(env),
            )?)),
            2 => Ok(MilValue::new_bat(ops::select_range_ctx(
                &handle.read(),
                &args[0].as_atom()?,
                &args[1].as_atom()?,
                &op_ctx(env),
            )?)),
            n => Err(MonetError::Eval(format!(
                "select takes 1 or 2 arguments, got {n}"
            ))),
        },
        "slice" => {
            if args.len() != 2 {
                return Err(MonetError::Eval("slice(lo, hi)".into()));
            }
            let lo = args[0].as_atom()?.as_int()?.max(0) as usize;
            let hi = args[1].as_atom()?.as_int()?.max(0) as usize;
            Ok(MilValue::new_bat(handle.read().slice(lo, hi)))
        }
        "join" => {
            let other = args
                .first()
                .ok_or_else(|| MonetError::Eval("join(bat)".into()))?
                .as_bat()?;
            let l = handle.read();
            let r = other.read();
            // Reuse (or build) the kernel's cached index over r's head.
            let idx = env.kernel.head_index(&r);
            Ok(MilValue::new_bat(ops::join_ctx(
                &l,
                &r,
                idx.as_deref(),
                &op_ctx(env),
            )?))
        }
        "semijoin" => {
            let other = args
                .first()
                .ok_or_else(|| MonetError::Eval("semijoin(bat)".into()))?
                .as_bat()?;
            let l = handle.read();
            let r = other.read();
            let idx = env.kernel.head_index(&r);
            let out = ops::semijoin_ctx(&l, &r, idx.as_deref(), &op_ctx(env))?;
            drop((l, r));
            Ok(MilValue::new_bat(out))
        }
        "diff" => {
            let other = args
                .first()
                .ok_or_else(|| MonetError::Eval("diff(bat)".into()))?
                .as_bat()?;
            let l = handle.read();
            let r = other.read();
            let idx = env.kernel.head_index(&r);
            let out = ops::antijoin_ctx(&l, &r, idx.as_deref(), &op_ctx(env))?;
            drop((l, r));
            Ok(MilValue::new_bat(out))
        }
        "unique" => Ok(MilValue::new_bat(ops::unique_tail(&handle.read()))),
        "histogram" => Ok(MilValue::new_bat(ops::histogram(&handle.read()))),
        "sort" => Ok(MilValue::new_bat(ops::sort_by_tail(&handle.read()))),
        other => Err(MonetError::Eval(format!("unknown BAT method '.{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::new()
    }

    #[test]
    fn literals_and_arithmetic() {
        let k = kernel();
        assert_eq!(
            k.eval_mil("RETURN 2 + 3 * 4;").unwrap(),
            MilValue::Atom(Atom::Int(14))
        );
        assert_eq!(
            k.eval_mil("RETURN (2 + 3) * 4;").unwrap(),
            MilValue::Atom(Atom::Int(20))
        );
        assert_eq!(
            k.eval_mil("RETURN 1.5 + 1;").unwrap(),
            MilValue::Atom(Atom::Dbl(2.5))
        );
        assert_eq!(
            k.eval_mil("RETURN -3 + 1;").unwrap(),
            MilValue::Atom(Atom::Int(-2))
        );
        assert_eq!(
            k.eval_mil(r#"RETURN "pit" + "stop";"#).unwrap(),
            MilValue::Atom(Atom::str("pitstop"))
        );
    }

    #[test]
    fn comparison_operators() {
        let k = kernel();
        assert_eq!(
            k.eval_mil("RETURN 2 < 3;").unwrap(),
            MilValue::Atom(Atom::Bit(true))
        );
        assert_eq!(
            k.eval_mil("RETURN 2 == 2.0;").unwrap(),
            MilValue::Atom(Atom::Bit(true))
        );
        assert_eq!(
            k.eval_mil("RETURN 2 != 2;").unwrap(),
            MilValue::Atom(Atom::Bit(false))
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(kernel().eval_mil("RETURN 1 / 0;").is_err());
    }

    #[test]
    fn variables_and_assignment() {
        let k = kernel();
        let v = k.eval_mil("VAR x := 10; x := x + 5; RETURN x;").unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Int(15)));
        assert!(k.eval_mil("y := 1;").is_err());
    }

    #[test]
    fn scientific_notation_and_comments() {
        let k = kernel();
        let v = k
            .eval_mil("# threshold from the paper\nVAR t := 2.2e-3; RETURN t * 1000;")
            .unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Dbl(2.2)));
    }

    #[test]
    fn bat_lifecycle_new_insert_aggregate() {
        let k = kernel();
        let v = k
            .eval_mil(
                r#"
                VAR b := new(void, dbl);
                b.insert(1.0); b.insert(3.0); b.insert(2.0);
                RETURN b.avg;
                "#,
            )
            .unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Dbl(2.0)));
    }

    #[test]
    fn paper_fig4_pattern_max_then_reverse_find() {
        // The tail of Fig. 4: find the model name with the best score.
        let k = kernel();
        let v = k
            .eval_mil(
                r#"
                VAR parEval := new(str, dbl);
                parEval.insert("Service", 0.21);
                parEval.insert("Forehand", 0.55);
                parEval.insert("Smash", 0.34);
                VAR najmanji := parEval.max;
                VAR ret := (parEval.reverse).find(najmanji);
                RETURN ret;
                "#,
            )
            .unwrap();
        assert_eq!(v, MilValue::Atom(Atom::str("Forehand")));
    }

    #[test]
    fn kernel_bats_via_bat_and_register() {
        let k = kernel();
        k.set_bat(
            "speeds",
            Bat::from_tail(AtomType::Dbl, [Atom::Dbl(312.0), Atom::Dbl(318.5)]).unwrap(),
        );
        let v = k.eval_mil(r#"RETURN bat("speeds").max;"#).unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Dbl(318.5)));

        k.eval_mil(
            r#"
            VAR c := new(void, int);
            c.insert(7);
            register("copy", c);
            "#,
        )
        .unwrap();
        assert!(k.has_bat("copy"));
        assert_eq!(k.bat("copy").unwrap().read().len(), 1);
        k.eval_mil(r#"unregister("copy");"#).unwrap();
        assert!(!k.has_bat("copy"));
    }

    #[test]
    fn select_slice_sort_methods() {
        let k = kernel();
        let v = k
            .eval_mil(
                r#"
                VAR b := new(void, int);
                b.insert(5); b.insert(1); b.insert(9); b.insert(3);
                VAR s := b.select(2, 6);
                RETURN s.count;
                "#,
            )
            .unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Int(2)));
        let v = k
            .eval_mil(
                r#"
                VAR b := new(void, int);
                b.insert(5); b.insert(1); b.insert(9);
                RETURN (b.sort).slice(0, 1).max;
                "#,
            )
            .unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Int(1)));
    }

    #[test]
    fn join_method_combines_bats() {
        let k = kernel();
        let v = k
            .eval_mil(
                r#"
                VAR pos := new(void, str);
                pos.insert("schumacher");
                VAR team := new(str, str);
                team.insert("schumacher", "ferrari");
                VAR j := pos.join(team);
                RETURN j.find(0 + 0);
                "#,
            )
            .unwrap_err();
        // find(int) on oid-headed bat misses; validates typed find errors.
        assert!(matches!(v, MonetError::NotFound(_)));
    }

    #[test]
    fn user_proc_definition_and_call() {
        let k = kernel();
        let v = k
            .eval_mil(
                r#"
                PROC quant(dbl x) : int := {
                    RETURN int(x * 10.0);
                };
                RETURN quant(0.73);
                "#,
            )
            .unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Int(7)));
    }

    #[test]
    fn proc_with_bat_typed_params_like_fig4() {
        let k = kernel();
        let v = k
            .eval_mil(
                r#"
                PROC combine(BAT[oid,dbl] f1, BAT[oid,dbl] f2) : dbl := {
                    RETURN f1.sum + f2.sum;
                };
                VAR a := new(void, dbl); a.insert(1.0); a.insert(2.0);
                VAR b := new(void, dbl); b.insert(0.5);
                RETURN combine(a, b);
                "#,
            )
            .unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Dbl(3.5)));
    }

    #[test]
    fn proc_arity_mismatch_errors() {
        let k = kernel();
        let err = k
            .eval_mil("PROC f(int a) : int := { RETURN a; }; RETURN f(1, 2);")
            .unwrap_err();
        assert!(matches!(err, MonetError::Eval(_)));
    }

    #[test]
    fn parallel_block_inserts_into_shared_bat() {
        let k = kernel();
        let v = k
            .eval_mil(
                r#"
                VAR BrProcesa := threadcnt(4);
                VAR parEval := new(str, dbl);
                PARALLEL {
                    parEval.insert("Service", 0.2);
                    parEval.insert("Forehand", 0.5);
                    parEval.insert("Smash", 0.3);
                    parEval.insert("Backhand", 0.4);
                }
                RETURN parEval.count;
                "#,
            )
            .unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Int(4)));
    }

    #[test]
    fn parallel_block_merges_var_bindings() {
        let k = kernel();
        let v = k
            .eval_mil(
                r#"
                threadcnt(3);
                PARALLEL {
                    VAR a := 1 + 1;
                    VAR b := 2 * 2;
                    VAR c := 9 - 3;
                }
                RETURN a + b + c;
                "#,
            )
            .unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Int(12)));
    }

    #[test]
    fn conversions_and_builtins() {
        let k = kernel();
        assert_eq!(
            k.eval_mil(r#"RETURN int("42");"#).unwrap(),
            MilValue::Atom(Atom::Int(42))
        );
        assert_eq!(
            k.eval_mil("RETURN dbl(3);").unwrap(),
            MilValue::Atom(Atom::Dbl(3.0))
        );
        assert_eq!(
            k.eval_mil("RETURN sqrt(16.0);").unwrap(),
            MilValue::Atom(Atom::Dbl(4.0))
        );
        assert_eq!(
            k.eval_mil("RETURN abs(-2.5);").unwrap(),
            MilValue::Atom(Atom::Dbl(2.5))
        );
        assert!(k.eval_mil(r#"error("bad");"#).is_err());
    }

    #[test]
    fn program_without_return_yields_nil() {
        let k = kernel();
        assert_eq!(k.eval_mil("VAR x := 3;").unwrap(), MilValue::Nil);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let k = kernel();
        let err = k.eval_mil("VAR x := 1;\nVAR y = 2;").unwrap_err();
        match err {
            MonetError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn undefined_variable_and_unknown_method() {
        let k = kernel();
        assert!(k.eval_mil("RETURN nosuch;").is_err());
        assert!(k
            .eval_mil("VAR b := new(void, int); RETURN b.frobnicate;")
            .is_err());
    }

    #[test]
    fn while_loop_accumulates() {
        let k = kernel();
        let v = k
            .eval_mil(
                r#"
                VAR i := 0;
                VAR sum := 0;
                WHILE (i < 5) {
                    sum := sum + i;
                    i := i + 1;
                }
                RETURN sum;
                "#,
            )
            .unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Int(10)));
    }

    #[test]
    fn while_body_return_propagates() {
        let k = kernel();
        let v = k
            .eval_mil("VAR i := 0; WHILE (true) { i := i + 1; IF (i == 3) { RETURN i; } }")
            .unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Int(3)));
    }

    #[test]
    fn if_else_chain_selects_branch() {
        let k = kernel();
        let prog = |x: i64| {
            format!(
                r#"
                VAR x := {x};
                VAR label := "low";
                IF (x > 10) {{
                    label := "high";
                }} ELSE IF (x > 5) {{
                    label := "mid";
                }} ELSE {{
                    label := "low";
                }}
                RETURN label;
                "#
            )
        };
        for (x, expect) in [(20, "high"), (7, "mid"), (1, "low")] {
            assert_eq!(
                k.eval_mil(&prog(x)).unwrap(),
                MilValue::Atom(Atom::str(expect))
            );
        }
    }

    #[test]
    fn bool_literals_and_non_bit_condition_errors() {
        let k = kernel();
        assert_eq!(
            k.eval_mil("RETURN true;").unwrap(),
            MilValue::Atom(Atom::Bit(true))
        );
        assert_eq!(
            k.eval_mil("RETURN FALSE;").unwrap(),
            MilValue::Atom(Atom::Bit(false))
        );
        let err = k.eval_mil("WHILE (1) { }").unwrap_err();
        assert!(matches!(err, MonetError::TypeMismatch { .. }));
    }

    #[test]
    fn infinite_loop_exhausts_fuel_instead_of_hanging() {
        let k = kernel();
        let budget = ExecBudget::unlimited().with_fuel(10_000);
        // The acceptance criterion: a busy loop must come back with
        // BudgetExhausted, not wedge the kernel thread.
        let err = k.eval_mil_guarded("WHILE (true) { }", &budget).unwrap_err();
        assert_eq!(err, MonetError::BudgetExhausted { fuel: 10_000 });
        let err = k
            .eval_mil_guarded("VAR i := 0; WHILE (true) { i := i + 1; }", &budget)
            .unwrap_err();
        assert_eq!(err, MonetError::BudgetExhausted { fuel: 10_000 });
    }

    #[test]
    fn guarded_run_within_budget_succeeds() {
        let k = kernel();
        let budget = ExecBudget::unlimited().with_fuel(10_000);
        let v = k
            .eval_mil_guarded(
                "VAR i := 0; WHILE (i < 10) { i := i + 1; } RETURN i;",
                &budget,
            )
            .unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Int(10)));
    }

    #[test]
    fn runaway_recursion_is_capped() {
        let k = kernel();
        let err = k
            .eval_mil("PROC f(int x) : int := { RETURN f(x + 1); }; RETURN f(0);")
            .unwrap_err();
        assert!(matches!(err, MonetError::Eval(msg) if msg.contains("depth")));
    }

    #[test]
    fn cancellation_aborts_parallel_evaluation() {
        let k = kernel();
        let token = crate::guard::CancellationToken::new();
        token.cancel();
        let budget = ExecBudget::unlimited().with_cancel(token);
        let err = k
            .eval_mil_guarded("VAR i := 0; WHILE (true) { i := i + 1; }", &budget)
            .unwrap_err();
        assert_eq!(err, MonetError::Interrupted);
    }

    #[test]
    fn fuel_budget_spans_parallel_threads() {
        let k = kernel();
        let budget = ExecBudget::unlimited().with_fuel(500);
        let err = k
            .eval_mil_guarded(
                r#"
                threadcnt(2);
                PARALLEL {
                    WHILE (true) { }
                    WHILE (true) { }
                }
                "#,
                &budget,
            )
            .unwrap_err();
        assert_eq!(err, MonetError::BudgetExhausted { fuel: 500 });
    }

    #[test]
    fn histogram_and_unique_methods() {
        let k = kernel();
        let v = k
            .eval_mil(
                r#"
                VAR b := new(void, str);
                b.insert("a"); b.insert("b"); b.insert("a");
                RETURN b.histogram.find("a");
                "#,
            )
            .unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Int(2)));
        let v = k
            .eval_mil(
                r#"
                VAR b := new(void, str);
                b.insert("a"); b.insert("b"); b.insert("a");
                RETURN b.unique.count;
                "#,
            )
            .unwrap();
        assert_eq!(v, MilValue::Atom(Atom::Int(2)));
    }
}
