//! The kernel: a catalog of named BATs plus MEL-style extension modules.
//!
//! Monet is "an extensible parallel database kernel […] extensible with
//! Abstract Data Types and new index structures". The Cobra paper extends
//! it with HMM, DBN, video-processing and rule modules written in MEL
//! (Monet Extension Language). [`MelModule`] is the Rust equivalent: an
//! extension registers named procedures which become callable from MIL
//! programs, exactly like `hmmOneCall` in the paper's Fig. 4.

use std::collections::HashMap;
use std::sync::Arc;

use cobra_cache::Lru;
use parking_lot::RwLock;

use crate::bat::Bat;
use crate::error::{MonetError, Result};
use crate::guard::ExecBudget;
use crate::index::ColumnIndex;
use crate::metrics::KernelMetrics;
use crate::mil::{self, MilValue};
use crate::sketch::{BatSketch, PlanStats};

/// Entry bound for the head-index cache; the least-recently-used entry is
/// evicted when a new BAT's index would exceed it.
const INDEX_CACHE_CAP: usize = 128;

/// Entry bound for the tail-sketch cache. Sketches are a few dozen bytes
/// each, so the cap exists only to bound id churn.
const SKETCH_CACHE_CAP: usize = 256;

/// A shareable handle to a catalog-resident (or MIL-local) BAT.
pub type BatHandle = Arc<RwLock<Bat>>;

/// An extension module in the spirit of MEL.
///
/// Modules expose procedures that MIL programs call by bare name (e.g.
/// `hmmOneCall(...)`). Procedures receive evaluated [`MilValue`] arguments
/// and the kernel itself, so they can read catalog BATs or spawn parallel
/// work.
pub trait MelModule: Send + Sync {
    /// Module name (used for error reporting and qualified calls).
    fn name(&self) -> &str;

    /// The procedure names this module exports.
    fn procedures(&self) -> Vec<String>;

    /// Invokes an exported procedure.
    fn call(&self, kernel: &Kernel, proc: &str, args: &[MilValue]) -> Result<MilValue>;
}

/// The Monet kernel: named BATs, extension modules, and a MIL entry point.
///
/// The kernel is `Send + Sync`; all catalog state sits behind locks so MIL
/// `PARALLEL` blocks and extension modules can touch it concurrently.
pub struct Kernel {
    bats: RwLock<HashMap<String, BatHandle>>,
    modules: RwLock<HashMap<String, Arc<dyn MelModule>>>,
    /// proc name -> module name, for bare-name resolution from MIL.
    procs: RwLock<HashMap<String, String>>,
    /// Head-column indexes keyed by BAT identity, tagged with the BAT
    /// version they were built at. A mutated BAT bumps its version, so a
    /// stale entry is detected (and rebuilt) on the next lookup. Bounded
    /// by [`INDEX_CACHE_CAP`] with per-entry LRU eviction.
    index_cache: Lru<u64, (u64, Arc<ColumnIndex>)>,
    /// Tail-column cardinality sketches for the plan coster, keyed and
    /// invalidated exactly like the head-index cache.
    sketch_cache: Lru<u64, (u64, Arc<BatSketch>)>,
    /// Observability: pre-resolved handles over this kernel's metric
    /// registry. Snapshot via `kernel.metrics().registry()`.
    metrics: Arc<KernelMetrics>,
}

impl Kernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        Kernel {
            bats: RwLock::new(HashMap::new()),
            modules: RwLock::new(HashMap::new()),
            procs: RwLock::new(HashMap::new()),
            index_cache: Lru::new(INDEX_CACHE_CAP),
            sketch_cache: Lru::new(SKETCH_CACHE_CAP),
            metrics: Arc::new(KernelMetrics::default()),
        }
    }

    /// This kernel's metric handles; snapshot the registry behind them
    /// for a point-in-time view of every series.
    pub fn metrics(&self) -> &Arc<KernelMetrics> {
        &self.metrics
    }

    /// A hash index over `bat`'s head column, cached per (BAT id, version).
    ///
    /// Returns `None` for void heads (positional lookup beats any index)
    /// and empty BATs. Join-heavy MIL programs probing the same catalog BAT
    /// repeatedly pay the build cost once per mutation instead of once per
    /// operator call.
    pub fn head_index(&self, bat: &Bat) -> Option<Arc<ColumnIndex>> {
        bat.head().data()?;
        let key = bat.id();
        if let Some((version, idx)) = self.index_cache.get(&key) {
            if version == bat.version() {
                self.metrics.index_hits.inc();
                return Some(idx);
            }
        }
        self.metrics.index_misses.inc();
        let built = Arc::new(ColumnIndex::build(bat.head())?);
        if self
            .index_cache
            .insert(key, (bat.version(), Arc::clone(&built)))
            .is_some()
        {
            self.metrics.index_evictions.inc();
        }
        Some(built)
    }

    /// Number of live entries in the head-index cache (for tests/metrics).
    pub fn cached_indexes(&self) -> usize {
        self.index_cache.len()
    }

    /// The tail sketch of `bat`, cached per (BAT id, version) — stale
    /// entries (a mutated BAT bumps its version) rebuild on lookup.
    pub fn tail_sketch(&self, bat: &Bat) -> Arc<BatSketch> {
        let key = bat.id();
        if let Some((version, sketch)) = self.sketch_cache.get(&key) {
            if version == bat.version() {
                self.metrics.sketch_hits.inc();
                return sketch;
            }
        }
        self.metrics.sketch_misses.inc();
        let built = Arc::new(BatSketch::build(bat));
        self.sketch_cache
            .insert(key, (bat.version(), Arc::clone(&built)));
        built
    }

    /// Assembles the measured statistics a planning pass runs against:
    /// per-opcode ns/row from the `mil.op_ns`/`mil.op_rows` histograms,
    /// index-cache hit rate, sequential vs parallel morsel throughput,
    /// and tail sketches for each named catalog collection (unknown
    /// names are simply absent, so planning stays total).
    pub fn plan_stats(&self, collections: &[&str]) -> PlanStats {
        let mut stats = PlanStats::default();
        let snap = self.metrics.registry().snapshot();
        let mut rows_per_op: HashMap<String, u64> = HashMap::new();
        for (key, h) in snap.histograms_named("mil.op_rows") {
            if let Some(op) = key.label("op") {
                rows_per_op.insert(op.to_string(), h.sum());
            }
        }
        for (key, h) in snap.histograms_named("mil.op_ns") {
            let Some(op) = key.label("op") else { continue };
            stats.ops_observed += h.count();
            let rows = rows_per_op.get(op).copied().unwrap_or(0);
            if rows > 0 && h.sum() > 0 {
                stats
                    .op_ns_per_row
                    .insert(op.to_string(), h.sum() as f64 / rows as f64);
            }
        }
        let (hits, misses) = (
            self.metrics.index_hits.get(),
            self.metrics.index_misses.get(),
        );
        if hits + misses > 0 {
            stats.index_hit_rate = Some(hits as f64 / (hits + misses) as f64);
        }
        let (seq_ns, seq_rows) = (
            self.metrics.morsel_seq_ns.get(),
            self.metrics.morsel_seq_rows.get(),
        );
        if seq_rows > 0 {
            stats.seq_ns_per_row = Some(seq_ns as f64 / seq_rows as f64);
        }
        let (par_ns, par_rows) = (
            self.metrics.morsel_par_ns.get(),
            self.metrics.morsel_par_rows.get(),
        );
        if par_rows > 0 {
            stats.par_ns_per_row = Some(par_ns as f64 / par_rows as f64);
        }
        for &name in collections {
            if let Ok(handle) = self.bat(name) {
                let sketch = self.tail_sketch(&handle.read());
                stats.sketches.insert(name.to_string(), sketch);
            }
        }
        stats
    }

    /// Registers `bat` in the catalog under `name`. Fails when taken.
    pub fn register_bat(&self, name: &str, bat: Bat) -> Result<BatHandle> {
        let mut bats = self.bats.write();
        if bats.contains_key(name) {
            return Err(MonetError::AlreadyExists(name.to_string()));
        }
        let handle = Arc::new(RwLock::new(bat));
        bats.insert(name.to_string(), Arc::clone(&handle));
        Ok(handle)
    }

    /// Registers or replaces `bat` under `name`.
    pub fn set_bat(&self, name: &str, bat: Bat) -> BatHandle {
        let handle = Arc::new(RwLock::new(bat));
        self.bats
            .write()
            .insert(name.to_string(), Arc::clone(&handle));
        handle
    }

    /// Fetches a catalog BAT by name.
    pub fn bat(&self, name: &str) -> Result<BatHandle> {
        self.bats
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| MonetError::NotFound(format!("BAT '{name}'")))
    }

    /// Removes a catalog BAT, returning it.
    pub fn drop_bat(&self, name: &str) -> Result<BatHandle> {
        self.bats
            .write()
            .remove(name)
            .ok_or_else(|| MonetError::NotFound(format!("BAT '{name}'")))
    }

    /// Names of every catalog BAT, sorted.
    pub fn bat_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.bats.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// True when `name` exists in the catalog.
    pub fn has_bat(&self, name: &str) -> bool {
        self.bats.read().contains_key(name)
    }

    /// Installs an extension module; its procedures become callable from
    /// MIL by bare name. Procedure-name collisions across modules fail.
    pub fn load_module(&self, module: Arc<dyn MelModule>) -> Result<()> {
        let mname = module.name().to_string();
        {
            let mut modules = self.modules.write();
            if modules.contains_key(&mname) {
                return Err(MonetError::AlreadyExists(format!("module '{mname}'")));
            }
            modules.insert(mname.clone(), Arc::clone(&module));
        }
        let mut procs = self.procs.write();
        for p in module.procedures() {
            if let Some(owner) = procs.get(&p) {
                return Err(MonetError::AlreadyExists(format!(
                    "procedure '{p}' (owned by module '{owner}')"
                )));
            }
            procs.insert(p, mname.clone());
        }
        Ok(())
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Result<Arc<dyn MelModule>> {
        self.modules
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| MonetError::NotFound(format!("module '{name}'")))
    }

    /// Resolves a bare procedure name to its owning module.
    pub fn resolve_proc(&self, proc: &str) -> Option<Arc<dyn MelModule>> {
        let owner = self.procs.read().get(proc).cloned()?;
        self.modules.read().get(&owner).cloned()
    }

    /// Calls an extension procedure by bare name.
    pub fn call_proc(&self, proc: &str, args: &[MilValue]) -> Result<MilValue> {
        // Fault site `proc.{name}`: lets tests fail specific extension
        // procedures without touching the module implementation.
        if cobra_faults::is_armed() {
            if let Err(fault) = cobra_faults::fire(&format!("proc.{proc}")) {
                self.metrics.record_failure(&format!("proc.{proc}"));
                return Err(fault.into());
            }
        }
        let module = self
            .resolve_proc(proc)
            .ok_or_else(|| MonetError::NotFound(format!("procedure '{proc}'")))?;
        self.metrics.proc_calls.inc();
        let start = std::time::Instant::now();
        let out = module.call(self, proc, args);
        self.metrics
            .record_proc(proc, start.elapsed().as_nanos() as u64);
        out
    }

    /// Parses and evaluates a MIL program against this kernel, returning
    /// the value of its final `RETURN` (or [`MilValue::Nil`]).
    ///
    /// Runs with no execution limits; see [`Kernel::eval_mil_guarded`].
    pub fn eval_mil(&self, source: &str) -> Result<MilValue> {
        self.metrics.mil_evals.inc();
        let start = std::time::Instant::now();
        let out = mil::eval_program(self, source);
        self.metrics
            .mil_eval_ns
            .record(start.elapsed().as_nanos() as u64);
        out
    }

    /// Like [`Kernel::eval_mil`], but bounded by `budget`: when the
    /// program exceeds its step fuel, wall-clock deadline, or is
    /// cancelled, evaluation stops with [`MonetError::BudgetExhausted`],
    /// [`MonetError::Deadline`], or [`MonetError::Interrupted`].
    pub fn eval_mil_guarded(&self, source: &str, budget: &ExecBudget) -> Result<MilValue> {
        self.metrics.mil_evals.inc();
        let start = std::time::Instant::now();
        let out = mil::eval_program_guarded(self, source, budget);
        self.metrics
            .mil_eval_ns
            .record(start.elapsed().as_nanos() as u64);
        out
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Atom, AtomType};

    struct EchoModule;

    impl MelModule for EchoModule {
        fn name(&self) -> &str {
            "echo"
        }
        fn procedures(&self) -> Vec<String> {
            vec!["echoInt".into(), "echoFail".into()]
        }
        fn call(&self, _k: &Kernel, proc: &str, args: &[MilValue]) -> Result<MilValue> {
            match proc {
                "echoInt" => Ok(args[0].clone()),
                "echoFail" => Err(MonetError::Module {
                    module: "echo".into(),
                    message: "boom".into(),
                }),
                other => Err(MonetError::NotFound(other.to_string())),
            }
        }
    }

    #[test]
    fn catalog_register_get_drop() {
        let k = Kernel::new();
        k.register_bat("x", Bat::new(AtomType::Void, AtomType::Int))
            .unwrap();
        assert!(k.has_bat("x"));
        assert!(k.register_bat("x", Bat::default()).is_err());
        assert_eq!(k.bat_names(), vec!["x".to_string()]);
        k.drop_bat("x").unwrap();
        assert!(k.bat("x").is_err());
    }

    #[test]
    fn set_bat_replaces() {
        let k = Kernel::new();
        k.set_bat("x", Bat::new(AtomType::Void, AtomType::Int));
        k.set_bat(
            "x",
            Bat::from_tail(AtomType::Dbl, [Atom::Dbl(1.0)]).unwrap(),
        );
        assert_eq!(k.bat("x").unwrap().read().len(), 1);
    }

    #[test]
    fn module_procs_resolve_by_bare_name() {
        let k = Kernel::new();
        k.load_module(Arc::new(EchoModule)).unwrap();
        let out = k
            .call_proc("echoInt", &[MilValue::Atom(Atom::Int(7))])
            .unwrap();
        assert_eq!(out, MilValue::Atom(Atom::Int(7)));
        assert!(k.call_proc("missing", &[]).is_err());
        assert!(k.call_proc("echoFail", &[]).is_err());
    }

    #[test]
    fn duplicate_module_load_fails() {
        let k = Kernel::new();
        k.load_module(Arc::new(EchoModule)).unwrap();
        assert!(k.load_module(Arc::new(EchoModule)).is_err());
    }

    #[test]
    fn kernel_is_shareable_across_threads() {
        let k = Arc::new(Kernel::new());
        k.set_bat("shared", Bat::new(AtomType::Void, AtomType::Int));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let k = Arc::clone(&k);
                std::thread::spawn(move || {
                    let bat = k.bat("shared").unwrap();
                    bat.write().append_void(Atom::Int(i)).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(k.bat("shared").unwrap().read().len(), 4);
    }

    #[test]
    fn head_index_is_cached_per_version() {
        let k = Kernel::new();
        let mut b = Bat::new(AtomType::Int, AtomType::Int);
        b.append(Atom::Int(7), Atom::Int(1)).unwrap();
        let first = k.head_index(&b).unwrap();
        let again = k.head_index(&b).unwrap();
        // Same version: the cached Arc is handed back, not a rebuild.
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(k.cached_indexes(), 1);

        // Mutation bumps the version; the stale entry is rebuilt in place.
        b.append(Atom::Int(9), Atom::Int(2)).unwrap();
        let rebuilt = k.head_index(&b).unwrap();
        assert!(!Arc::ptr_eq(&first, &rebuilt));
        assert_eq!(rebuilt.lookup_i64(9), &[1]);
        assert_eq!(k.cached_indexes(), 1);
    }

    #[test]
    fn head_index_evicts_per_entry_not_wholesale() {
        let k = Kernel::new();
        let bats: Vec<Bat> = (0..INDEX_CACHE_CAP as i64 + 16)
            .map(|i| {
                let mut b = Bat::new(AtomType::Int, AtomType::Int);
                b.append(Atom::Int(i), Atom::Int(i)).unwrap();
                b
            })
            .collect();
        for b in &bats {
            k.head_index(b).unwrap();
        }
        // Overflow displaces old entries one at a time instead of clearing
        // the whole cache, so residency stays at (roughly) the cap.
        assert!(k.cached_indexes() <= k.index_cache.capacity());
        assert!(k.cached_indexes() > INDEX_CACHE_CAP / 2);
        assert!(k.metrics.index_evictions.get() > 0);
        // The most recent BAT is still resident: probing it again is a hit.
        let hits_before = k.metrics.index_hits.get();
        k.head_index(bats.last().unwrap()).unwrap();
        assert_eq!(k.metrics.index_hits.get(), hits_before + 1);
    }

    #[test]
    fn head_index_skips_void_heads() {
        let k = Kernel::new();
        let b = Bat::from_tail(AtomType::Int, (0..3).map(Atom::Int)).unwrap();
        assert!(k.head_index(&b).is_none());
        assert_eq!(k.cached_indexes(), 0);
    }
}
