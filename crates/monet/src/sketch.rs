//! Per-BAT cardinality sketches and the measured-statistics bundle the
//! cost-based planner consumes.
//!
//! A [`BatSketch`] is a cheap summary of one BAT's tail column — row
//! count, a distinct-count estimate, and min/max for numeric tails —
//! built lazily and cached by the kernel per `(bat id, version)`, the
//! same discipline as the head-index cache. [`PlanStats`] packages the
//! sketches together with the measured per-opcode costs and cache hit
//! rates already flowing through the metrics registry, so the logical
//! layer (`f1-moa`) can cost candidate plans without depending on the
//! observability crate directly.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::bat::{Bat, ColumnData};
use crate::value::Atom;

/// Upper bound on the rows examined for a distinct-count estimate.
/// Beyond it the column is stride-sampled; min/max always scan fully
/// (a single memory-bandwidth pass, paid once per BAT version).
const SKETCH_SAMPLE: usize = 4096;

/// A summary of one BAT's tail column for selectivity estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct BatSketch {
    /// Row count at build time.
    pub rows: usize,
    /// Estimated number of distinct tail values (exact for string tails
    /// — the dictionary length is free — and for columns within the
    /// sample bound; otherwise a smoothed-jackknife scale-up).
    pub tail_distinct: usize,
    /// Smallest numeric tail value (widened to f64; NaNs ignored).
    pub tail_min: Option<f64>,
    /// Largest numeric tail value (widened to f64; NaNs ignored).
    pub tail_max: Option<f64>,
}

/// Estimates the distinct count of `rows` values from a stride sample.
///
/// Uses the first-order jackknife: `d + f1 * (rows - n) / n`, where `d`
/// distinct values were seen in a sample of `n` and `f1` of them exactly
/// once. With no singletons the domain is saturated (estimate `d`); with
/// all singletons the column is likely a key (estimate approaches
/// `rows`). Clamped to `[d, rows]`.
fn estimate_distinct(rows: usize, sample_n: usize, d: usize, f1: usize) -> usize {
    if rows == 0 || sample_n == 0 {
        return 0;
    }
    if sample_n >= rows {
        return d;
    }
    let est = d as f64 + f1 as f64 * (rows - sample_n) as f64 / sample_n as f64;
    (est.round() as usize).clamp(d, rows)
}

/// Distinct estimate over hashable sample keys drawn with `stride`.
fn sampled_distinct<K: std::hash::Hash + Eq, T: Copy>(vals: &[T], key: impl Fn(T) -> K) -> usize {
    let rows = vals.len();
    let stride = rows.div_ceil(SKETCH_SAMPLE).max(1);
    let mut counts: HashMap<K, u32> = HashMap::with_capacity(SKETCH_SAMPLE.min(rows));
    let mut sample_n = 0usize;
    let mut i = 0usize;
    while i < rows {
        *counts.entry(key(vals[i])).or_insert(0) += 1;
        sample_n += 1;
        i += stride;
    }
    let d = counts.len();
    let f1 = counts.values().filter(|&&c| c == 1).count();
    estimate_distinct(rows, sample_n, d, f1)
}

/// Min/max over a slice widened to f64, skipping NaNs.
fn min_max(vals: impl Iterator<Item = f64>) -> (Option<f64>, Option<f64>) {
    let mut min = None;
    let mut max = None;
    for v in vals {
        if v.is_nan() {
            continue;
        }
        min = Some(min.map_or(v, |m: f64| m.min(v)));
        max = Some(max.map_or(v, |m: f64| m.max(v)));
    }
    (min, max)
}

impl BatSketch {
    /// Builds the sketch of `bat`'s tail column.
    pub fn build(bat: &Bat) -> BatSketch {
        let rows = bat.len();
        let tail = bat.tail();
        let (tail_distinct, tail_min, tail_max) = match tail.data() {
            // Void tails are dense oid runs: every value distinct, the
            // bounds are arithmetic.
            None => {
                let (base, len) = tail.void_run().unwrap_or((0, rows));
                if len == 0 {
                    (0, None, None)
                } else {
                    (len, Some(base as f64), Some((base + len as u64 - 1) as f64))
                }
            }
            Some(ColumnData::Oid(v)) => {
                let (min, max) = min_max(v.iter().map(|&x| x as f64));
                (sampled_distinct(v, |x| x), min, max)
            }
            Some(ColumnData::Int(v)) => {
                let (min, max) = min_max(v.iter().map(|&x| x as f64));
                (sampled_distinct(v, |x| x), min, max)
            }
            Some(ColumnData::Dbl(v)) => {
                let (min, max) = min_max(v.iter().copied());
                // Keyed by bit pattern, matching Atom total-order equality.
                (sampled_distinct(v, f64::to_bits), min, max)
            }
            // The dictionary length is the exact distinct count, free.
            Some(ColumnData::Str(s)) => (s.dict_len(), None, None),
            Some(ColumnData::Bit(v)) => {
                let mut seen = HashSet::new();
                for &b in v.iter().take(SKETCH_SAMPLE) {
                    seen.insert(b);
                }
                (seen.len(), None, None)
            }
        };
        BatSketch {
            rows,
            tail_distinct,
            tail_min,
            tail_max,
        }
    }

    /// Estimated fraction of rows an equality selection keeps.
    pub fn eq_selectivity(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        1.0 / self.tail_distinct.max(1) as f64
    }

    /// Estimated fraction of rows an inclusive range selection keeps,
    /// from the span the probe covers of the sketched [min, max].
    /// Returns 0.5 (the uninformed default) when bounds are unknown.
    pub fn range_selectivity(&self, lo: &Atom, hi: &Atom) -> f64 {
        let (Some(min), Some(max)) = (self.tail_min, self.tail_max) else {
            return 0.5;
        };
        let (Some(lo), Some(hi)) = (atom_as_f64(lo), atom_as_f64(hi)) else {
            return 0.5;
        };
        if self.rows == 0 || lo > hi || hi < min || lo > max {
            return 0.0;
        }
        let span = max - min;
        if span <= 0.0 {
            return 1.0; // single-valued column fully inside the probe
        }
        ((hi.min(max) - lo.max(min)) / span).clamp(0.0, 1.0)
    }
}

/// Widens a numeric atom to f64 for range estimation.
fn atom_as_f64(a: &Atom) -> Option<f64> {
    match a {
        Atom::Int(v) => Some(*v as f64),
        Atom::Dbl(v) => Some(*v),
        Atom::Oid(v) => Some(*v as f64),
        _ => None,
    }
}

/// The measured statistics a planning pass runs against: per-opcode
/// costs, cache behaviour, morsel throughput, and per-collection
/// sketches. `PlanStats::default()` is the cold system — everything
/// unmeasured — under which the planner must degrade to the fixed
/// rewrite's behaviour.
#[derive(Debug, Clone, Default)]
pub struct PlanStats {
    /// Measured nanoseconds per input row per MIL opcode
    /// (`mil.op_ns{op}.sum / mil.op_rows{op}.sum`); absent = unmeasured.
    pub op_ns_per_row: HashMap<String, f64>,
    /// Head-index cache hit rate in `[0, 1]`; `None` before any probe.
    pub index_hit_rate: Option<f64>,
    /// Measured ns/row of sequential operator runs; `None` when unmeasured.
    pub seq_ns_per_row: Option<f64>,
    /// Measured ns/row of parallel operator runs; `None` when unmeasured.
    pub par_ns_per_row: Option<f64>,
    /// Tail sketches keyed by catalog BAT name.
    pub sketches: HashMap<String, Arc<BatSketch>>,
    /// Total MIL method invocations observed when these stats were read
    /// (drives the plan-cache generation refresh policy).
    pub ops_observed: u64,
}

impl PlanStats {
    /// The sketch for collection `name`, if one was gathered.
    pub fn sketch(&self, name: &str) -> Option<&BatSketch> {
        self.sketches.get(name).map(Arc::as_ref)
    }

    /// Measured ns/row for `op`, when available.
    pub fn op_cost(&self, op: &str) -> Option<f64> {
        self.op_ns_per_row.get(op).copied()
    }

    /// True when parallel runs are measured to beat sequential ones on
    /// a per-row basis. Unmeasured (either side) is `false`: parallelism
    /// is only chosen when it has been observed to win.
    pub fn parallel_measured_faster(&self) -> bool {
        match (self.seq_ns_per_row, self.par_ns_per_row) {
            (Some(seq), Some(par)) => par < seq,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AtomType;

    #[test]
    fn string_tail_distinct_is_exact_via_dictionary() {
        let b = Bat::from_tail(
            AtomType::Str,
            ["a", "b", "a", "c", "a", "b"].into_iter().map(Atom::str),
        )
        .unwrap();
        let s = BatSketch::build(&b);
        assert_eq!(s.rows, 6);
        assert_eq!(s.tail_distinct, 3);
        assert!((s.eq_selectivity() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.tail_min, None);
    }

    #[test]
    fn small_int_tail_is_exact_with_bounds() {
        let b = Bat::from_tail(AtomType::Int, [5, 1, 5, 9, 1].map(Atom::Int)).unwrap();
        let s = BatSketch::build(&b);
        assert_eq!(s.tail_distinct, 3);
        assert_eq!(s.tail_min, Some(1.0));
        assert_eq!(s.tail_max, Some(9.0));
        // [1, 5] covers half of [1, 9].
        let sel = s.range_selectivity(&Atom::Int(1), &Atom::Int(5));
        assert!((sel - 0.5).abs() < 1e-12, "{sel}");
        // Disjoint probes keep nothing.
        assert_eq!(s.range_selectivity(&Atom::Int(20), &Atom::Int(30)), 0.0);
    }

    #[test]
    fn large_key_column_estimates_near_row_count() {
        let n = 100_000i64;
        let b = Bat::from_tail(AtomType::Int, (0..n).map(Atom::Int)).unwrap();
        let s = BatSketch::build(&b);
        // All sampled values are singletons, so the jackknife scales the
        // estimate to the full row count.
        assert!(
            s.tail_distinct > n as usize / 2,
            "distinct {} of {n}",
            s.tail_distinct
        );
        assert_eq!(s.tail_min, Some(0.0));
        assert_eq!(s.tail_max, Some((n - 1) as f64));
    }

    #[test]
    fn large_low_cardinality_column_stays_small() {
        let b = Bat::from_tail(AtomType::Int, (0..100_000).map(|i| Atom::Int(i % 7))).unwrap();
        let s = BatSketch::build(&b);
        assert!(s.tail_distinct <= 14, "distinct {}", s.tail_distinct);
    }

    #[test]
    fn void_tail_is_a_dense_key() {
        // A mirror's tail is the dense void head run.
        let v = Bat::from_tail(AtomType::Int, (0..10).map(Atom::Int)).unwrap();
        let m = v.mirror();
        let s = BatSketch::build(&m);
        assert_eq!(s.rows, 10);
        assert_eq!(s.tail_distinct, 10);
        assert_eq!(s.tail_min, Some(0.0));
        assert_eq!(s.tail_max, Some(9.0));
    }

    #[test]
    fn nan_tails_do_not_poison_bounds() {
        let b = Bat::from_tail(AtomType::Dbl, [1.0, f64::NAN, 3.0].map(Atom::Dbl)).unwrap();
        let s = BatSketch::build(&b);
        assert_eq!(s.tail_min, Some(1.0));
        assert_eq!(s.tail_max, Some(3.0));
    }

    #[test]
    fn empty_bat_sketch_is_zeroed() {
        let b = Bat::new(AtomType::Void, AtomType::Int);
        let s = BatSketch::build(&b);
        assert_eq!(s.rows, 0);
        assert_eq!(s.eq_selectivity(), 0.0);
    }

    #[test]
    fn cold_plan_stats_choose_no_parallelism() {
        let stats = PlanStats::default();
        assert!(!stats.parallel_measured_faster());
        assert!(stats.op_cost("select").is_none());
    }
}
