//! # f1-monet — a Monet-style binary-relational kernel
//!
//! This crate is the *physical level* of the Cobra VDBMS reproduction. It
//! re-implements, in safe Rust, the subset of the Monet database kernel
//! (Boncz & Kersten, 1995) that the paper relies on:
//!
//! * **BATs** — Binary Association Tables, append-friendly two-column
//!   main-memory tables whose head is frequently a dense *void* column
//!   ([`bat::Bat`], [`bat::Column`]).
//! * **Relational operators** over BATs: selections, hash joins, semijoins,
//!   grouping, aggregation and sorting ([`ops`]).
//! * A **kernel catalog** of named BATs plus MEL-style *extension modules*
//!   that register foreign procedures callable from MIL ([`kernel`]).
//! * A small **MIL interpreter** (Monet Interface Language) so that the
//!   logical layer can compile object-algebra plans into executable MIL
//!   programs exactly as Fig. 4 and Fig. 5b of the paper show ([`mil`]).
//! * A `threadcnt`-style **parallel executor** used by the HMM and DBN
//!   extensions to fan out expensive inference calls ([`parallel`]).
//!
//! The kernel is deliberately main-memory only — Monet itself was a
//! main-memory system and every experiment in the paper fits comfortably
//! in RAM.
//!
//! ```
//! use f1_monet::prelude::*;
//!
//! let kernel = Kernel::new();
//! let mut speeds = Bat::new(AtomType::Void, AtomType::Dbl);
//! for v in [312.0, 318.5, 305.2] {
//!     speeds.append_void(Atom::Dbl(v)).unwrap();
//! }
//! kernel.register_bat("speeds", speeds).unwrap();
//! let out = kernel
//!     .eval_mil("VAR m := bat(\"speeds\").max; RETURN m;")
//!     .unwrap();
//! assert_eq!(out, MilValue::Atom(Atom::Dbl(318.5)));
//! ```

pub mod bat;
pub mod error;
pub mod guard;
pub mod index;
pub mod kernel;
pub mod metrics;
pub mod mil;
pub mod ops;
pub mod parallel;
pub mod sketch;
pub mod value;

/// Convenient glob-import of the kernel's most used types.
pub mod prelude {
    pub use crate::bat::{Bat, Column, ColumnData, StrColumn};
    pub use crate::error::{MonetError, Result};
    pub use crate::guard::{CancellationToken, ExecBudget};
    pub use crate::index::ColumnIndex;
    pub use crate::kernel::{Kernel, MelModule};
    pub use crate::metrics::KernelMetrics;
    pub use crate::mil::MilValue;
    pub use crate::ops::OpCtx;
    pub use crate::value::{Atom, AtomType};
}

pub use bat::{Bat, Column, ColumnData, StrColumn};
pub use error::{MonetError, Result};
pub use guard::{CancellationToken, ExecBudget, ExecGuard};
pub use index::ColumnIndex;
pub use kernel::{Kernel, MelModule};
pub use metrics::KernelMetrics;
pub use mil::MilValue;
pub use ops::OpCtx;
pub use sketch::{BatSketch, PlanStats};
pub use value::{Atom, AtomType};
