//! Atom values — the scalar types stored in BAT columns.
//!
//! Monet's binary relational model stores pairs of *atoms*. We support the
//! atom types the paper's MIL fragments use (`oid`, `int`, `dbl`, `str`,
//! `bit`) plus the *void* pseudo-type for dense, materialization-free object
//! identifier columns.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{MonetError, Result};

/// The type tag of an [`Atom`] (or of a virtual void column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AtomType {
    /// Dense object identifiers that are never materialized; only valid as a
    /// column type, there is no `Atom::Void` value.
    Void,
    /// Object identifier.
    Oid,
    /// 64-bit signed integer (`int` in MIL).
    Int,
    /// 64-bit float (`dbl` in MIL).
    Dbl,
    /// String (`str` in MIL).
    Str,
    /// Boolean (`bit` in MIL).
    Bit,
}

impl AtomType {
    /// Parses a MIL type name (`void`, `oid`, `int`, `dbl`, `str`, `bit`).
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "void" => Ok(AtomType::Void),
            "oid" => Ok(AtomType::Oid),
            "int" => Ok(AtomType::Int),
            "dbl" | "flt" => Ok(AtomType::Dbl),
            "str" => Ok(AtomType::Str),
            "bit" => Ok(AtomType::Bit),
            other => Err(MonetError::Parse {
                line: 0,
                message: format!("unknown atom type '{other}'"),
            }),
        }
    }

    /// MIL spelling of the type.
    pub fn name(self) -> &'static str {
        match self {
            AtomType::Void => "void",
            AtomType::Oid => "oid",
            AtomType::Int => "int",
            AtomType::Dbl => "dbl",
            AtomType::Str => "str",
            AtomType::Bit => "bit",
        }
    }
}

impl fmt::Display for AtomType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar value stored in a BAT cell.
///
/// `Dbl` atoms are compared and hashed through their IEEE-754 bit pattern
/// (`total_cmp` / `to_bits`), so atoms form a proper `Eq + Ord + Hash`
/// universe and can key hash joins. NaNs are therefore *equal to
/// themselves*, which is exactly what a database needs for grouping.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum Atom {
    /// Object identifier.
    Oid(u64),
    /// Integer.
    Int(i64),
    /// Double-precision float.
    Dbl(f64),
    /// String (cheaply clonable).
    Str(Arc<str>),
    /// Boolean.
    Bit(bool),
}

impl Atom {
    /// Convenience constructor for string atoms.
    pub fn str(s: impl AsRef<str>) -> Self {
        Atom::Str(Arc::from(s.as_ref()))
    }

    /// The type tag of this atom.
    pub fn atom_type(&self) -> AtomType {
        match self {
            Atom::Oid(_) => AtomType::Oid,
            Atom::Int(_) => AtomType::Int,
            Atom::Dbl(_) => AtomType::Dbl,
            Atom::Str(_) => AtomType::Str,
            Atom::Bit(_) => AtomType::Bit,
        }
    }

    /// Extracts an `oid`, failing with a typed error otherwise.
    pub fn as_oid(&self) -> Result<u64> {
        match self {
            Atom::Oid(v) => Ok(*v),
            other => Err(type_err("oid", other)),
        }
    }

    /// Extracts an `int`, failing with a typed error otherwise.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Atom::Int(v) => Ok(*v),
            other => Err(type_err("int", other)),
        }
    }

    /// Extracts a `dbl`; integers are widened for convenience, mirroring
    /// MIL's implicit numeric coercion.
    pub fn as_dbl(&self) -> Result<f64> {
        match self {
            Atom::Dbl(v) => Ok(*v),
            Atom::Int(v) => Ok(*v as f64),
            other => Err(type_err("dbl", other)),
        }
    }

    /// Extracts a `str`, failing with a typed error otherwise.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Atom::Str(v) => Ok(v),
            other => Err(type_err("str", other)),
        }
    }

    /// Extracts a `bit`, failing with a typed error otherwise.
    pub fn as_bit(&self) -> Result<bool> {
        match self {
            Atom::Bit(v) => Ok(*v),
            other => Err(type_err("bit", other)),
        }
    }

    /// True when both atoms are numeric (`int` or `dbl`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Atom::Int(_) | Atom::Dbl(_))
    }
}

fn type_err(expected: &str, found: &Atom) -> MonetError {
    MonetError::TypeMismatch {
        expected: expected.to_string(),
        found: format!("{} ({})", found.atom_type(), found),
    }
}

impl PartialEq for Atom {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Atom {}

impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Atom {
    fn cmp(&self, other: &Self) -> Ordering {
        use Atom::*;
        match (self, other) {
            (Oid(a), Oid(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Dbl(a), Dbl(b)) => a.total_cmp(b),
            // Mixed numerics compare by value so MIL arithmetic stays sane.
            (Int(a), Dbl(b)) => (*a as f64).total_cmp(b),
            (Dbl(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bit(a), Bit(b)) => a.cmp(b),
            // Cross-type ordering falls back to the type-tag order; it only
            // matters for deterministic sorting of heterogeneous columns,
            // which well-typed BATs never produce.
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

fn rank(a: &Atom) -> u8 {
    match a {
        Atom::Oid(_) => 0,
        Atom::Int(_) => 1,
        Atom::Dbl(_) => 2,
        Atom::Str(_) => 3,
        Atom::Bit(_) => 4,
    }
}

impl Hash for Atom {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Atom::Oid(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            // Int and Dbl that compare equal must hash equally: hash the
            // f64 bit pattern of the numeric value for both.
            Atom::Int(v) => {
                1u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Atom::Dbl(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Atom::Str(v) => {
                3u8.hash(state);
                v.hash(state);
            }
            Atom::Bit(v) => {
                4u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Oid(v) => write!(f, "{v}@0"),
            Atom::Int(v) => write!(f, "{v}"),
            Atom::Dbl(v) => write!(f, "{v}"),
            Atom::Str(v) => write!(f, "\"{v}\""),
            Atom::Bit(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for Atom {
    fn from(v: u64) -> Self {
        Atom::Oid(v)
    }
}
impl From<i64> for Atom {
    fn from(v: i64) -> Self {
        Atom::Int(v)
    }
}
impl From<f64> for Atom {
    fn from(v: f64) -> Self {
        Atom::Dbl(v)
    }
}
impl From<&str> for Atom {
    fn from(v: &str) -> Self {
        Atom::str(v)
    }
}
impl From<bool> for Atom {
    fn from(v: bool) -> Self {
        Atom::Bit(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(a: &Atom) -> u64 {
        let mut h = DefaultHasher::new();
        a.hash(&mut h);
        h.finish()
    }

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Atom::Int(3).as_int().unwrap(), 3);
        assert!(Atom::Int(3).as_str().is_err());
        assert_eq!(Atom::Int(3).as_dbl().unwrap(), 3.0);
        assert_eq!(Atom::Dbl(2.5).as_dbl().unwrap(), 2.5);
        assert!(Atom::str("x").as_bit().is_err());
        assert!(Atom::Bit(true).as_bit().unwrap());
        assert_eq!(Atom::Oid(7).as_oid().unwrap(), 7);
    }

    #[test]
    fn mixed_numeric_equality_is_consistent_with_hash() {
        let a = Atom::Int(4);
        let b = Atom::Dbl(4.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn nan_equals_itself_for_grouping() {
        let nan = Atom::Dbl(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
    }

    #[test]
    fn total_order_on_doubles() {
        let mut v = vec![Atom::Dbl(1.0), Atom::Dbl(-1.0), Atom::Dbl(0.0)];
        v.sort();
        assert_eq!(v, vec![Atom::Dbl(-1.0), Atom::Dbl(0.0), Atom::Dbl(1.0)]);
    }

    #[test]
    fn type_parsing_round_trips() {
        for t in [
            AtomType::Void,
            AtomType::Oid,
            AtomType::Int,
            AtomType::Dbl,
            AtomType::Str,
            AtomType::Bit,
        ] {
            assert_eq!(AtomType::parse(t.name()).unwrap(), t);
        }
        assert!(AtomType::parse("blob").is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Atom::Oid(3).to_string(), "3@0");
        assert_eq!(Atom::str("pit").to_string(), "\"pit\"");
        assert_eq!(Atom::Int(-2).to_string(), "-2");
    }
}
