//! Error type shared by every kernel component.

use std::fmt;

/// Result alias used throughout the kernel.
pub type Result<T> = std::result::Result<T, MonetError>;

/// Errors raised by the BAT kernel, the relational operators and the MIL
/// interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum MonetError {
    /// An operation received an atom of the wrong type.
    TypeMismatch {
        /// What the operation required.
        expected: String,
        /// What it actually got.
        found: String,
    },
    /// A named BAT, variable, procedure or module does not exist.
    NotFound(String),
    /// A name is already taken in the catalog.
    AlreadyExists(String),
    /// A positional access was out of range.
    OutOfRange {
        /// Requested position.
        index: usize,
        /// Length of the addressed container.
        len: usize,
    },
    /// The MIL source failed to lex or parse.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A MIL runtime error (wrong arity, bad operand, division by zero...).
    Eval(String),
    /// An extension-module procedure failed.
    Module {
        /// Module that raised the error.
        module: String,
        /// Underlying description.
        message: String,
    },
    /// An operation that requires a non-empty BAT was applied to an empty one.
    EmptyBat(String),
    /// The evaluation was cancelled through its [`CancellationToken`]
    /// (see [`crate::guard`]).
    ///
    /// [`CancellationToken`]: crate::guard::CancellationToken
    Interrupted,
    /// The evaluation ran out of its step budget (see
    /// [`crate::guard::ExecBudget::with_fuel`]).
    BudgetExhausted {
        /// The fuel budget the evaluation started with.
        fuel: u64,
    },
    /// The evaluation exceeded its wall-clock deadline (see
    /// [`crate::guard::ExecBudget::with_deadline`]).
    Deadline,
    /// A fault-injection site fired (testing only; see `cobra-faults`).
    Fault {
        /// The injection site that failed (e.g. `"bat.insert"`).
        site: String,
        /// Whether the injected fault models a transient condition.
        transient: bool,
    },
    /// A grouped aggregation met a head value with no entry in the
    /// grouping BAT, so the row has no group to aggregate into.
    GroupMismatch {
        /// The ungrouped head value.
        head: String,
    },
    /// A worker thread of the parallel executor panicked; the panic is
    /// captured and surfaced as an error instead of aborting the caller.
    WorkerPanic(String),
}

impl fmt::Display for MonetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonetError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            MonetError::NotFound(name) => write!(f, "not found: {name}"),
            MonetError::AlreadyExists(name) => write!(f, "already exists: {name}"),
            MonetError::OutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            MonetError::Parse { line, message } => {
                write!(f, "MIL parse error at line {line}: {message}")
            }
            MonetError::Eval(msg) => write!(f, "MIL evaluation error: {msg}"),
            MonetError::Module { module, message } => {
                write!(f, "extension module '{module}' failed: {message}")
            }
            MonetError::EmptyBat(op) => write!(f, "operation '{op}' requires a non-empty BAT"),
            MonetError::Interrupted => write!(f, "evaluation interrupted by cancellation"),
            MonetError::BudgetExhausted { fuel } => {
                write!(f, "evaluation exhausted its step budget of {fuel}")
            }
            MonetError::Deadline => write!(f, "evaluation exceeded its deadline"),
            MonetError::Fault { site, transient } => {
                write!(
                    f,
                    "injected {} fault at site '{site}'",
                    if *transient { "transient" } else { "permanent" }
                )
            }
            MonetError::GroupMismatch { head } => {
                write!(f, "grouped aggregate: head {head} has no group")
            }
            MonetError::WorkerPanic(msg) => {
                write!(f, "parallel worker panicked: {msg}")
            }
        }
    }
}

impl From<cobra_faults::FaultError> for MonetError {
    fn from(e: cobra_faults::FaultError) -> Self {
        MonetError::Fault {
            site: e.site,
            transient: e.transient,
        }
    }
}

impl std::error::Error for MonetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_every_variant() {
        let cases: Vec<(MonetError, &str)> = vec![
            (
                MonetError::TypeMismatch {
                    expected: "int".into(),
                    found: "str".into(),
                },
                "type mismatch: expected int, found str",
            ),
            (MonetError::NotFound("x".into()), "not found: x"),
            (MonetError::AlreadyExists("x".into()), "already exists: x"),
            (
                MonetError::OutOfRange { index: 5, len: 3 },
                "index 5 out of range for length 3",
            ),
            (
                MonetError::Parse {
                    line: 2,
                    message: "bad token".into(),
                },
                "MIL parse error at line 2: bad token",
            ),
            (
                MonetError::Eval("boom".into()),
                "MIL evaluation error: boom",
            ),
            (
                MonetError::Module {
                    module: "hmm".into(),
                    message: "no model".into(),
                },
                "extension module 'hmm' failed: no model",
            ),
            (
                MonetError::EmptyBat("max".into()),
                "operation 'max' requires a non-empty BAT",
            ),
            (
                MonetError::Interrupted,
                "evaluation interrupted by cancellation",
            ),
            (
                MonetError::BudgetExhausted { fuel: 100 },
                "evaluation exhausted its step budget of 100",
            ),
            (MonetError::Deadline, "evaluation exceeded its deadline"),
            (
                MonetError::Fault {
                    site: "bat.insert".into(),
                    transient: true,
                },
                "injected transient fault at site 'bat.insert'",
            ),
            (
                MonetError::GroupMismatch { head: "7@0".into() },
                "grouped aggregate: head 7@0 has no group",
            ),
            (
                MonetError::WorkerPanic("boom".into()),
                "parallel worker panicked: boom",
            ),
        ];
        for (err, expect) in cases {
            assert_eq!(err.to_string(), expect);
        }
    }
}
