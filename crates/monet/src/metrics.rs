//! Kernel observability: pre-resolved metric handles over a
//! [`cobra_obs::Registry`].
//!
//! Hot paths (index-cache probes, morsel dispatch) must not pay a
//! registry lookup per event, so the kernel resolves its core series
//! once at construction into this struct; recording is then a single
//! relaxed atomic add. Series with a genuine label dimension (per-opcode
//! timings, per-procedure timings, per-site failure counts) go through
//! the registry on demand — those events are orders of magnitude rarer
//! than the per-row work they measure.

use std::sync::Arc;

use cobra_obs::{Counter, Gauge, Histogram, Registry};

/// Pre-resolved metric handles for one [`crate::kernel::Kernel`].
#[derive(Debug)]
pub struct KernelMetrics {
    registry: Arc<Registry>,
    /// Head-index cache probes that found a current index.
    pub index_hits: Arc<Counter>,
    /// Head-index cache probes that had to (re)build.
    pub index_misses: Arc<Counter>,
    /// Head-index cache entries displaced by LRU eviction.
    pub index_evictions: Arc<Counter>,
    /// Extension-procedure dispatches.
    pub proc_calls: Arc<Counter>,
    /// MIL programs evaluated.
    pub mil_evals: Arc<Counter>,
    /// Wall time of whole MIL evaluations, nanoseconds.
    pub mil_eval_ns: Arc<Histogram>,
    /// Interpreter steps charged across all evaluations.
    pub mil_ticks: Arc<Counter>,
    /// Fuel consumed by fuel-limited evaluations.
    pub mil_fuel_used: Arc<Counter>,
    /// `PARALLEL` blocks executed.
    pub parallel_blocks: Arc<Counter>,
    /// Operator invocations that stayed on the calling thread.
    pub morsel_runs_seq: Arc<Counter>,
    /// Operator invocations fanned out over worker threads.
    pub morsel_runs_par: Arc<Counter>,
    /// Morsels dispatched by parallel operator runs.
    pub morsels: Arc<Counter>,
    /// Rows covered by morsel-driven operator runs.
    pub morsel_rows: Arc<Counter>,
    /// Wall nanoseconds spent in sequential operator runs.
    pub morsel_seq_ns: Arc<Counter>,
    /// Rows covered by sequential operator runs.
    pub morsel_seq_rows: Arc<Counter>,
    /// Wall nanoseconds spent in parallel (fanned-out) operator runs.
    pub morsel_par_ns: Arc<Counter>,
    /// Rows covered by parallel operator runs.
    pub morsel_par_rows: Arc<Counter>,
    /// Tail-sketch cache probes that found a current sketch.
    pub sketch_hits: Arc<Counter>,
    /// Tail-sketch cache probes that had to (re)build.
    pub sketch_misses: Arc<Counter>,
    /// Thread count most recently requested from an operator context.
    pub threads: Arc<Gauge>,
}

impl KernelMetrics {
    /// Resolves the kernel's core series in `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        KernelMetrics {
            index_hits: registry.counter("kernel.index_cache", &[("result", "hit")]),
            index_misses: registry.counter("kernel.index_cache", &[("result", "miss")]),
            index_evictions: registry.counter("kernel.index_cache", &[("result", "eviction")]),
            proc_calls: registry.counter("kernel.proc_calls", &[]),
            mil_evals: registry.counter("mil.evals", &[]),
            mil_eval_ns: registry.histogram("mil.eval_ns", &[]),
            mil_ticks: registry.counter("mil.ticks", &[]),
            mil_fuel_used: registry.counter("mil.fuel_used", &[]),
            parallel_blocks: registry.counter("mil.parallel_blocks", &[]),
            morsel_runs_seq: registry.counter("kernel.morsel_runs", &[("mode", "sequential")]),
            morsel_runs_par: registry.counter("kernel.morsel_runs", &[("mode", "parallel")]),
            morsels: registry.counter("kernel.morsels", &[]),
            morsel_rows: registry.counter("kernel.morsel_rows", &[]),
            morsel_seq_ns: registry.counter("kernel.morsel_ns", &[("mode", "sequential")]),
            morsel_seq_rows: registry.counter("kernel.morsel_mode_rows", &[("mode", "sequential")]),
            morsel_par_ns: registry.counter("kernel.morsel_ns", &[("mode", "parallel")]),
            morsel_par_rows: registry.counter("kernel.morsel_mode_rows", &[("mode", "parallel")]),
            sketch_hits: registry.counter("kernel.sketch_cache", &[("result", "hit")]),
            sketch_misses: registry.counter("kernel.sketch_cache", &[("result", "miss")]),
            threads: registry.gauge("kernel.threads", &[]),
            registry,
        }
    }

    /// The backing registry (for snapshots and ad-hoc series).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records one MIL BAT-method invocation (`mil.op_ns{op=...}`).
    pub fn record_op(&self, op: &str, ns: u64) {
        self.registry
            .histogram("mil.op_ns", &[("op", op)])
            .record(ns);
    }

    /// Records one MIL BAT-method invocation together with the receiver's
    /// row count, so `op_ns.sum() / op_rows.sum()` yields a measured
    /// nanoseconds-per-row figure per opcode for the plan coster.
    pub fn record_op_sized(&self, op: &str, ns: u64, rows: u64) {
        self.record_op(op, ns);
        self.registry
            .histogram("mil.op_rows", &[("op", op)])
            .record(rows);
    }

    /// Records one extension-procedure call (`kernel.proc_ns{proc=...}`).
    pub fn record_proc(&self, proc: &str, ns: u64) {
        self.registry
            .histogram("kernel.proc_ns", &[("proc", proc)])
            .record(ns);
    }

    /// Records an injected-fault failure at `site`
    /// (`faults.failures{site=...}`).
    pub fn record_failure(&self, site: &str) {
        self.registry
            .counter("faults.failures", &[("site", site)])
            .inc();
    }
}

impl Default for KernelMetrics {
    fn default() -> Self {
        KernelMetrics::new(Arc::new(Registry::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_series_appear_in_snapshots() {
        let m = KernelMetrics::default();
        m.index_hits.inc();
        m.index_misses.add(2);
        m.record_op("join", 1500);
        m.record_failure("bat.join");
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter("kernel.index_cache", &[("result", "hit")]), 1);
        assert_eq!(snap.counter("kernel.index_cache", &[("result", "miss")]), 2);
        assert_eq!(snap.counter("faults.failures", &[("site", "bat.join")]), 1);
        let op = snap.histogram("mil.op_ns", &[("op", "join")]).unwrap();
        assert_eq!(op.count(), 1);
        assert_eq!(op.sum(), 1500);
    }
}
