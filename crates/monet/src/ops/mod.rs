//! Relational operators over BATs.
//!
//! These are the algebra primitives that MIL programs (and therefore the
//! Moa logical layer) are compiled into: selections, hash joins, semijoins,
//! grouping, aggregation and sorting. All operators are pure — they return
//! fresh BATs and never mutate their inputs, which keeps the kernel easy to
//! parallelize.
//!
//! The implementations are **vectorized**: each operator dispatches on the
//! column type once per call, then runs tight loops over typed slices
//! ([`crate::bat::ColumnData`]), producing selection vectors of row
//! positions that a single [`Bat::gather`] turns into the output. Range
//! selection over a `Void` column is O(1) seqbase arithmetic, joins probe a
//! typed [`ColumnIndex`] (reusing the kernel's cached one when offered),
//! and grouped aggregation runs in a single pass over typed accumulators.
//!
//! Every operator keeps its historical atom-at-a-time signature; the
//! `*_ctx` variants additionally take an [`OpCtx`] that morselizes the
//! input across [`crate::parallel::run_jobs`] workers (honouring MIL's
//! `threadcnt`) and charges an [`ExecGuard`] tick per morsel so budgeted
//! evaluations stay bounded inside operators, not just between them.
//! `OpCtx::default()` (one thread, no guard) makes the `*_ctx` variants
//! behave exactly like the plain ones. The pre-vectorization reference
//! implementations live on in [`naive`] for differential testing.

pub mod naive;

use std::collections::HashMap;
use std::hash::Hash;
use std::ops::Range;

use crate::bat::{Bat, Column, ColumnData};
use crate::error::{MonetError, Result};
use crate::guard::ExecGuard;
use crate::index::ColumnIndex;
use crate::metrics::KernelMetrics;
use crate::parallel;
use crate::value::{Atom, AtomType};

/// Execution context for the `*_ctx` operator variants: a worker count for
/// morsel-driven parallelism, an optional execution guard charged at
/// every morsel boundary, and optional metric handles recording morsel
/// utilization. Leave `metrics` unset (the default) to keep operators
/// observation-free — benchmarks measuring raw kernel speed do.
#[derive(Clone, Copy, Default)]
pub struct OpCtx<'g> {
    /// Worker threads to spread morsels over; `0`/`1` means sequential
    /// execution with bit-identical results to the plain operators.
    pub threads: usize,
    /// Budget guard ticked once per morsel, so fuel/deadline/cancellation
    /// interrupt long scans between morsels.
    pub guard: Option<&'g ExecGuard>,
    /// Morsel-utilization counters (`kernel.morsel_*`); `None` records
    /// nothing and costs nothing on the operator hot path.
    pub metrics: Option<&'g KernelMetrics>,
}

impl<'g> OpCtx<'g> {
    /// A context using `threads` workers and no guard.
    pub fn with_threads(threads: usize) -> Self {
        OpCtx {
            threads,
            ..OpCtx::default()
        }
    }

    /// A context using `threads` workers under `guard`.
    pub fn new(threads: usize, guard: &'g ExecGuard) -> Self {
        OpCtx {
            threads,
            guard: Some(guard),
            ..OpCtx::default()
        }
    }

    fn tick(&self) -> Result<()> {
        match self.guard {
            Some(g) => g.tick(),
            None => Ok(()),
        }
    }
}

/// Morsels smaller than this are not worth a task switch.
const MIN_MORSEL_ROWS: usize = 4096;
/// Morsels handed out per worker, for load balancing.
const MORSELS_PER_THREAD: usize = 4;
/// Minimum rows *per requested worker* before a run leaves the calling
/// thread. Below this the fan-out (thread wake-ups, per-morsel result
/// merges) costs more than it saves: `BENCH_monet.json` measured
/// `select_range` over 100k rows at 0.19 ms on one thread vs 0.28 ms on
/// two, so `threadcnt > 1` must never slow small BATs down.
pub const MIN_PAR_ROWS_PER_THREAD: usize = 65_536;

/// Runs `f` over morsel ranges of `0..len`, sequentially or on the
/// context's workers, returning per-morsel results in range order. The
/// guard is ticked once per morsel. Per-mode wall time and row counts
/// are recorded so the planner can compare measured sequential vs
/// parallel throughput.
fn run_morsels<T, F>(ctx: &OpCtx<'_>, len: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let parts = if ctx.threads <= 1 || len < ctx.threads * MIN_PAR_ROWS_PER_THREAD {
        1
    } else {
        (ctx.threads * MORSELS_PER_THREAD).min(len.div_ceil(MIN_MORSEL_ROWS).max(1))
    };
    let ranges = parallel::morsels(len, parts);
    if parts <= 1 || ranges.len() <= 1 {
        let n_morsels = ranges.len() as u64;
        let start = std::time::Instant::now();
        let mut out = Vec::with_capacity(ranges.len());
        for r in ranges {
            ctx.tick()?;
            out.push(f(r));
        }
        if let Some(m) = ctx.metrics {
            m.morsel_runs_seq.inc();
            m.morsels.add(n_morsels);
            m.morsel_rows.add(len as u64);
            m.morsel_seq_ns.add(start.elapsed().as_nanos() as u64);
            m.morsel_seq_rows.add(len as u64);
        }
        return Ok(out);
    }
    let n_morsels = ranges.len() as u64;
    let guard = ctx.guard;
    let jobs: Vec<_> = ranges
        .into_iter()
        .map(|r| {
            let f = &f;
            move || -> Result<T> {
                if let Some(g) = guard {
                    g.tick()?;
                }
                Ok(f(r))
            }
        })
        .collect();
    let start = std::time::Instant::now();
    let out = parallel::run_jobs(ctx.threads, jobs)?.into_iter().collect();
    if let Some(m) = ctx.metrics {
        m.morsel_runs_par.inc();
        m.morsels.add(n_morsels);
        m.morsel_rows.add(len as u64);
        m.threads.set(ctx.threads as i64);
        m.morsel_par_ns.add(start.elapsed().as_nanos() as u64);
        m.morsel_par_rows.add(len as u64);
    }
    out
}

fn concat_positions(chunks: Vec<Vec<u32>>) -> Vec<u32> {
    let total = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for c in chunks {
        out.extend_from_slice(&c);
    }
    out
}

pub(crate) fn out_type(t: AtomType) -> AtomType {
    // Operators that re-arrange rows lose void density.
    if t == AtomType::Void {
        AtomType::Oid
    } else {
        t
    }
}

/// An empty BAT with the output types of an operator over `(ht, tt)`.
fn empty_out(ht: AtomType, tt: AtomType) -> Bat {
    Bat::new(out_type(ht), out_type(tt))
}

// ---------------------------------------------------------------------------
// Selections
// ---------------------------------------------------------------------------

/// Scans `range` of a typed slice, collecting positions satisfying `pred`.
fn scan_positions<T: Copy>(vals: &[T], range: Range<usize>, pred: impl Fn(T) -> bool) -> Vec<u32> {
    let mut out = Vec::new();
    for i in range {
        if pred(vals[i]) {
            out.push(i as u32);
        }
    }
    out
}

/// Positions in `range` whose value equals `v`, under full atom equality
/// (mixed int/dbl compare by widened value and bit pattern).
fn eq_positions(col: &Column, v: &Atom, range: Range<usize>) -> Vec<u32> {
    if let Some((seq, len)) = col.void_run() {
        // O(1): a void column holds each oid at most once, at a known spot.
        if let Atom::Oid(o) = v {
            if *o >= seq && ((o - seq) as usize) < len && range.contains(&((o - seq) as usize)) {
                return vec![(o - seq) as u32];
            }
        }
        return Vec::new();
    }
    let Some(data) = col.data() else {
        return Vec::new();
    };
    match (data, v) {
        (ColumnData::Oid(xs), Atom::Oid(k)) => scan_positions(xs, range, |x| x == *k),
        (ColumnData::Int(xs), Atom::Int(k)) => scan_positions(xs, range, |x| x == *k),
        (ColumnData::Int(xs), Atom::Dbl(d)) => {
            let bits = d.to_bits();
            scan_positions(xs, range, |x| (x as f64).to_bits() == bits)
        }
        (ColumnData::Dbl(xs), Atom::Dbl(d)) => {
            let bits = d.to_bits();
            scan_positions(xs, range, |x| x.to_bits() == bits)
        }
        (ColumnData::Dbl(xs), Atom::Int(k)) => {
            let bits = (*k as f64).to_bits();
            scan_positions(xs, range, |x| x.to_bits() == bits)
        }
        (ColumnData::Str(s), Atom::Str(k)) => match s.code_of(k) {
            Some(code) => scan_positions(s.codes(), range, |c| c == code),
            None => Vec::new(),
        },
        (ColumnData::Bit(xs), Atom::Bit(k)) => scan_positions(xs, range, |x| x == *k),
        // Cross-type equality is always false.
        _ => Vec::new(),
    }
}

/// How a range bound relates to every element of a column: satisfied by
/// all rows, by none, or decided per element against a typed key.
#[derive(Clone, Copy)]
enum Bound<K> {
    Always,
    Never,
    Key(K),
}

/// Which end of the inclusive range a bound sits at.
#[derive(Clone, Copy, PartialEq)]
enum Dir {
    Lo,
    Hi,
}

/// Resolves `bound` against a column of rank `col_rank` holding `K`-typed
/// values; `extract` pulls a comparable key out of same-universe atoms.
/// Cross-type bounds collapse to a constant by the atom rank order: a lo
/// bound of a lower-ranked type is satisfied by every row, of a
/// higher-ranked type by none — and symmetrically for hi bounds.
fn resolve_bound<K>(
    bound: &Atom,
    col_rank: u8,
    dir: Dir,
    extract: impl Fn(&Atom) -> Option<K>,
) -> Bound<K> {
    match extract(bound) {
        Some(k) => Bound::Key(k),
        None => {
            let bound_above = atom_rank(bound) > col_rank;
            if bound_above == (dir == Dir::Hi) {
                Bound::Always
            } else {
                Bound::Never
            }
        }
    }
}

fn atom_rank(a: &Atom) -> u8 {
    match a {
        Atom::Oid(_) => 0,
        Atom::Int(_) | Atom::Dbl(_) => 1, // numerics share a comparison universe
        Atom::Str(_) => 3,
        Atom::Bit(_) => 4,
    }
}

/// Positions in `range` whose value lies in `[lo, hi]` under atom order.
fn range_positions(col: &Column, lo: &Atom, hi: &Atom, range: Range<usize>) -> Vec<u32> {
    if let Some((seq, len)) = col.void_run() {
        // O(1): intersect the inclusive [lo, hi] oid interval with the run.
        let lo_pos = match lo {
            Atom::Oid(o) => (*o).saturating_sub(seq).min(len as u64) as usize,
            _ => return Vec::new(), // every other atom type ranks above oid
        };
        let hi_pos = match hi {
            Atom::Oid(o) if *o < seq => 0,
            Atom::Oid(o) => ((o - seq).saturating_add(1)).min(len as u64) as usize,
            _ => len, // bound above every oid
        };
        let start = lo_pos.max(range.start);
        let end = hi_pos.min(range.end);
        return (start as u32..end.max(start) as u32).collect();
    }
    let Some(data) = col.data() else {
        return Vec::new();
    };
    match data {
        ColumnData::Oid(xs) => {
            let oid = |a: &Atom| match a {
                Atom::Oid(o) => Some(*o),
                _ => None,
            };
            let ge = resolve_bound(lo, 0, Dir::Lo, oid);
            let le = resolve_bound(hi, 0, Dir::Hi, oid);
            scan_bounded(xs, range, ge, le, |x, k| x.cmp(&k))
        }
        ColumnData::Int(xs) => {
            // An int bound compares by i64, a dbl bound by widened total
            // order — both captured as a comparator on the element.
            let ge = num_bound(lo, Dir::Lo);
            let le = num_bound(hi, Dir::Hi);
            scan_bounded(xs, range, ge, le, |x, k| match k {
                NumKey::I(v) => x.cmp(&v),
                NumKey::F(d) => (x as f64).total_cmp(&d),
            })
        }
        ColumnData::Dbl(xs) => {
            let ge = num_bound(lo, Dir::Lo);
            let le = num_bound(hi, Dir::Hi);
            scan_bounded(xs, range, ge, le, |x, k| match k {
                NumKey::I(v) => x.total_cmp(&(v as f64)),
                NumKey::F(d) => x.total_cmp(&d),
            })
        }
        ColumnData::Str(s) => {
            // Compare each *dictionary entry* against the bounds once, then
            // filter rows by their code's verdict.
            let string = |a: &Atom| match a {
                Atom::Str(v) => Some(std::sync::Arc::clone(v)),
                _ => None,
            };
            let ge = resolve_bound(lo, 3, Dir::Lo, string);
            let le = resolve_bound(hi, 3, Dir::Hi, string);
            if matches!(ge, Bound::Never) || matches!(le, Bound::Never) {
                return Vec::new();
            }
            let in_range: Vec<bool> = s
                .dict()
                .iter()
                .map(|d| {
                    let ge_ok = match &ge {
                        Bound::Always => true,
                        Bound::Never => false,
                        Bound::Key(l) => d.as_ref() >= l.as_ref(),
                    };
                    let le_ok = match &le {
                        Bound::Always => true,
                        Bound::Never => false,
                        Bound::Key(h) => d.as_ref() <= h.as_ref(),
                    };
                    ge_ok && le_ok
                })
                .collect();
            scan_positions(s.codes(), range, |c| in_range[c as usize])
        }
        ColumnData::Bit(xs) => {
            let bit = |a: &Atom| match a {
                Atom::Bit(b) => Some(*b),
                _ => None,
            };
            let ge = resolve_bound(lo, 4, Dir::Lo, bit);
            let le = resolve_bound(hi, 4, Dir::Hi, bit);
            scan_bounded(xs, range, ge, le, |x, k| x.cmp(&k))
        }
    }
}

/// A numeric bound key: native i64 or total-ordered f64.
#[derive(Clone, Copy)]
enum NumKey {
    I(i64),
    F(f64),
}

fn num_bound(bound: &Atom, dir: Dir) -> Bound<NumKey> {
    resolve_bound(bound, 1, dir, |a| match a {
        Atom::Int(v) => Some(NumKey::I(*v)),
        Atom::Dbl(d) => Some(NumKey::F(*d)),
        _ => None,
    })
}

/// Scans `range`, keeping positions where `lo <= x <= hi` per `cmp`.
fn scan_bounded<T: Copy, K: Copy>(
    vals: &[T],
    range: Range<usize>,
    lo: Bound<K>,
    hi: Bound<K>,
    cmp: impl Fn(T, K) -> std::cmp::Ordering,
) -> Vec<u32> {
    use std::cmp::Ordering;
    if matches!(lo, Bound::Never) || matches!(hi, Bound::Never) {
        return Vec::new();
    }
    scan_positions(vals, range, |x| {
        let ge = match lo {
            Bound::Always => true,
            Bound::Never => false,
            Bound::Key(k) => cmp(x, k) != Ordering::Less,
        };
        let le = match hi {
            Bound::Always => true,
            Bound::Never => false,
            Bound::Key(k) => cmp(x, k) != Ordering::Greater,
        };
        ge && le
    })
}

/// `select(b, v)`: pairs whose tail equals `v`.
pub fn select_eq(b: &Bat, v: &Atom) -> Bat {
    b.gather(&eq_positions(b.tail(), v, 0..b.len()))
}

/// [`select_eq`] with morsel-driven parallelism and budget checks.
pub fn select_eq_ctx(b: &Bat, v: &Atom, ctx: &OpCtx<'_>) -> Result<Bat> {
    let chunks = run_morsels(ctx, b.len(), |r| eq_positions(b.tail(), v, r))?;
    Ok(b.gather(&concat_positions(chunks)))
}

/// `select(b, lo, hi)`: pairs whose tail lies in the inclusive range.
pub fn select_range(b: &Bat, lo: &Atom, hi: &Atom) -> Bat {
    b.gather(&range_positions(b.tail(), lo, hi, 0..b.len()))
}

/// [`select_range`] with morsel-driven parallelism and budget checks.
pub fn select_range_ctx(b: &Bat, lo: &Atom, hi: &Atom, ctx: &OpCtx<'_>) -> Result<Bat> {
    let chunks = run_morsels(ctx, b.len(), |r| range_positions(b.tail(), lo, hi, r))?;
    Ok(b.gather(&concat_positions(chunks)))
}

/// Generic filter on (head, tail) pairs. The predicate sees materialized
/// atoms, so this stays a scalar loop; use the typed selections when the
/// predicate is an equality or range test.
pub fn select_where(b: &Bat, mut pred: impl FnMut(&Atom, &Atom) -> bool) -> Bat {
    let mut keep: Vec<u32> = Vec::new();
    for (i, (h, t)) in b.iter().enumerate() {
        if pred(&h, &t) {
            keep.push(i as u32);
        }
    }
    b.gather(&keep)
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// True when atoms of the two column types can ever compare equal.
fn joinable(probe: AtomType, build: AtomType) -> bool {
    use AtomType::*;
    let oid = |t| matches!(t, Void | Oid);
    let num = |t| matches!(t, Int | Dbl);
    (oid(probe) && oid(build)) || (num(probe) && num(build)) || probe == build
}

/// The index a probe will run against: none (void build side answers
/// positionally), a borrowed cached index, or one built for this call.
enum PlanIdx<'a> {
    Positional,
    Borrowed(&'a ColumnIndex),
    Owned(ColumnIndex),
}

impl PlanIdx<'_> {
    fn get(&self) -> Option<&ColumnIndex> {
        match self {
            PlanIdx::Positional => None,
            PlanIdx::Borrowed(i) => Some(i),
            PlanIdx::Owned(i) => Some(i),
        }
    }
}

/// Picks the index for probing `build` with values of `probe`. A cached
/// index is reused except for dbl-probes-int joins, which need the widened
/// f64 view (several ints above 2^53 collapse onto one double).
fn plan_index<'a>(probe: &Column, build: &Column, cached: Option<&'a ColumnIndex>) -> PlanIdx<'a> {
    if build.void_run().is_some() {
        return PlanIdx::Positional;
    }
    let widen = probe.atom_type() == AtomType::Dbl && build.atom_type() == AtomType::Int;
    if widen {
        match ColumnIndex::build_widened(build) {
            Some(i) => PlanIdx::Owned(i),
            None => PlanIdx::Positional,
        }
    } else if let Some(c) = cached {
        PlanIdx::Borrowed(c)
    } else {
        match ColumnIndex::build(build) {
            Some(i) => PlanIdx::Owned(i),
            None => PlanIdx::Positional,
        }
    }
}

/// Drives a typed probe of `probe[range]` against `build`, calling
/// `emit(row, matching_build_positions)` for every probe row — including
/// rows with no match (empty slice), which anti-joins need. `idx` must be
/// the plan picked by [`plan_index`] for this column pair.
fn probe_loop(
    probe: &Column,
    build: &Column,
    idx: Option<&ColumnIndex>,
    range: Range<usize>,
    mut emit: impl FnMut(usize, &[u32]),
) {
    let mut one = [0u32; 1];
    let mut positional = |o: u64, i: usize, emit: &mut dyn FnMut(usize, &[u32])| {
        if let Some((bs, bl)) = build.void_run() {
            if o >= bs && ((o - bs) as usize) < bl {
                one[0] = (o - bs) as u32;
                emit(i, &one);
                return;
            }
        }
        emit(i, &[]);
    };
    match (idx, probe.void_run(), probe.data()) {
        // Void build side: positional O(1) lookups.
        (None, Some((ps, _)), _) => {
            for i in range {
                positional(ps + i as u64, i, &mut emit);
            }
        }
        (None, _, Some(ColumnData::Oid(xs))) => {
            for i in range {
                positional(xs[i], i, &mut emit);
            }
        }
        (None, _, _) => {
            for i in range {
                emit(i, &[]);
            }
        }
        // Typed index probes.
        (Some(ix), Some((ps, _)), _) => {
            for i in range {
                emit(i, ix.lookup_u64(ps + i as u64));
            }
        }
        (Some(ix), _, Some(ColumnData::Oid(xs))) => {
            for i in range {
                emit(i, ix.lookup_u64(xs[i]));
            }
        }
        (Some(ix), _, Some(ColumnData::Int(xs))) => match ix {
            // Against a dbl build side the int probes widen to f64 bits.
            ColumnIndex::F64(_) => {
                for i in range {
                    emit(i, ix.lookup_f64_bits((xs[i] as f64).to_bits()));
                }
            }
            _ => {
                for i in range {
                    emit(i, ix.lookup_i64(xs[i]));
                }
            }
        },
        (Some(ix), _, Some(ColumnData::Dbl(xs))) => {
            // plan_index guarantees a bits-keyed index for dbl probes.
            for i in range {
                emit(i, ix.lookup_f64_bits(xs[i].to_bits()));
            }
        }
        (Some(ix), _, Some(ColumnData::Str(s))) => {
            // Bridge dictionaries: resolve each probe-side dict entry in
            // the build index once, then walk the codes.
            let per_code: Vec<&[u32]> = s.dict().iter().map(|d| ix.lookup_str(d)).collect();
            for i in range {
                emit(i, per_code[s.codes()[i] as usize]);
            }
        }
        (Some(ix), _, Some(ColumnData::Bit(xs))) => {
            for i in range {
                emit(i, ix.lookup_bit(xs[i]));
            }
        }
        // A column is always void or materialized; keep the match total.
        (Some(_), None, None) => {
            for i in range {
                emit(i, &[]);
            }
        }
    }
}

fn join_core(
    l: &Bat,
    r: &Bat,
    idx: Option<&ColumnIndex>,
    range: Range<usize>,
) -> (Vec<u32>, Vec<u32>) {
    let mut lpos = Vec::new();
    let mut rpos = Vec::new();
    probe_loop(l.tail(), r.head(), idx, range, |i, hits| {
        for &p in hits {
            lpos.push(i as u32);
            rpos.push(p);
        }
    });
    (lpos, rpos)
}

/// `join(l, r)`: Monet's positional join — matches `l.tail` against
/// `r.head` and yields `(l.head, r.tail)` for every match.
pub fn join(l: &Bat, r: &Bat) -> Bat {
    if !joinable(l.tail().atom_type(), r.head().atom_type()) {
        return empty_out(l.head().atom_type(), r.tail().atom_type());
    }
    let plan = plan_index(l.tail(), r.head(), None);
    let (lpos, rpos) = join_core(l, r, plan.get(), 0..l.len());
    Bat::from_columns_unchecked(l.head().gather(&lpos), r.tail().gather(&rpos))
}

/// [`join`] with morsel-driven parallelism, budget checks, and an optional
/// kernel-cached index over `r.head`.
pub fn join_ctx(l: &Bat, r: &Bat, cached: Option<&ColumnIndex>, ctx: &OpCtx<'_>) -> Result<Bat> {
    if !joinable(l.tail().atom_type(), r.head().atom_type()) {
        return Ok(empty_out(l.head().atom_type(), r.tail().atom_type()));
    }
    let plan = plan_index(l.tail(), r.head(), cached);
    let idx = plan.get();
    let chunks = run_morsels(ctx, l.len(), |range| join_core(l, r, idx, range))?;
    let matches: usize = chunks.iter().map(|(lp, _)| lp.len()).sum();
    let mut lpos = Vec::with_capacity(matches);
    let mut rpos = Vec::with_capacity(matches);
    for (lp, rp) in chunks {
        lpos.extend_from_slice(&lp);
        rpos.extend_from_slice(&rp);
    }
    Ok(Bat::from_columns_unchecked(
        l.head().gather(&lpos),
        r.tail().gather(&rpos),
    ))
}

fn membership_core(
    l: &Bat,
    r: &Bat,
    idx: Option<&ColumnIndex>,
    keep_matches: bool,
    range: Range<usize>,
) -> Vec<u32> {
    let mut keep = Vec::new();
    probe_loop(l.head(), r.head(), idx, range, |i, hits| {
        if hits.is_empty() != keep_matches {
            keep.push(i as u32);
        }
    });
    keep
}

fn membership(l: &Bat, r: &Bat, keep_matches: bool) -> Bat {
    if !joinable(l.head().atom_type(), r.head().atom_type()) {
        return if keep_matches {
            empty_out(l.head().atom_type(), l.tail().atom_type())
        } else {
            l.gather(&(0..l.len() as u32).collect::<Vec<_>>())
        };
    }
    let plan = plan_index(l.head(), r.head(), None);
    l.gather(&membership_core(l, r, plan.get(), keep_matches, 0..l.len()))
}

fn membership_ctx(
    l: &Bat,
    r: &Bat,
    cached: Option<&ColumnIndex>,
    keep_matches: bool,
    ctx: &OpCtx<'_>,
) -> Result<Bat> {
    if !joinable(l.head().atom_type(), r.head().atom_type()) {
        return Ok(if keep_matches {
            empty_out(l.head().atom_type(), l.tail().atom_type())
        } else {
            l.gather(&(0..l.len() as u32).collect::<Vec<_>>())
        });
    }
    let plan = plan_index(l.head(), r.head(), cached);
    let idx = plan.get();
    let chunks = run_morsels(ctx, l.len(), |range| {
        membership_core(l, r, idx, keep_matches, range)
    })?;
    Ok(l.gather(&concat_positions(chunks)))
}

/// `semijoin(l, r)`: pairs of `l` whose head occurs among `r`'s heads.
pub fn semijoin(l: &Bat, r: &Bat) -> Bat {
    membership(l, r, true)
}

/// [`semijoin`] with morsel-driven parallelism, budget checks, and an
/// optional kernel-cached index over `r.head`.
pub fn semijoin_ctx(
    l: &Bat,
    r: &Bat,
    cached: Option<&ColumnIndex>,
    ctx: &OpCtx<'_>,
) -> Result<Bat> {
    membership_ctx(l, r, cached, true, ctx)
}

/// `diff(l, r)`: pairs of `l` whose head does **not** occur among `r`'s heads.
pub fn antijoin(l: &Bat, r: &Bat) -> Bat {
    membership(l, r, false)
}

/// [`antijoin`] with morsel-driven parallelism, budget checks, and an
/// optional kernel-cached index over `r.head`.
pub fn antijoin_ctx(
    l: &Bat,
    r: &Bat,
    cached: Option<&ColumnIndex>,
    ctx: &OpCtx<'_>,
) -> Result<Bat> {
    membership_ctx(l, r, cached, false, ctx)
}

// ---------------------------------------------------------------------------
// Mapping, grouping, sorting
// ---------------------------------------------------------------------------

/// Applies `f` to every tail value, keeping heads (`[f]()` map in MIL).
pub fn map_tail(
    b: &Bat,
    out_ty: AtomType,
    mut f: impl FnMut(&Atom) -> Result<Atom>,
) -> Result<Bat> {
    let (ht, _) = b.types();
    let mut out = Bat::new(ht, out_ty);
    for (h, t) in b.iter() {
        let v = f(&t)?;
        // Void heads stay dense because we re-append in order.
        match ht {
            AtomType::Void => out.append_void(v)?,
            _ => out.append(h, v)?,
        }
    }
    Ok(out)
}

/// Assigns dense ids to equal values of a typed key iterator: returns the
/// id of every row plus the first-occurrence position of every id.
fn dense_ids_by<K: Eq + Hash>(keys: impl Iterator<Item = K>) -> (Vec<u32>, Vec<u32>) {
    let mut map: HashMap<K, u32> = HashMap::new();
    let mut ids = Vec::new();
    let mut first = Vec::new();
    for (i, k) in keys.enumerate() {
        let next = map.len() as u32;
        let id = *map.entry(k).or_insert(next);
        if id == next {
            first.push(i as u32);
        }
        ids.push(id);
    }
    (ids, first)
}

/// Dense group ids over a column, under atom equality, in first-occurrence
/// order. Returns `(id per row, first position per id)`.
fn dense_ids(col: &Column) -> (Vec<u32>, Vec<u32>) {
    if let Some((_, len)) = col.void_run() {
        // Every void value is distinct.
        let idx: Vec<u32> = (0..len as u32).collect();
        return (idx.clone(), idx);
    }
    let Some(data) = col.data() else {
        return (Vec::new(), Vec::new());
    };
    match data {
        ColumnData::Oid(v) => dense_ids_by(v.iter().copied()),
        ColumnData::Int(v) => dense_ids_by(v.iter().copied()),
        // Bit-pattern keys match atom equality (NaN == NaN, 0.0 != -0.0).
        ColumnData::Dbl(v) => dense_ids_by(v.iter().map(|x| x.to_bits())),
        // Interning makes code equality string equality.
        ColumnData::Str(s) => dense_ids_by(s.codes().iter().copied()),
        ColumnData::Bit(v) => dense_ids_by(v.iter().copied()),
    }
}

/// `unique(b)`: first occurrence of every distinct tail value.
pub fn unique_tail(b: &Bat) -> Bat {
    let (_, first) = dense_ids(b.tail());
    b.gather(&first)
}

/// `histogram(b)`: (tail value, occurrence count) pairs.
pub fn histogram(b: &Bat) -> Bat {
    let (ids, first) = dense_ids(b.tail());
    let mut counts = vec![0i64; first.len()];
    for id in ids {
        counts[id as usize] += 1;
    }
    Bat::from_columns_unchecked(
        b.tail().gather(&first),
        Column::from_data(ColumnData::Int(counts)),
    )
}

/// `group(b)`: maps every head to a group id shared by equal tail values.
pub fn group(b: &Bat) -> Bat {
    let (ids, _) = dense_ids(b.tail());
    let gids: Vec<u64> = ids.into_iter().map(u64::from).collect();
    Bat::from_columns_unchecked(
        b.head().materialize(),
        Column::from_data(ColumnData::Oid(gids)),
    )
}

/// The permutation that stably sorts `col` ascending under atom order.
fn sort_permutation(col: &Column) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..col.len() as u32).collect();
    let Some(data) = col.data() else {
        return perm; // a void column is already sorted
    };
    match data {
        ColumnData::Oid(v) => perm.sort_by_key(|&i| v[i as usize]),
        ColumnData::Int(v) => perm.sort_by_key(|&i| v[i as usize]),
        ColumnData::Dbl(v) => perm.sort_by(|&a, &b| v[a as usize].total_cmp(&v[b as usize])),
        ColumnData::Str(s) => {
            // Rank the dictionary once, then sort rows by integer rank.
            let ranks = s.dict_ranks();
            perm.sort_by_key(|&i| ranks[s.codes()[i as usize] as usize]);
        }
        ColumnData::Bit(v) => perm.sort_by_key(|&i| v[i as usize]),
    }
    perm
}

/// `sort(b)`: pairs ordered by tail value (stable).
pub fn sort_by_tail(b: &Bat) -> Bat {
    b.gather(&sort_permutation(b.tail()))
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Numeric aggregate kinds supported by [`aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Sum of tail values.
    Sum,
    /// Arithmetic mean of tail values.
    Avg,
    /// Minimum tail value.
    Min,
    /// Maximum tail value.
    Max,
    /// Number of pairs.
    Count,
}

fn non_numeric(first: Atom) -> MonetError {
    MonetError::TypeMismatch {
        expected: "numeric tail".into(),
        found: first.to_string(),
    }
}

/// Computes a numeric aggregate over the tail column.
pub fn aggregate(b: &Bat, kind: Aggregate) -> Result<Atom> {
    if kind == Aggregate::Count {
        return Ok(Atom::Int(b.len() as i64));
    }
    if b.is_empty() {
        return Err(MonetError::EmptyBat(format!("{kind:?}").to_lowercase()));
    }
    let col = b.tail();
    if let Some((seq, len)) = col.void_run() {
        return match kind {
            Aggregate::Min => Ok(Atom::Oid(seq)),
            Aggregate::Max => Ok(Atom::Oid(seq + len as u64 - 1)),
            _ => Err(non_numeric(Atom::Oid(seq))),
        };
    }
    let Some(data) = col.data() else {
        return Err(MonetError::EmptyBat(format!("{kind:?}").to_lowercase()));
    };
    match data {
        ColumnData::Int(v) => match kind {
            Aggregate::Min => Ok(Atom::Int(v.iter().copied().fold(i64::MAX, i64::min))),
            Aggregate::Max => Ok(Atom::Int(v.iter().copied().fold(i64::MIN, i64::max))),
            Aggregate::Sum | Aggregate::Avg => {
                let mut isum = 0i64;
                let mut fsum = 0.0f64;
                for &x in v {
                    isum = isum.wrapping_add(x);
                    fsum += x as f64;
                }
                if kind == Aggregate::Sum {
                    Ok(Atom::Int(isum))
                } else {
                    Ok(Atom::Dbl(fsum / v.len() as f64))
                }
            }
            Aggregate::Count => unreachable!("handled above"),
        },
        ColumnData::Dbl(v) => match kind {
            Aggregate::Min => {
                let mut m = v[0];
                for &x in &v[1..] {
                    if x.total_cmp(&m).is_lt() {
                        m = x;
                    }
                }
                Ok(Atom::Dbl(m))
            }
            Aggregate::Max => {
                let mut m = v[0];
                for &x in &v[1..] {
                    if x.total_cmp(&m).is_gt() {
                        m = x;
                    }
                }
                Ok(Atom::Dbl(m))
            }
            Aggregate::Sum | Aggregate::Avg => {
                let fsum: f64 = v.iter().sum();
                if kind == Aggregate::Sum {
                    Ok(Atom::Dbl(fsum))
                } else {
                    Ok(Atom::Dbl(fsum / v.len() as f64))
                }
            }
            Aggregate::Count => unreachable!("handled above"),
        },
        ColumnData::Oid(v) => match kind {
            Aggregate::Min => Ok(Atom::Oid(v.iter().copied().fold(u64::MAX, u64::min))),
            Aggregate::Max => Ok(Atom::Oid(v.iter().copied().fold(u64::MIN, u64::max))),
            _ => Err(non_numeric(Atom::Oid(v[0]))),
        },
        ColumnData::Str(s) => match kind {
            Aggregate::Min | Aggregate::Max => {
                // Compare codes by precomputed dictionary rank; only codes
                // actually present in rows participate.
                let ranks = s.dict_ranks();
                let best = if kind == Aggregate::Min {
                    s.codes().iter().copied().min_by_key(|&c| ranks[c as usize])
                } else {
                    s.codes().iter().copied().max_by_key(|&c| ranks[c as usize])
                };
                match best {
                    Some(c) => Ok(Atom::Str(std::sync::Arc::clone(&s.dict()[c as usize]))),
                    None => Err(MonetError::EmptyBat(format!("{kind:?}").to_lowercase())),
                }
            }
            _ => Err(non_numeric(Atom::Str(std::sync::Arc::clone(s.value(0))))),
        },
        ColumnData::Bit(v) => match kind {
            Aggregate::Min => Ok(Atom::Bit(!v.contains(&false))),
            Aggregate::Max => Ok(Atom::Bit(v.contains(&true))),
            _ => Err(non_numeric(Atom::Bit(v[0]))),
        },
    }
}

/// Per-group running totals for the single-pass grouped aggregation.
#[derive(Clone, Copy)]
struct Accum {
    count: i64,
    fsum: f64,
    isum: i64,
    all_int: bool,
    min: f64,
    max: f64,
}

impl Accum {
    fn new() -> Self {
        Accum {
            count: 0,
            fsum: 0.0,
            isum: 0,
            all_int: true,
            min: 0.0,
            max: 0.0,
        }
    }

    fn add_f(&mut self, v: f64, int_exact: Option<i64>) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v.total_cmp(&self.min).is_lt() {
                self.min = v;
            }
            if v.total_cmp(&self.max).is_gt() {
                self.max = v;
            }
        }
        self.count += 1;
        self.fsum += v;
        match int_exact {
            Some(i) => self.isum = self.isum.wrapping_add(i),
            None => self.all_int = false,
        }
    }

    fn add_count(&mut self) {
        self.count += 1;
    }

    /// Merges `other` into `self`; `other` accumulated later rows.
    fn merge(&mut self, other: &Accum) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        if other.min.total_cmp(&self.min).is_lt() {
            self.min = other.min;
        }
        if other.max.total_cmp(&self.max).is_gt() {
            self.max = other.max;
        }
        self.count += other.count;
        self.fsum += other.fsum;
        self.isum = self.isum.wrapping_add(other.isum);
        self.all_int &= other.all_int;
    }

    fn finish(&self, kind: Aggregate) -> Atom {
        match kind {
            Aggregate::Count => Atom::Int(self.count),
            Aggregate::Sum => Atom::Dbl(if self.all_int {
                // Matches the naive path: an int group sums with wrapping
                // i64 arithmetic, then widens once.
                self.isum as f64
            } else {
                self.fsum
            }),
            Aggregate::Avg => Atom::Dbl(self.fsum / self.count as f64),
            Aggregate::Min => Atom::Dbl(self.min),
            Aggregate::Max => Atom::Dbl(self.max),
        }
    }
}

/// Typed view of the values column for grouped aggregation.
enum NumView<'a> {
    Int(&'a [i64]),
    Dbl(&'a [f64]),
    /// Non-numeric values: only `Count` may touch them.
    Opaque,
}

/// One morsel's worth of grouped accumulation: group slots in
/// first-occurrence order plus their running totals.
struct MorselAgg {
    order: Vec<u32>,
    accums: HashMap<u32, Accum>,
}

/// Grouped aggregation: `grouped(values, groups, kind)` where `groups`
/// assigns a group id to every head of `values`. Returns (group id, agg)
/// with group ids in first-occurrence order of the values rows.
///
/// Every `values` head must occur among `groups` heads; a missing head
/// raises [`MonetError::GroupMismatch`] (the naive reference silently
/// dropped such rows).
pub fn grouped_aggregate(values: &Bat, groups: &Bat, kind: Aggregate) -> Result<Bat> {
    grouped_aggregate_ctx(values, groups, kind, &OpCtx::default())
}

/// [`grouped_aggregate`] with morsel-driven parallelism and budget checks.
/// At `threads <= 1` results are bit-identical to the sequential path;
/// with more threads, float sums may differ in rounding (ints, counts and
/// min/max stay exact).
pub fn grouped_aggregate_ctx(
    values: &Bat,
    groups: &Bat,
    kind: Aggregate,
    ctx: &OpCtx<'_>,
) -> Result<Bat> {
    let out_ty = if kind == Aggregate::Count {
        AtomType::Int
    } else {
        AtomType::Dbl
    };
    let mut out = Bat::new(out_type(groups.tail().atom_type()), out_ty);
    if values.is_empty() {
        return Ok(out);
    }
    if !joinable(values.head().atom_type(), groups.head().atom_type()) {
        return Err(MonetError::GroupMismatch {
            head: match values.head_at(0) {
                Ok(a) => a.to_string(),
                Err(_) => "<head>".into(),
            },
        });
    }

    // Slot every groups row by its tail value (two heads can share a gid).
    let (gslots, gfirst) = dense_ids(groups.tail());

    let view = match values.tail().data() {
        Some(ColumnData::Int(v)) => NumView::Int(v),
        Some(ColumnData::Dbl(v)) => NumView::Dbl(v),
        _ => NumView::Opaque,
    };
    if kind != Aggregate::Count && matches!(view, NumView::Opaque) {
        return Err(non_numeric(values.tail_at(0)?));
    }

    let plan = plan_index(values.head(), groups.head(), None);
    let idx = plan.get();

    let chunks = run_morsels(ctx, values.len(), |range| -> Result<MorselAgg> {
        let mut agg = MorselAgg {
            order: Vec::new(),
            accums: HashMap::new(),
        };
        let mut missing: Option<usize> = None;
        probe_loop(values.head(), groups.head(), idx, range, |i, hits| {
            let Some(&p) = hits.first() else {
                missing.get_or_insert(i);
                return;
            };
            let slot = gslots[p as usize];
            let acc = agg.accums.entry(slot).or_insert_with(|| {
                agg.order.push(slot);
                Accum::new()
            });
            match view {
                NumView::Int(v) => acc.add_f(v[i] as f64, Some(v[i])),
                NumView::Dbl(v) => acc.add_f(v[i], None),
                NumView::Opaque => acc.add_count(),
            }
        });
        if let Some(i) = missing {
            return Err(MonetError::GroupMismatch {
                head: values.head_at(i)?.to_string(),
            });
        }
        Ok(agg)
    })?;

    // Merge morsels in range order: first-occurrence group order and int
    // accumulations are deterministic at every thread count.
    let mut order: Vec<u32> = Vec::new();
    let mut merged: HashMap<u32, Accum> = HashMap::new();
    for chunk in chunks {
        let chunk = chunk?;
        for slot in chunk.order {
            let acc = merged.entry(slot).or_insert_with(|| {
                order.push(slot);
                Accum::new()
            });
            if let Some(part) = chunk.accums.get(&slot) {
                acc.merge(part);
            }
        }
    }

    for slot in order {
        let gid = groups.tail_at(gfirst[slot as usize] as usize)?;
        let acc = merged
            .get(&slot)
            .copied()
            .ok_or_else(|| MonetError::Eval("grouped aggregate lost a slot".into()))?;
        out.append(gid, acc.finish(kind))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn named_points() -> Bat {
        Bat::from_pairs(
            AtomType::Str,
            AtomType::Int,
            [
                (Atom::str("schumacher"), Atom::Int(10)),
                (Atom::str("hakkinen"), Atom::Int(8)),
                (Atom::str("schumacher"), Atom::Int(6)),
                (Atom::str("montoya"), Atom::Int(8)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_eq_filters_by_tail() {
        let b = named_points();
        let s = select_eq(&b, &Atom::Int(8));
        assert_eq!(s.len(), 2);
        assert_eq!(s.head_at(0).unwrap(), Atom::str("hakkinen"));
    }

    #[test]
    fn select_range_is_inclusive() {
        let b = named_points();
        let s = select_range(&b, &Atom::Int(7), &Atom::Int(10));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn select_range_on_void_tail_is_positional() {
        let b = Bat::from_tail(AtomType::Int, (0..8).map(Atom::Int))
            .unwrap()
            .reverse(); // head: int, tail: void oids 0..8
        let s = select_range(&b, &Atom::Oid(2), &Atom::Oid(5));
        assert_eq!(s.len(), 4);
        assert_eq!(s.tail_at(0).unwrap(), Atom::Oid(2));
        assert_eq!(s.tail_at(3).unwrap(), Atom::Oid(5));
        // Bounds clamp: an over-wide range selects everything.
        assert_eq!(select_range(&b, &Atom::Oid(0), &Atom::Oid(100)).len(), 8);
    }

    #[test]
    fn join_matches_tail_to_head() {
        // l: oid -> driver, r: driver -> team
        let l = Bat::from_tail(
            AtomType::Str,
            ["schumacher", "hakkinen"].into_iter().map(Atom::str),
        )
        .unwrap();
        let r = Bat::from_pairs(
            AtomType::Str,
            AtomType::Str,
            [
                (Atom::str("schumacher"), Atom::str("ferrari")),
                (Atom::str("hakkinen"), Atom::str("mclaren")),
            ],
        )
        .unwrap();
        let j = join(&l, &r);
        assert_eq!(j.len(), 2);
        assert_eq!(j.find(&Atom::Oid(0)), Some(Atom::str("ferrari")));
        assert_eq!(j.find(&Atom::Oid(1)), Some(Atom::str("mclaren")));
    }

    #[test]
    fn join_multiplies_duplicate_matches() {
        let l = Bat::from_tail(AtomType::Int, [Atom::Int(1)]).unwrap();
        let r = Bat::from_pairs(
            AtomType::Int,
            AtomType::Str,
            [
                (Atom::Int(1), Atom::str("a")),
                (Atom::Int(1), Atom::str("b")),
            ],
        )
        .unwrap();
        assert_eq!(join(&l, &r).len(), 2);
    }

    #[test]
    fn join_against_void_head_is_positional() {
        // r has a void head: matching is pure oid arithmetic.
        let r = Bat::from_tail(AtomType::Str, ["a", "b", "c"].into_iter().map(Atom::str)).unwrap();
        let l = Bat::from_pairs(
            AtomType::Int,
            AtomType::Oid,
            [
                (Atom::Int(10), Atom::Oid(2)),
                (Atom::Int(11), Atom::Oid(9)),
                (Atom::Int(12), Atom::Oid(0)),
            ],
        )
        .unwrap();
        let j = join(&l, &r);
        assert_eq!(j.len(), 2);
        assert_eq!(j.find(&Atom::Int(10)), Some(Atom::str("c")));
        assert_eq!(j.find(&Atom::Int(12)), Some(Atom::str("a")));
    }

    #[test]
    fn join_mixes_int_and_dbl_keys_by_value() {
        let l = Bat::from_tail(AtomType::Dbl, [Atom::Dbl(2.0), Atom::Dbl(2.5)]).unwrap();
        let r = Bat::from_pairs(
            AtomType::Int,
            AtomType::Str,
            [(Atom::Int(2), Atom::str("two"))],
        )
        .unwrap();
        let j = join(&l, &r);
        assert_eq!(j.len(), 1);
        assert_eq!(j.find(&Atom::Oid(0)), Some(Atom::str("two")));
    }

    #[test]
    fn join_incompatible_types_is_empty() {
        let l = Bat::from_tail(AtomType::Str, [Atom::str("x")]).unwrap();
        let r =
            Bat::from_pairs(AtomType::Int, AtomType::Int, [(Atom::Int(1), Atom::Int(2))]).unwrap();
        let j = join(&l, &r);
        assert!(j.is_empty());
        assert_eq!(j.types(), (AtomType::Oid, AtomType::Int));
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let l = named_points();
        let r = Bat::from_pairs(
            AtomType::Str,
            AtomType::Int,
            [(Atom::str("schumacher"), Atom::Int(0))],
        )
        .unwrap();
        let semi = semijoin(&l, &r);
        let anti = antijoin(&l, &r);
        assert_eq!(semi.len(), 2);
        assert_eq!(anti.len(), 2);
        assert_eq!(semi.len() + anti.len(), l.len());
    }

    #[test]
    fn map_tail_preserves_void_head() {
        let b = Bat::from_tail(AtomType::Int, (1..=3).map(Atom::Int)).unwrap();
        let doubled = map_tail(&b, AtomType::Int, |a| Ok(Atom::Int(a.as_int()? * 2))).unwrap();
        assert_eq!(doubled.head().atom_type(), AtomType::Void);
        assert_eq!(doubled.tail_at(2).unwrap(), Atom::Int(6));
    }

    #[test]
    fn unique_keeps_first_occurrence() {
        let b = named_points();
        let u = unique_tail(&b);
        assert_eq!(u.len(), 3);
        assert_eq!(u.tail_at(1).unwrap(), Atom::Int(8));
        assert_eq!(u.head_at(1).unwrap(), Atom::str("hakkinen"));
    }

    #[test]
    fn histogram_counts_tail_values() {
        let b = named_points();
        let h = histogram(&b);
        assert_eq!(h.find(&Atom::Int(8)), Some(Atom::Int(2)));
        assert_eq!(h.find(&Atom::Int(10)), Some(Atom::Int(1)));
    }

    #[test]
    fn group_assigns_shared_ids() {
        let b = named_points();
        let g = group(&b);
        // rows 1 and 3 share tail value 8 → same group id.
        assert_eq!(g.tail_at(1).unwrap(), g.tail_at(3).unwrap());
        assert_ne!(g.tail_at(0).unwrap(), g.tail_at(1).unwrap());
    }

    #[test]
    fn sort_by_tail_is_stable() {
        let b = named_points();
        let s = sort_by_tail(&b);
        let tails: Vec<_> = s.tail().iter().collect();
        assert_eq!(
            tails,
            vec![Atom::Int(6), Atom::Int(8), Atom::Int(8), Atom::Int(10)]
        );
        // stability: hakkinen (earlier) precedes montoya among the 8s.
        assert_eq!(s.head_at(1).unwrap(), Atom::str("hakkinen"));
        assert_eq!(s.head_at(2).unwrap(), Atom::str("montoya"));
    }

    #[test]
    fn aggregates_over_ints_and_doubles() {
        let b = named_points();
        assert_eq!(aggregate(&b, Aggregate::Sum).unwrap(), Atom::Int(32));
        assert_eq!(aggregate(&b, Aggregate::Avg).unwrap(), Atom::Dbl(8.0));
        assert_eq!(aggregate(&b, Aggregate::Min).unwrap(), Atom::Int(6));
        assert_eq!(aggregate(&b, Aggregate::Max).unwrap(), Atom::Int(10));
        assert_eq!(aggregate(&b, Aggregate::Count).unwrap(), Atom::Int(4));

        let d = Bat::from_tail(AtomType::Dbl, [Atom::Dbl(0.5), Atom::Dbl(1.5)]).unwrap();
        assert_eq!(aggregate(&d, Aggregate::Sum).unwrap(), Atom::Dbl(2.0));
    }

    #[test]
    fn aggregate_on_empty_bat_errors_except_count() {
        let b = Bat::new(AtomType::Void, AtomType::Dbl);
        assert!(aggregate(&b, Aggregate::Max).is_err());
        assert_eq!(aggregate(&b, Aggregate::Count).unwrap(), Atom::Int(0));
    }

    #[test]
    fn aggregate_rejects_non_numeric() {
        let b = Bat::from_tail(AtomType::Str, [Atom::str("x")]).unwrap();
        assert!(aggregate(&b, Aggregate::Sum).is_err());
    }

    #[test]
    fn aggregate_min_max_work_on_strings_and_voids() {
        let b = Bat::from_tail(
            AtomType::Str,
            ["pit", "lap", "win"].into_iter().map(Atom::str),
        )
        .unwrap();
        assert_eq!(aggregate(&b, Aggregate::Min).unwrap(), Atom::str("lap"));
        assert_eq!(aggregate(&b, Aggregate::Max).unwrap(), Atom::str("win"));
        let v = b.reverse(); // tail is void oids 0..3
        assert_eq!(aggregate(&v, Aggregate::Min).unwrap(), Atom::Oid(0));
        assert_eq!(aggregate(&v, Aggregate::Max).unwrap(), Atom::Oid(2));
    }

    #[test]
    fn grouped_aggregate_sums_per_group() {
        // values: oid -> points ; groups: oid -> group id (by driver)
        let values = Bat::from_tail(AtomType::Int, [10, 8, 6, 8].map(Atom::Int)).unwrap();
        let groups = Bat::from_pairs(
            AtomType::Oid,
            AtomType::Oid,
            [
                (Atom::Oid(0), Atom::Oid(0)),
                (Atom::Oid(1), Atom::Oid(1)),
                (Atom::Oid(2), Atom::Oid(0)),
                (Atom::Oid(3), Atom::Oid(2)),
            ],
        )
        .unwrap();
        let agg = grouped_aggregate(&values, &groups, Aggregate::Sum).unwrap();
        assert_eq!(agg.find(&Atom::Oid(0)), Some(Atom::Dbl(16.0)));
        assert_eq!(agg.find(&Atom::Oid(1)), Some(Atom::Dbl(8.0)));
        let counts = grouped_aggregate(&values, &groups, Aggregate::Count).unwrap();
        assert_eq!(counts.find(&Atom::Oid(0)), Some(Atom::Int(2)));
    }

    #[test]
    fn grouped_aggregate_rejects_ungrouped_heads() {
        let values = Bat::from_tail(AtomType::Int, [10, 8].map(Atom::Int)).unwrap();
        // Only head 0 is grouped; head 1 is missing.
        let groups =
            Bat::from_pairs(AtomType::Oid, AtomType::Oid, [(Atom::Oid(0), Atom::Oid(0))]).unwrap();
        let err = grouped_aggregate(&values, &groups, Aggregate::Sum).unwrap_err();
        assert_eq!(err, MonetError::GroupMismatch { head: "1@0".into() });
    }

    #[test]
    fn ctx_variants_match_plain_operators() {
        let b = Bat::from_tail(AtomType::Int, (0..10_000).map(|v| Atom::Int(v % 97))).unwrap();
        let keys = Bat::from_pairs(
            AtomType::Int,
            AtomType::Int,
            (0..50).map(|v| (Atom::Int(v), Atom::Int(v * 2))),
        )
        .unwrap();
        for threads in [1, 2, 4] {
            let ctx = OpCtx::with_threads(threads);
            assert_eq!(
                select_eq_ctx(&b, &Atom::Int(13), &ctx).unwrap(),
                select_eq(&b, &Atom::Int(13))
            );
            assert_eq!(
                select_range_ctx(&b, &Atom::Int(10), &Atom::Int(20), &ctx).unwrap(),
                select_range(&b, &Atom::Int(10), &Atom::Int(20))
            );
            assert_eq!(join_ctx(&b, &keys, None, &ctx).unwrap(), join(&b, &keys));
            let rev = b.reverse();
            assert_eq!(
                semijoin_ctx(&rev, &keys, None, &ctx).unwrap(),
                semijoin(&rev, &keys)
            );
            assert_eq!(
                antijoin_ctx(&rev, &keys, None, &ctx).unwrap(),
                antijoin(&rev, &keys)
            );
        }
    }

    #[test]
    fn ctx_operators_respect_budget() {
        let guard = crate::guard::ExecBudget::unlimited().with_fuel(1).start();
        let ctx = OpCtx::new(4, &guard);
        // Large enough to clear the per-thread parallel floor at t=4.
        let rows = 4 * MIN_PAR_ROWS_PER_THREAD + 1;
        let b = Bat::from_tail(AtomType::Int, (0..rows as i64).map(Atom::Int)).unwrap();
        // More than one morsel, one fuel unit: the scan must be cut short.
        let err = select_range_ctx(&b, &Atom::Int(0), &Atom::Int(99), &ctx).unwrap_err();
        assert!(matches!(err, MonetError::BudgetExhausted { .. }));
    }

    #[test]
    fn parallel_floor_keeps_small_inputs_sequential() {
        // BENCH_monet.json showed threadcnt=2 losing to threadcnt=1 at
        // 100k rows; the per-thread floor pins that regime to the
        // sequential path while genuinely large runs still fan out.
        let metrics = crate::metrics::KernelMetrics::default();
        let small = Bat::from_tail(AtomType::Int, (0..100_000).map(Atom::Int)).unwrap();
        let ctx = OpCtx {
            threads: 2,
            guard: None,
            metrics: Some(&metrics),
        };
        select_range_ctx(&small, &Atom::Int(5), &Atom::Int(50), &ctx).unwrap();
        assert_eq!(metrics.morsel_runs_seq.get(), 1);
        assert_eq!(metrics.morsel_runs_par.get(), 0);

        let big_rows = 2 * MIN_PAR_ROWS_PER_THREAD;
        let big = Bat::from_tail(AtomType::Int, (0..big_rows as i64).map(Atom::Int)).unwrap();
        select_range_ctx(&big, &Atom::Int(5), &Atom::Int(50), &ctx).unwrap();
        assert_eq!(metrics.morsel_runs_par.get(), 1);
        // Both modes recorded their measured throughput for the planner.
        assert!(metrics.morsel_seq_rows.get() >= 100_000);
        assert!(metrics.morsel_par_rows.get() >= big_rows as u64);
    }

    #[test]
    fn cached_index_gives_same_join_results() {
        let l = Bat::from_tail(AtomType::Int, (0..100).map(|v| Atom::Int(v % 7))).unwrap();
        let r = Bat::from_pairs(
            AtomType::Int,
            AtomType::Str,
            (0..7).map(|v| (Atom::Int(v), Atom::str(format!("g{v}")))),
        )
        .unwrap();
        let idx = ColumnIndex::build(r.head()).unwrap();
        let ctx = OpCtx::default();
        assert_eq!(join_ctx(&l, &r, Some(&idx), &ctx).unwrap(), join(&l, &r));
    }
}
