//! Naive reference implementations of the relational operators.
//!
//! These are the pre-vectorization operator bodies, kept verbatim as the
//! semantic ground truth: they iterate [`Atom`]s one at a time and rebuild
//! hash indexes on every call. The vectorized operators in [`super`] are
//! differentially tested against them on random BATs (see
//! `tests/vectorized_differential.rs`) and benchmarked against them in
//! `BENCH_monet.json`, so every speedup is measured against this module.

use std::collections::HashMap;

use crate::bat::Bat;
use crate::error::{MonetError, Result};
use crate::index::HashIndex;
use crate::value::{Atom, AtomType};

use super::{out_type, Aggregate};

/// `select(b, v)`: pairs whose tail equals `v`.
pub fn select_eq(b: &Bat, v: &Atom) -> Bat {
    let (ht, tt) = b.types();
    let mut out = Bat::new(out_type(ht), out_type(tt));
    for (h, t) in b.iter().filter(|(_, t)| t == v) {
        out.append(h, t).expect("type preserved");
    }
    out
}

/// `select(b, lo, hi)`: pairs whose tail lies in the inclusive range.
pub fn select_range(b: &Bat, lo: &Atom, hi: &Atom) -> Bat {
    let (ht, tt) = b.types();
    let mut out = Bat::new(out_type(ht), out_type(tt));
    for (h, t) in b.iter().filter(|(_, t)| t >= lo && t <= hi) {
        out.append(h, t).expect("type preserved");
    }
    out
}

/// `join(l, r)`: Monet's positional join — matches `l.tail` against
/// `r.head` and yields `(l.head, r.tail)` for every match.
pub fn join(l: &Bat, r: &Bat) -> Bat {
    let (lh, _) = l.types();
    let (_, rt) = r.types();
    let mut out = Bat::new(out_type(lh), out_type(rt));
    let idx = HashIndex::build(r.head());
    for (h, t) in l.iter() {
        for &pos in idx.lookup(&t) {
            out.append(h.clone(), r.tail_at(pos).expect("indexed position"))
                .expect("type preserved");
        }
    }
    out
}

/// `semijoin(l, r)`: pairs of `l` whose head occurs among `r`'s heads.
pub fn semijoin(l: &Bat, r: &Bat) -> Bat {
    let (lh, lt) = l.types();
    let mut out = Bat::new(out_type(lh), out_type(lt));
    let idx = HashIndex::build(r.head());
    for (h, t) in l.iter() {
        if idx.contains(&h) {
            out.append(h, t).expect("type preserved");
        }
    }
    out
}

/// `diff(l, r)`: pairs of `l` whose head does **not** occur among `r`'s heads.
pub fn antijoin(l: &Bat, r: &Bat) -> Bat {
    let (lh, lt) = l.types();
    let mut out = Bat::new(out_type(lh), out_type(lt));
    let idx = HashIndex::build(r.head());
    for (h, t) in l.iter() {
        if !idx.contains(&h) {
            out.append(h, t).expect("type preserved");
        }
    }
    out
}

/// `unique(b)`: first occurrence of every distinct tail value.
pub fn unique_tail(b: &Bat) -> Bat {
    let (ht, tt) = b.types();
    let mut seen: HashMap<Atom, ()> = HashMap::new();
    let mut out = Bat::new(out_type(ht), out_type(tt));
    for (h, t) in b.iter() {
        if seen.insert(t.clone(), ()).is_none() {
            out.append(h, t).expect("type preserved");
        }
    }
    out
}

/// `histogram(b)`: (tail value, occurrence count) pairs.
pub fn histogram(b: &Bat) -> Bat {
    let (_, tt) = b.types();
    let mut counts: HashMap<Atom, i64> = HashMap::new();
    let mut order: Vec<Atom> = Vec::new();
    for (_, t) in b.iter() {
        let e = counts.entry(t.clone()).or_insert(0);
        if *e == 0 {
            order.push(t);
        }
        *e += 1;
    }
    let mut out = Bat::new(out_type(tt), AtomType::Int);
    for key in order {
        let n = counts[&key];
        out.append(key, Atom::Int(n)).expect("type preserved");
    }
    out
}

/// `group(b)`: maps every head to a group id shared by equal tail values.
pub fn group(b: &Bat) -> Bat {
    let (ht, _) = b.types();
    let mut ids: HashMap<Atom, u64> = HashMap::new();
    let mut next = 0u64;
    let mut out = Bat::new(out_type(ht), AtomType::Oid);
    for (h, t) in b.iter() {
        let id = *ids.entry(t).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        out.append(h, Atom::Oid(id)).expect("type preserved");
    }
    out
}

/// `sort(b)`: pairs ordered by tail value (stable).
pub fn sort_by_tail(b: &Bat) -> Bat {
    let (ht, tt) = b.types();
    let mut pairs: Vec<(Atom, Atom)> = b.iter().collect();
    pairs.sort_by(|a, c| a.1.cmp(&c.1));
    let mut out = Bat::new(out_type(ht), out_type(tt));
    for (h, t) in pairs {
        out.append(h, t).expect("type preserved");
    }
    out
}

/// Computes a numeric aggregate over the tail column.
pub fn aggregate(b: &Bat, kind: Aggregate) -> Result<Atom> {
    if kind == Aggregate::Count {
        return Ok(Atom::Int(b.len() as i64));
    }
    if b.is_empty() {
        return Err(MonetError::EmptyBat(format!("{kind:?}").to_lowercase()));
    }
    match kind {
        Aggregate::Min => b
            .tail()
            .iter()
            .min()
            .ok_or_else(|| MonetError::EmptyBat("min".into())),
        Aggregate::Max => b
            .tail()
            .iter()
            .max()
            .ok_or_else(|| MonetError::EmptyBat("max".into())),
        Aggregate::Sum | Aggregate::Avg => {
            let mut sum = 0.0f64;
            let mut all_int = true;
            let mut isum = 0i64;
            for t in b.tail().iter() {
                match &t {
                    Atom::Int(v) => {
                        isum = isum.wrapping_add(*v);
                        sum += *v as f64;
                    }
                    Atom::Dbl(v) => {
                        all_int = false;
                        sum += v;
                    }
                    other => {
                        return Err(MonetError::TypeMismatch {
                            expected: "numeric tail".into(),
                            found: other.to_string(),
                        })
                    }
                }
            }
            if kind == Aggregate::Sum {
                Ok(if all_int {
                    Atom::Int(isum)
                } else {
                    Atom::Dbl(sum)
                })
            } else {
                Ok(Atom::Dbl(sum / b.len() as f64))
            }
        }
        Aggregate::Count => unreachable!("handled above"),
    }
}

/// Grouped aggregation: `grouped(values, groups, kind)` where `groups`
/// assigns a group id to every head of `values`. Returns (group id, agg).
///
/// Heads of `values` absent from `groups` are silently dropped — the
/// historical semantics the vectorized operator replaces with a typed
/// [`MonetError::GroupMismatch`].
pub fn grouped_aggregate(values: &Bat, groups: &Bat, kind: Aggregate) -> Result<Bat> {
    let gidx = HashIndex::build(groups.head());
    let mut buckets: HashMap<Atom, Vec<Atom>> = HashMap::new();
    let mut order: Vec<Atom> = Vec::new();
    for (h, t) in values.iter() {
        let positions = gidx.lookup(&h);
        let gid = match positions.first() {
            Some(&p) => groups.tail_at(p)?,
            None => continue, // head absent from grouping — dropped
        };
        let bucket = buckets.entry(gid.clone()).or_insert_with(|| {
            order.push(gid.clone());
            Vec::new()
        });
        bucket.push(t);
    }
    let out_ty = if kind == Aggregate::Count {
        AtomType::Int
    } else {
        AtomType::Dbl
    };
    let mut out = Bat::new(out_type(groups.tail().atom_type()), out_ty);
    for gid in order {
        let vals = &buckets[&gid];
        let tmp = Bat::from_tail(
            vals.first().map(|a| a.atom_type()).unwrap_or(AtomType::Dbl),
            vals.iter().cloned(),
        )?;
        let mut agg = aggregate(&tmp, kind)?;
        if out_ty == AtomType::Dbl {
            agg = Atom::Dbl(agg.as_dbl()?);
        }
        out.append(gid, agg)?;
    }
    Ok(out)
}
