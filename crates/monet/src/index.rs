//! Hash indexes over BAT columns.
//!
//! Monet builds hash tables on demand to accelerate joins and point
//! selections. Two flavours live here:
//!
//! * [`HashIndex`] — the original atom-keyed index (each distinct [`Atom`]
//!   maps to the positions holding it). Retained as the naive reference
//!   the vectorized operators are differentially tested against.
//! * [`ColumnIndex`] — a typed index keyed by the column's native
//!   representation (`u64`, `i64`, f64 bit patterns, interned strings,
//!   bools), built once per `(bat, version)` and cached by the kernel.

use std::collections::HashMap;
use std::sync::Arc;

use crate::bat::{Column, ColumnData};
use crate::value::Atom;

/// A hash index over one BAT column.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    buckets: HashMap<Atom, Vec<usize>>,
}

impl HashIndex {
    /// Builds an index over every value of `column`.
    pub fn build(column: &Column) -> Self {
        let mut buckets: HashMap<Atom, Vec<usize>> = HashMap::with_capacity(column.len());
        for (pos, atom) in column.iter().enumerate() {
            buckets.entry(atom).or_default().push(pos);
        }
        HashIndex { buckets }
    }

    /// Positions whose value equals `key` (empty slice when absent).
    pub fn lookup(&self, key: &Atom) -> &[usize] {
        self.buckets.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.buckets.len()
    }

    /// Total number of indexed positions.
    pub fn entries(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// True when `key` occurs in the indexed column.
    pub fn contains(&self, key: &Atom) -> bool {
        self.buckets.contains_key(key)
    }
}

/// Largest magnitude below which `i64 -> f64` conversion is injective, so
/// an integral double identifies at most one `i64` key.
const EXACT_F64_INT: f64 = 9_007_199_254_740_992.0; // 2^53

/// A typed hash index over one materialized BAT column.
///
/// Keys use the column's native representation; `Dbl` keys are IEEE-754
/// bit patterns, which coincides exactly with [`Atom`] equality
/// (`total_cmp`): NaNs with equal payloads match, `0.0` and `-0.0` don't.
#[derive(Debug, Clone)]
pub enum ColumnIndex {
    /// Index over an `oid` column.
    U64(HashMap<u64, Vec<u32>>),
    /// Index over an `int` column.
    I64(HashMap<i64, Vec<u32>>),
    /// Index keyed by f64 bit patterns — built over a `dbl` column, or as
    /// a widened view over an `int` column for mixed-numeric joins.
    F64(HashMap<u64, Vec<u32>>),
    /// Index over a `str` column (keys share the column's intern pool).
    Str(HashMap<Arc<str>, Vec<u32>>),
    /// Index over a `bit` column: positions of `false` and `true`.
    Bit([Vec<u32>; 2]),
}

static NO_POSITIONS: &[u32] = &[];

impl ColumnIndex {
    /// Builds the natural typed index for `column`. Void columns return
    /// `None` — they answer lookups in O(1) arithmetic without any index.
    pub fn build(column: &Column) -> Option<ColumnIndex> {
        let data = column.data()?;
        Some(match data {
            ColumnData::Oid(v) => {
                let mut m: HashMap<u64, Vec<u32>> = HashMap::with_capacity(v.len());
                for (i, &x) in v.iter().enumerate() {
                    m.entry(x).or_default().push(i as u32);
                }
                ColumnIndex::U64(m)
            }
            ColumnData::Int(v) => {
                let mut m: HashMap<i64, Vec<u32>> = HashMap::with_capacity(v.len());
                for (i, &x) in v.iter().enumerate() {
                    m.entry(x).or_default().push(i as u32);
                }
                ColumnIndex::I64(m)
            }
            ColumnData::Dbl(v) => {
                let mut m: HashMap<u64, Vec<u32>> = HashMap::with_capacity(v.len());
                for (i, &x) in v.iter().enumerate() {
                    m.entry(x.to_bits()).or_default().push(i as u32);
                }
                ColumnIndex::F64(m)
            }
            ColumnData::Str(s) => {
                // Group positions per dictionary code first, then key the
                // buckets by the interned string.
                let mut per_code: HashMap<u32, Vec<u32>> = HashMap::with_capacity(s.dict_len());
                for (i, &c) in s.codes().iter().enumerate() {
                    per_code.entry(c).or_default().push(i as u32);
                }
                let mut m: HashMap<Arc<str>, Vec<u32>> = HashMap::with_capacity(per_code.len());
                for (c, positions) in per_code {
                    m.insert(Arc::clone(&s.dict()[c as usize]), positions);
                }
                ColumnIndex::Str(m)
            }
            ColumnData::Bit(v) => {
                let mut buckets = [Vec::new(), Vec::new()];
                for (i, &b) in v.iter().enumerate() {
                    buckets[usize::from(b)].push(i as u32);
                }
                ColumnIndex::Bit(buckets)
            }
        })
    }

    /// Builds a *widened* f64-bits index over a numeric column. Needed for
    /// mixed int/dbl joins: `Atom::Int(a) == Atom::Dbl(b)` holds by widened
    /// value, and above 2^53 several ints widen to the same double, so a
    /// plain `i64` index cannot answer double probes exactly.
    pub fn build_widened(column: &Column) -> Option<ColumnIndex> {
        match column.data()? {
            ColumnData::Int(v) => {
                let mut m: HashMap<u64, Vec<u32>> = HashMap::with_capacity(v.len());
                for (i, &x) in v.iter().enumerate() {
                    m.entry((x as f64).to_bits()).or_default().push(i as u32);
                }
                Some(ColumnIndex::F64(m))
            }
            ColumnData::Dbl(_) => ColumnIndex::build(column),
            _ => None,
        }
    }

    /// Positions holding `key` in an oid index.
    pub fn lookup_u64(&self, key: u64) -> &[u32] {
        match self {
            ColumnIndex::U64(m) => m.get(&key).map(Vec::as_slice).unwrap_or(NO_POSITIONS),
            _ => NO_POSITIONS,
        }
    }

    /// Positions holding `key` in an int index.
    pub fn lookup_i64(&self, key: i64) -> &[u32] {
        match self {
            ColumnIndex::I64(m) => m.get(&key).map(Vec::as_slice).unwrap_or(NO_POSITIONS),
            _ => NO_POSITIONS,
        }
    }

    /// Positions holding the double with bit pattern `bits`.
    pub fn lookup_f64_bits(&self, bits: u64) -> &[u32] {
        match self {
            ColumnIndex::F64(m) => m.get(&bits).map(Vec::as_slice).unwrap_or(NO_POSITIONS),
            _ => NO_POSITIONS,
        }
    }

    /// Positions holding `key` in a string index.
    pub fn lookup_str(&self, key: &str) -> &[u32] {
        match self {
            ColumnIndex::Str(m) => m.get(key).map(Vec::as_slice).unwrap_or(NO_POSITIONS),
            _ => NO_POSITIONS,
        }
    }

    /// Positions holding `key` in a bit index.
    pub fn lookup_bit(&self, key: bool) -> &[u32] {
        match self {
            ColumnIndex::Bit(b) => &b[usize::from(key)],
            _ => NO_POSITIONS,
        }
    }

    /// Positions whose value equals `key` under full [`Atom`] equality.
    ///
    /// Returns `None` when this index cannot answer the probe exactly —
    /// currently only a double probing an `i64` index beyond ±2^53, where
    /// several int keys widen to the same double; callers fall back to a
    /// widened index (see [`ColumnIndex::build_widened`]).
    pub fn lookup_atom(&self, key: &Atom) -> Option<&[u32]> {
        Some(match (self, key) {
            (ColumnIndex::U64(_), Atom::Oid(o)) => self.lookup_u64(*o),
            (ColumnIndex::I64(_), Atom::Int(i)) => self.lookup_i64(*i),
            (ColumnIndex::I64(_), Atom::Dbl(d)) => {
                // -0.0 != 0.0 under total_cmp, so -0.0 matches no int.
                if d.to_bits() == (-0.0f64).to_bits() {
                    NO_POSITIONS
                } else if d.fract() == 0.0 && d.abs() < EXACT_F64_INT {
                    // Strictly below 2^53 every integral double has exactly
                    // one widening i64 preimage; at 2^53 collisions begin.
                    self.lookup_i64(*d as i64)
                } else if d.is_finite() && d.fract() == 0.0 {
                    return None; // inexact beyond 2^53
                } else {
                    NO_POSITIONS // fractional, infinite or NaN: no int equals it
                }
            }
            (ColumnIndex::F64(_), Atom::Dbl(d)) => self.lookup_f64_bits(d.to_bits()),
            (ColumnIndex::F64(_), Atom::Int(i)) => self.lookup_f64_bits((*i as f64).to_bits()),
            (ColumnIndex::Str(_), Atom::Str(s)) => self.lookup_str(s),
            (ColumnIndex::Bit(_), Atom::Bit(b)) => self.lookup_bit(*b),
            // Cross-type atom equality is always false.
            _ => NO_POSITIONS,
        })
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        match self {
            ColumnIndex::U64(m) => m.len(),
            ColumnIndex::I64(m) => m.len(),
            ColumnIndex::F64(m) => m.len(),
            ColumnIndex::Str(m) => m.len(),
            ColumnIndex::Bit(b) => b.iter().filter(|v| !v.is_empty()).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::Bat;
    use crate::value::AtomType;

    #[test]
    fn index_finds_all_positions_of_duplicates() {
        let b = Bat::from_tail(
            AtomType::Str,
            ["a", "b", "a", "c", "a"].into_iter().map(Atom::str),
        )
        .unwrap();
        let idx = HashIndex::build(b.tail());
        assert_eq!(idx.lookup(&Atom::str("a")), &[0, 2, 4]);
        assert_eq!(idx.lookup(&Atom::str("c")), &[3]);
        assert!(idx.lookup(&Atom::str("zz")).is_empty());
        assert_eq!(idx.distinct(), 3);
        assert_eq!(idx.entries(), 5);
    }

    #[test]
    fn index_over_void_column_is_positional() {
        let b = Bat::from_tail(AtomType::Int, (0..4).map(Atom::Int)).unwrap();
        let idx = HashIndex::build(b.head());
        assert_eq!(idx.lookup(&Atom::Oid(2)), &[2]);
        assert!(idx.contains(&Atom::Oid(0)));
        assert!(!idx.contains(&Atom::Oid(9)));
    }

    #[test]
    fn typed_index_matches_atom_index_per_type() {
        let ints = Bat::from_tail(AtomType::Int, [3, 1, 3, 2].map(Atom::Int)).unwrap();
        let idx = ColumnIndex::build(ints.tail()).unwrap();
        assert_eq!(idx.lookup_i64(3), &[0, 2]);
        assert_eq!(idx.lookup_i64(9), NO_POSITIONS);
        assert_eq!(idx.distinct(), 3);

        let strs =
            Bat::from_tail(AtomType::Str, ["x", "y", "x"].into_iter().map(Atom::str)).unwrap();
        let sidx = ColumnIndex::build(strs.tail()).unwrap();
        assert_eq!(sidx.lookup_str("x"), &[0, 2]);
        assert_eq!(sidx.lookup_str("nope"), NO_POSITIONS);

        let bits = Bat::from_tail(AtomType::Bit, [true, false, true].map(Atom::Bit)).unwrap();
        let bidx = ColumnIndex::build(bits.tail()).unwrap();
        assert_eq!(bidx.lookup_bit(true), &[0, 2]);
        assert_eq!(bidx.lookup_bit(false), &[1]);
    }

    #[test]
    fn void_columns_have_no_index() {
        let b = Bat::from_tail(AtomType::Int, (0..4).map(Atom::Int)).unwrap();
        assert!(ColumnIndex::build(b.head()).is_none());
    }

    #[test]
    fn atom_lookup_honours_total_order_equality() {
        let d = Bat::from_tail(AtomType::Dbl, [0.0, -0.0, f64::NAN, 2.0].map(Atom::Dbl)).unwrap();
        let idx = ColumnIndex::build(d.tail()).unwrap();
        assert_eq!(idx.lookup_atom(&Atom::Dbl(0.0)).unwrap(), &[0]);
        assert_eq!(idx.lookup_atom(&Atom::Dbl(-0.0)).unwrap(), &[1]);
        assert_eq!(idx.lookup_atom(&Atom::Dbl(f64::NAN)).unwrap(), &[2]);
        // Mixed numeric equality: Int(2) == Dbl(2.0).
        assert_eq!(idx.lookup_atom(&Atom::Int(2)).unwrap(), &[3]);
        // Cross-type equality is false.
        assert_eq!(idx.lookup_atom(&Atom::str("2")).unwrap(), NO_POSITIONS);
    }

    #[test]
    fn int_index_answers_small_double_probes() {
        let b = Bat::from_tail(AtomType::Int, [4, 7].map(Atom::Int)).unwrap();
        let idx = ColumnIndex::build(b.tail()).unwrap();
        assert_eq!(idx.lookup_atom(&Atom::Dbl(4.0)).unwrap(), &[0]);
        assert_eq!(idx.lookup_atom(&Atom::Dbl(4.5)).unwrap(), NO_POSITIONS);
        assert_eq!(idx.lookup_atom(&Atom::Dbl(-0.0)).unwrap(), NO_POSITIONS);
        assert_eq!(idx.lookup_atom(&Atom::Dbl(f64::NAN)).unwrap(), NO_POSITIONS);
    }

    #[test]
    fn widened_index_handles_large_int_collisions() {
        // Both ints widen to the same double.
        let big = 9_007_199_254_740_992i64; // 2^53
        let b = Bat::from_tail(AtomType::Int, [big, big + 1].map(Atom::Int)).unwrap();
        let idx = ColumnIndex::build(b.tail()).unwrap();
        // The natural i64 index cannot answer this probe exactly.
        assert!(idx.lookup_atom(&Atom::Dbl(big as f64)).is_none());
        let widened = ColumnIndex::build_widened(b.tail()).unwrap();
        let hits = widened.lookup_atom(&Atom::Dbl(big as f64)).unwrap();
        assert_eq!(hits, &[0, 1]);
    }
}
