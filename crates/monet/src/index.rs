//! Hash indexes over BAT columns.
//!
//! Monet builds hash tables on demand to accelerate joins and point
//! selections; [`HashIndex`] plays the same role here. An index maps each
//! distinct atom of a column to the list of positions holding it.

use std::collections::HashMap;

use crate::bat::Column;
use crate::value::Atom;

/// A hash index over one BAT column.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    buckets: HashMap<Atom, Vec<usize>>,
}

impl HashIndex {
    /// Builds an index over every value of `column`.
    pub fn build(column: &Column) -> Self {
        let mut buckets: HashMap<Atom, Vec<usize>> = HashMap::with_capacity(column.len());
        for (pos, atom) in column.iter().enumerate() {
            buckets.entry(atom).or_default().push(pos);
        }
        HashIndex { buckets }
    }

    /// Positions whose value equals `key` (empty slice when absent).
    pub fn lookup(&self, key: &Atom) -> &[usize] {
        self.buckets.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.buckets.len()
    }

    /// Total number of indexed positions.
    pub fn entries(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// True when `key` occurs in the indexed column.
    pub fn contains(&self, key: &Atom) -> bool {
        self.buckets.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::Bat;
    use crate::value::AtomType;

    #[test]
    fn index_finds_all_positions_of_duplicates() {
        let b = Bat::from_tail(
            AtomType::Str,
            ["a", "b", "a", "c", "a"].into_iter().map(Atom::str),
        )
        .unwrap();
        let idx = HashIndex::build(b.tail());
        assert_eq!(idx.lookup(&Atom::str("a")), &[0, 2, 4]);
        assert_eq!(idx.lookup(&Atom::str("c")), &[3]);
        assert!(idx.lookup(&Atom::str("zz")).is_empty());
        assert_eq!(idx.distinct(), 3);
        assert_eq!(idx.entries(), 5);
    }

    #[test]
    fn index_over_void_column_is_positional() {
        let b = Bat::from_tail(AtomType::Int, (0..4).map(Atom::Int)).unwrap();
        let idx = HashIndex::build(b.head());
        assert_eq!(idx.lookup(&Atom::Oid(2)), &[2]);
        assert!(idx.contains(&Atom::Oid(0)));
        assert!(!idx.contains(&Atom::Oid(9)));
    }
}
