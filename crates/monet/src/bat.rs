//! Binary Association Tables.
//!
//! A [`Bat`] is a two-column table of (head, tail) atom pairs — Monet's only
//! collection type. Either column may be *void*: a dense run of object
//! identifiers `seqbase, seqbase+1, …` that is never materialized, which is
//! how Monet stores positional columns for free.

use crate::error::{MonetError, Result};
use crate::value::{Atom, AtomType};

/// One column of a BAT: either a dense void run or materialized atoms.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Column {
    /// Dense object identifiers `seqbase .. seqbase + len`, not stored.
    Void {
        /// First oid of the dense run.
        seqbase: u64,
        /// Number of (virtual) entries.
        len: usize,
    },
    /// Materialized atoms, all of one declared type.
    Atoms {
        /// Declared element type.
        ty: AtomType,
        /// The values.
        data: Vec<Atom>,
    },
}

impl Column {
    /// An empty column of the given type (`Void` columns start at seqbase 0).
    pub fn empty(ty: AtomType) -> Self {
        match ty {
            AtomType::Void => Column::Void { seqbase: 0, len: 0 },
            other => Column::Atoms {
                ty: other,
                data: Vec::new(),
            },
        }
    }

    /// Number of entries (virtual for void columns).
    pub fn len(&self) -> usize {
        match self {
            Column::Void { len, .. } => *len,
            Column::Atoms { data, .. } => data.len(),
        }
    }

    /// True when the column holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Declared element type.
    pub fn atom_type(&self) -> AtomType {
        match self {
            Column::Void { .. } => AtomType::Void,
            Column::Atoms { ty, .. } => *ty,
        }
    }

    /// Value at position `i`; void columns materialize `Oid(seqbase + i)`.
    pub fn at(&self, i: usize) -> Result<Atom> {
        match self {
            Column::Void { seqbase, len } => {
                if i < *len {
                    Ok(Atom::Oid(seqbase + i as u64))
                } else {
                    Err(MonetError::OutOfRange {
                        index: i,
                        len: *len,
                    })
                }
            }
            Column::Atoms { data, .. } => data.get(i).cloned().ok_or(MonetError::OutOfRange {
                index: i,
                len: data.len(),
            }),
        }
    }

    /// Appends a value. On a void column only the *next* dense oid (or no
    /// value at all, see [`Bat::append_void`]) is accepted.
    pub fn push(&mut self, value: Atom) -> Result<()> {
        match self {
            Column::Void { seqbase, len } => {
                let expected = *seqbase + *len as u64;
                match value {
                    Atom::Oid(o) if o == expected => {
                        *len += 1;
                        Ok(())
                    }
                    other => Err(MonetError::TypeMismatch {
                        expected: format!("dense oid {expected}@0"),
                        found: other.to_string(),
                    }),
                }
            }
            Column::Atoms { ty, data } => {
                if value.atom_type() == *ty
                    || (value.is_numeric() && matches!(ty, AtomType::Dbl | AtomType::Int))
                {
                    // Numeric widening: an int appended to a dbl column is
                    // stored as dbl so the column stays homogeneous.
                    let coerced = match (*ty, &value) {
                        (AtomType::Dbl, Atom::Int(v)) => Atom::Dbl(*v as f64),
                        (AtomType::Int, Atom::Dbl(_)) => {
                            return Err(MonetError::TypeMismatch {
                                expected: "int".into(),
                                found: value.to_string(),
                            })
                        }
                        _ => value,
                    };
                    data.push(coerced);
                    Ok(())
                } else {
                    Err(MonetError::TypeMismatch {
                        expected: ty.name().into(),
                        found: format!("{} ({value})", value.atom_type()),
                    })
                }
            }
        }
    }

    /// Extends a void column by one virtual entry.
    fn push_void(&mut self) -> Result<()> {
        match self {
            Column::Void { len, .. } => {
                *len += 1;
                Ok(())
            }
            Column::Atoms { ty, .. } => Err(MonetError::TypeMismatch {
                expected: "void".into(),
                found: ty.name().into(),
            }),
        }
    }

    /// Iterates the column's (possibly virtual) values.
    pub fn iter(&self) -> ColumnIter<'_> {
        ColumnIter { col: self, pos: 0 }
    }

    /// Materializes the column into a plain atom vector.
    pub fn to_vec(&self) -> Vec<Atom> {
        self.iter().collect()
    }
}

/// Iterator over a [`Column`]'s values.
pub struct ColumnIter<'a> {
    col: &'a Column,
    pos: usize,
}

impl Iterator for ColumnIter<'_> {
    type Item = Atom;

    fn next(&mut self) -> Option<Atom> {
        if self.pos < self.col.len() {
            let v = self.col.at(self.pos).expect("in-range access");
            self.pos += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.col.len() - self.pos;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for ColumnIter<'_> {}

/// A Binary Association Table: the pair of a head and a tail column of
/// equal length.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Bat {
    head: Column,
    tail: Column,
}

impl Bat {
    /// Creates an empty BAT with the given column types.
    pub fn new(head: AtomType, tail: AtomType) -> Self {
        Bat {
            head: Column::empty(head),
            tail: Column::empty(tail),
        }
    }

    /// Builds a void-headed BAT from tail values (the common Monet layout).
    pub fn from_tail(ty: AtomType, values: impl IntoIterator<Item = Atom>) -> Result<Self> {
        let mut bat = Bat::new(AtomType::Void, ty);
        for v in values {
            bat.append_void(v)?;
        }
        Ok(bat)
    }

    /// Builds a BAT from (head, tail) pairs, inferring nothing: the declared
    /// types are explicit.
    pub fn from_pairs(
        head_ty: AtomType,
        tail_ty: AtomType,
        pairs: impl IntoIterator<Item = (Atom, Atom)>,
    ) -> Result<Self> {
        let mut bat = Bat::new(head_ty, tail_ty);
        for (h, t) in pairs {
            bat.append(h, t)?;
        }
        Ok(bat)
    }

    /// Head column.
    pub fn head(&self) -> &Column {
        &self.head
    }

    /// Tail column.
    pub fn tail(&self) -> &Column {
        &self.tail
    }

    /// Number of pairs (`count` in MIL).
    pub fn len(&self) -> usize {
        self.head.len()
    }

    /// True when the BAT holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Declared (head, tail) types.
    pub fn types(&self) -> (AtomType, AtomType) {
        (self.head.atom_type(), self.tail.atom_type())
    }

    /// Appends an explicit (head, tail) pair (`insert` in MIL).
    pub fn append(&mut self, head: Atom, tail: Atom) -> Result<()> {
        self.head.push(head)?;
        // Keep columns equal length even if the tail push fails.
        if let Err(e) = self.tail.push(tail) {
            self.pop_head();
            return Err(e);
        }
        Ok(())
    }

    /// Appends a tail value under a dense void head.
    pub fn append_void(&mut self, tail: Atom) -> Result<()> {
        self.head.push_void()?;
        if let Err(e) = self.tail.push(tail) {
            self.pop_head();
            return Err(e);
        }
        Ok(())
    }

    fn pop_head(&mut self) {
        match &mut self.head {
            Column::Void { len, .. } => *len -= 1,
            Column::Atoms { data, .. } => {
                data.pop();
            }
        }
    }

    /// Head value at position `i`.
    pub fn head_at(&self, i: usize) -> Result<Atom> {
        self.head.at(i)
    }

    /// Tail value at position `i`.
    pub fn tail_at(&self, i: usize) -> Result<Atom> {
        self.tail.at(i)
    }

    /// Iterates (head, tail) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Atom, Atom)> + '_ {
        self.head.iter().zip(self.tail.iter())
    }

    /// `reverse`: swaps head and tail columns in O(1) (columns are moved,
    /// not copied, when called on an owned BAT; here we clone).
    pub fn reverse(&self) -> Bat {
        Bat {
            head: self.tail.clone(),
            tail: self.head.clone(),
        }
    }

    /// `mirror`: pairs every head value with itself.
    pub fn mirror(&self) -> Bat {
        Bat {
            head: self.head.clone(),
            tail: self.head.clone(),
        }
    }

    /// `mark`: pairs every head value with a dense oid run starting at
    /// `seqbase` — Monet's way of (re)numbering rows.
    pub fn mark(&self, seqbase: u64) -> Bat {
        Bat {
            head: self.head.clone(),
            tail: Column::Void {
                seqbase,
                len: self.len(),
            },
        }
    }

    /// `find`: tail value of the first pair whose head equals `key`.
    pub fn find(&self, key: &Atom) -> Option<Atom> {
        // Void heads permit O(1) positional lookup.
        if let Column::Void { seqbase, len } = &self.head {
            if let Atom::Oid(o) = key {
                if *o >= *seqbase && ((*o - *seqbase) as usize) < *len {
                    return self.tail.at((*o - *seqbase) as usize).ok();
                }
            }
            return None;
        }
        self.iter().find(|(h, _)| h == key).map(|(_, t)| t)
    }

    /// `slice`: pairs at positions `lo..hi` (clamped).
    pub fn slice(&self, lo: usize, hi: usize) -> Bat {
        let hi = hi.min(self.len());
        let lo = lo.min(hi);
        let mut out = Bat::new(
            match self.head.atom_type() {
                AtomType::Void => AtomType::Oid, // slicing breaks density
                t => t,
            },
            match self.tail.atom_type() {
                AtomType::Void => AtomType::Oid,
                t => t,
            },
        );
        for i in lo..hi {
            out.append(self.head.at(i).unwrap(), self.tail.at(i).unwrap())
                .expect("types preserved by slice");
        }
        out
    }

    /// Replaces the tail of the first pair whose head equals `key`, or
    /// appends the pair when absent (`replace` in MIL).
    pub fn replace(&mut self, key: Atom, tail: Atom) -> Result<()> {
        let pos = self.iter().position(|(h, _)| h == key);
        match pos {
            Some(i) => match &mut self.tail {
                Column::Atoms { ty, data } => {
                    if tail.atom_type() != *ty && !(tail.is_numeric() && *ty == AtomType::Dbl) {
                        return Err(MonetError::TypeMismatch {
                            expected: ty.name().into(),
                            found: tail.to_string(),
                        });
                    }
                    data[i] = match (*ty, tail) {
                        (AtomType::Dbl, Atom::Int(v)) => Atom::Dbl(v as f64),
                        (_, t) => t,
                    };
                    Ok(())
                }
                Column::Void { .. } => Err(MonetError::TypeMismatch {
                    expected: "materialized tail".into(),
                    found: "void".into(),
                }),
            },
            None => self.append(key, tail),
        }
    }
}

impl Default for Bat {
    /// A void-headed oid-tailed BAT (an empty pairing).
    fn default() -> Self {
        Bat::new(AtomType::Void, AtomType::Oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dbl_bat(values: &[f64]) -> Bat {
        Bat::from_tail(AtomType::Dbl, values.iter().map(|v| Atom::Dbl(*v))).unwrap()
    }

    #[test]
    fn void_head_is_dense_and_virtual() {
        let b = dbl_bat(&[1.0, 2.0, 3.0]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.head_at(0).unwrap(), Atom::Oid(0));
        assert_eq!(b.head_at(2).unwrap(), Atom::Oid(2));
        assert!(b.head_at(3).is_err());
    }

    #[test]
    fn append_rejects_wrong_tail_type_and_keeps_columns_aligned() {
        let mut b = Bat::new(AtomType::Void, AtomType::Dbl);
        b.append_void(Atom::Dbl(1.0)).unwrap();
        assert!(b.append_void(Atom::str("oops")).is_err());
        assert_eq!(b.len(), 1);
        b.append_void(Atom::Dbl(2.0)).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn int_widens_into_dbl_column() {
        let mut b = Bat::new(AtomType::Void, AtomType::Dbl);
        b.append_void(Atom::Int(4)).unwrap();
        assert_eq!(b.tail_at(0).unwrap(), Atom::Dbl(4.0));
    }

    #[test]
    fn dbl_into_int_column_is_rejected() {
        let mut b = Bat::new(AtomType::Void, AtomType::Int);
        assert!(b.append_void(Atom::Dbl(1.5)).is_err());
    }

    #[test]
    fn reverse_swaps_columns() {
        let b = dbl_bat(&[5.0, 6.0]);
        let r = b.reverse();
        assert_eq!(r.head_at(0).unwrap(), Atom::Dbl(5.0));
        assert_eq!(r.tail_at(0).unwrap(), Atom::Oid(0));
        assert_eq!(r.reverse(), b);
    }

    #[test]
    fn mirror_pairs_head_with_itself() {
        let b = Bat::from_pairs(
            AtomType::Str,
            AtomType::Int,
            [(Atom::str("a"), Atom::Int(1))],
        )
        .unwrap();
        let m = b.mirror();
        assert_eq!(m.tail_at(0).unwrap(), Atom::str("a"));
    }

    #[test]
    fn mark_renumbers_with_dense_oids() {
        let b = dbl_bat(&[1.0, 2.0]);
        let m = b.reverse().mark(100);
        assert_eq!(m.tail_at(0).unwrap(), Atom::Oid(100));
        assert_eq!(m.tail_at(1).unwrap(), Atom::Oid(101));
    }

    #[test]
    fn find_on_void_head_is_positional() {
        let b = dbl_bat(&[9.0, 8.0, 7.0]);
        assert_eq!(b.find(&Atom::Oid(1)), Some(Atom::Dbl(8.0)));
        assert_eq!(b.find(&Atom::Oid(5)), None);
        assert_eq!(b.find(&Atom::Int(1)), None);
    }

    #[test]
    fn find_on_materialized_head_scans() {
        let b = Bat::from_pairs(
            AtomType::Str,
            AtomType::Int,
            [
                (Atom::str("schumacher"), Atom::Int(1)),
                (Atom::str("hakkinen"), Atom::Int(2)),
            ],
        )
        .unwrap();
        assert_eq!(b.find(&Atom::str("hakkinen")), Some(Atom::Int(2)));
        assert_eq!(b.find(&Atom::str("montoya")), None);
    }

    #[test]
    fn slice_clamps_and_materializes_voids() {
        let b = dbl_bat(&[1.0, 2.0, 3.0, 4.0]);
        let s = b.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.head_at(0).unwrap(), Atom::Oid(1));
        assert_eq!(s.tail_at(1).unwrap(), Atom::Dbl(3.0));
        assert_eq!(b.slice(3, 100).len(), 1);
        assert_eq!(b.slice(10, 2).len(), 0);
    }

    #[test]
    fn replace_updates_or_appends() {
        let mut b = Bat::from_pairs(
            AtomType::Str,
            AtomType::Dbl,
            [(Atom::str("Service"), Atom::Dbl(0.1))],
        )
        .unwrap();
        b.replace(Atom::str("Service"), Atom::Dbl(0.9)).unwrap();
        assert_eq!(b.find(&Atom::str("Service")), Some(Atom::Dbl(0.9)));
        b.replace(Atom::str("Smash"), Atom::Dbl(0.3)).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn iterator_yields_pairs_in_order() {
        let b = dbl_bat(&[1.0, 2.0]);
        let pairs: Vec<_> = b.iter().collect();
        assert_eq!(
            pairs,
            vec![
                (Atom::Oid(0), Atom::Dbl(1.0)),
                (Atom::Oid(1), Atom::Dbl(2.0)),
            ]
        );
    }
}
