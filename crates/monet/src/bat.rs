//! Binary Association Tables.
//!
//! A [`Bat`] is a two-column table of (head, tail) atom pairs — Monet's only
//! collection type. Either column may be *void*: a dense run of object
//! identifiers `seqbase, seqbase+1, …` that is never materialized, which is
//! how Monet stores positional columns for free.
//!
//! Storage is **columnar and typed**: a materialized column holds one
//! specialized vector per atom type ([`ColumnData`]) instead of a
//! `Vec<Atom>` of tagged enums. String columns are dictionary-encoded
//! against an `Arc<str>` intern pool ([`StrColumn`]), so equal strings are
//! stored once and row storage is a `u32` code. The [`Atom`]-level API
//! (`at`, `push`, `iter`) survives as a compatibility shim; hot operator
//! paths use the typed-slice accessors (`oids`, `ints`, `dbls`, `bits`,
//! `strs`, `void_run`) and the positional [`Column::gather`] primitive.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{MonetError, Result};
use crate::value::{Atom, AtomType};

/// A dictionary-encoded string column: row storage is a `u32` code into a
/// shared `Arc<str>` intern pool.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct StrColumn {
    /// code -> string.
    dict: Vec<Arc<str>>,
    /// row -> code.
    codes: Vec<u32>,
    /// string -> code (intern map; always consistent with `dict`).
    interned: HashMap<Arc<str>, u32>,
}

impl StrColumn {
    /// An empty string column.
    pub fn new() -> Self {
        StrColumn::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct strings in the dictionary.
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// The per-row dictionary codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The dictionary, indexed by code.
    pub fn dict(&self) -> &[Arc<str>] {
        &self.dict
    }

    /// The dictionary code of `s`, if interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.interned.get(s).copied()
    }

    /// Rebuilds a column from a dictionary and per-row codes (the snapshot
    /// wire format). Every code must index into `dict`; the intern map is
    /// reconstructed, keeping later duplicates consistent with
    /// [`push`](Self::push) (first occurrence wins).
    pub fn from_parts(dict: Vec<Arc<str>>, codes: Vec<u32>) -> Result<Self> {
        if let Some(&bad) = codes.iter().find(|&&c| c as usize >= dict.len()) {
            return Err(MonetError::OutOfRange {
                index: bad as usize,
                len: dict.len(),
            });
        }
        let mut interned = HashMap::with_capacity(dict.len());
        for (i, s) in dict.iter().enumerate() {
            interned.entry(Arc::clone(s)).or_insert(i as u32);
        }
        Ok(StrColumn {
            dict,
            codes,
            interned,
        })
    }

    /// The string at row `i` (panics when out of range; callers bound-check).
    pub fn value(&self, i: usize) -> &Arc<str> {
        &self.dict[self.codes[i] as usize]
    }

    /// Interns `s` (if new) and appends its code as a row.
    pub fn push(&mut self, s: Arc<str>) {
        let code = match self.interned.get(s.as_ref()) {
            Some(&c) => c,
            None => {
                let c = self.dict.len() as u32;
                self.dict.push(Arc::clone(&s));
                self.interned.insert(s, c);
                c
            }
        };
        self.codes.push(code);
    }

    /// Overwrites row `i` with `s`, interning as needed.
    fn set(&mut self, i: usize, s: Arc<str>) {
        let code = match self.interned.get(s.as_ref()) {
            Some(&c) => c,
            None => {
                let c = self.dict.len() as u32;
                self.dict.push(Arc::clone(&s));
                self.interned.insert(s, c);
                c
            }
        };
        self.codes[i] = code;
    }

    /// Rows at the given positions, sharing this column's dictionary.
    pub fn gather(&self, idx: &[u32]) -> StrColumn {
        StrColumn {
            dict: self.dict.clone(),
            codes: idx.iter().map(|&i| self.codes[i as usize]).collect(),
            interned: self.interned.clone(),
        }
    }

    /// Ranks of each dictionary code under lexicographic string order, so
    /// rows can be compared by `rank[code]` without touching the strings.
    pub fn dict_ranks(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.dict.len() as u32).collect();
        order.sort_by(|&a, &b| self.dict[a as usize].cmp(&self.dict[b as usize]));
        let mut ranks = vec![0u32; self.dict.len()];
        for (rank, &code) in order.iter().enumerate() {
            ranks[code as usize] = rank as u32;
        }
        ranks
    }
}

impl PartialEq for StrColumn {
    /// Row-wise logical equality; dictionaries may differ in layout.
    fn eq(&self, other: &Self) -> bool {
        self.codes.len() == other.codes.len()
            && self
                .codes
                .iter()
                .zip(&other.codes)
                .all(|(&a, &b)| self.dict[a as usize] == other.dict[b as usize])
    }
}

/// Typed storage for one materialized column.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ColumnData {
    /// Object identifiers.
    Oid(Vec<u64>),
    /// Integers.
    Int(Vec<i64>),
    /// Doubles.
    Dbl(Vec<f64>),
    /// Dictionary-encoded strings.
    Str(StrColumn),
    /// Booleans.
    Bit(Vec<bool>),
}

impl ColumnData {
    /// An empty typed vector for `ty` (which must not be `Void`).
    fn empty(ty: AtomType) -> Self {
        match ty {
            AtomType::Oid => ColumnData::Oid(Vec::new()),
            AtomType::Int => ColumnData::Int(Vec::new()),
            AtomType::Dbl => ColumnData::Dbl(Vec::new()),
            AtomType::Str => ColumnData::Str(StrColumn::new()),
            AtomType::Bit => ColumnData::Bit(Vec::new()),
            AtomType::Void => unreachable!("void columns are not materialized"),
        }
    }

    /// Element type.
    pub fn atom_type(&self) -> AtomType {
        match self {
            ColumnData::Oid(_) => AtomType::Oid,
            ColumnData::Int(_) => AtomType::Int,
            ColumnData::Dbl(_) => AtomType::Dbl,
            ColumnData::Str(_) => AtomType::Str,
            ColumnData::Bit(_) => AtomType::Bit,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Oid(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Dbl(v) => v.len(),
            ColumnData::Str(s) => s.len(),
            ColumnData::Bit(v) => v.len(),
        }
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn at(&self, i: usize) -> Option<Atom> {
        match self {
            ColumnData::Oid(v) => v.get(i).map(|&x| Atom::Oid(x)),
            ColumnData::Int(v) => v.get(i).map(|&x| Atom::Int(x)),
            ColumnData::Dbl(v) => v.get(i).map(|&x| Atom::Dbl(x)),
            ColumnData::Str(s) => (i < s.len()).then(|| Atom::Str(Arc::clone(s.value(i)))),
            ColumnData::Bit(v) => v.get(i).map(|&x| Atom::Bit(x)),
        }
    }

    fn pop(&mut self) {
        match self {
            ColumnData::Oid(v) => {
                v.pop();
            }
            ColumnData::Int(v) => {
                v.pop();
            }
            ColumnData::Dbl(v) => {
                v.pop();
            }
            ColumnData::Str(s) => {
                s.codes.pop();
            }
            ColumnData::Bit(v) => {
                v.pop();
            }
        }
    }

    /// Appends `value`, widening ints into dbl columns; any other type
    /// mismatch is a typed error.
    fn push(&mut self, value: Atom) -> Result<()> {
        match (self, value) {
            (ColumnData::Oid(v), Atom::Oid(x)) => v.push(x),
            (ColumnData::Int(v), Atom::Int(x)) => v.push(x),
            (ColumnData::Dbl(v), Atom::Dbl(x)) => v.push(x),
            // Numeric widening: an int appended to a dbl column is stored
            // as dbl so the column stays homogeneous.
            (ColumnData::Dbl(v), Atom::Int(x)) => v.push(x as f64),
            (ColumnData::Str(s), Atom::Str(x)) => s.push(x),
            (ColumnData::Bit(v), Atom::Bit(x)) => v.push(x),
            (data, value) => {
                return Err(MonetError::TypeMismatch {
                    expected: data.atom_type().name().into(),
                    found: format!("{} ({value})", value.atom_type()),
                })
            }
        }
        Ok(())
    }

    /// Overwrites row `i`, with the same coercion rules as [`push`](Self::push).
    fn set(&mut self, i: usize, value: Atom) -> Result<()> {
        match (self, value) {
            (ColumnData::Oid(v), Atom::Oid(x)) => v[i] = x,
            (ColumnData::Int(v), Atom::Int(x)) => v[i] = x,
            (ColumnData::Dbl(v), Atom::Dbl(x)) => v[i] = x,
            (ColumnData::Dbl(v), Atom::Int(x)) => v[i] = x as f64,
            (ColumnData::Str(s), Atom::Str(x)) => s.set(i, x),
            (ColumnData::Bit(v), Atom::Bit(x)) => v[i] = x,
            (data, value) => {
                return Err(MonetError::TypeMismatch {
                    expected: data.atom_type().name().into(),
                    found: value.to_string(),
                })
            }
        }
        Ok(())
    }

    /// Rows at the given positions, as a fresh typed vector.
    pub fn gather(&self, idx: &[u32]) -> ColumnData {
        match self {
            ColumnData::Oid(v) => ColumnData::Oid(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Int(v) => ColumnData::Int(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Dbl(v) => ColumnData::Dbl(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Str(s) => ColumnData::Str(s.gather(idx)),
            ColumnData::Bit(v) => ColumnData::Bit(idx.iter().map(|&i| v[i as usize]).collect()),
        }
    }
}

/// One column of a BAT: either a dense void run or typed materialized data.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum Column {
    /// Dense object identifiers `seqbase .. seqbase + len`, not stored.
    Void {
        /// First oid of the dense run.
        seqbase: u64,
        /// Number of (virtual) entries.
        len: usize,
    },
    /// Materialized typed data.
    Data(ColumnData),
}

impl Column {
    /// An empty column of the given type (`Void` columns start at seqbase 0).
    pub fn empty(ty: AtomType) -> Self {
        match ty {
            AtomType::Void => Column::Void { seqbase: 0, len: 0 },
            other => Column::Data(ColumnData::empty(other)),
        }
    }

    /// Wraps typed data as a column.
    pub fn from_data(data: ColumnData) -> Self {
        Column::Data(data)
    }

    /// Number of entries (virtual for void columns).
    pub fn len(&self) -> usize {
        match self {
            Column::Void { len, .. } => *len,
            Column::Data(d) => d.len(),
        }
    }

    /// True when the column holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Declared element type.
    pub fn atom_type(&self) -> AtomType {
        match self {
            Column::Void { .. } => AtomType::Void,
            Column::Data(d) => d.atom_type(),
        }
    }

    /// The dense run `(seqbase, len)` of a void column.
    pub fn void_run(&self) -> Option<(u64, usize)> {
        match self {
            Column::Void { seqbase, len } => Some((*seqbase, *len)),
            Column::Data(_) => None,
        }
    }

    /// The typed data of a materialized column.
    pub fn data(&self) -> Option<&ColumnData> {
        match self {
            Column::Void { .. } => None,
            Column::Data(d) => Some(d),
        }
    }

    /// Typed slice accessor: materialized oids.
    pub fn oids(&self) -> Option<&[u64]> {
        match self {
            Column::Data(ColumnData::Oid(v)) => Some(v),
            _ => None,
        }
    }

    /// Typed slice accessor: ints.
    pub fn ints(&self) -> Option<&[i64]> {
        match self {
            Column::Data(ColumnData::Int(v)) => Some(v),
            _ => None,
        }
    }

    /// Typed slice accessor: dbls.
    pub fn dbls(&self) -> Option<&[f64]> {
        match self {
            Column::Data(ColumnData::Dbl(v)) => Some(v),
            _ => None,
        }
    }

    /// Typed slice accessor: bits.
    pub fn bits(&self) -> Option<&[bool]> {
        match self {
            Column::Data(ColumnData::Bit(v)) => Some(v),
            _ => None,
        }
    }

    /// Typed accessor: the dictionary-encoded string column.
    pub fn strs(&self) -> Option<&StrColumn> {
        match self {
            Column::Data(ColumnData::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Value at position `i`; void columns materialize `Oid(seqbase + i)`.
    pub fn at(&self, i: usize) -> Result<Atom> {
        match self {
            Column::Void { seqbase, len } => {
                if i < *len {
                    Ok(Atom::Oid(seqbase + i as u64))
                } else {
                    Err(MonetError::OutOfRange {
                        index: i,
                        len: *len,
                    })
                }
            }
            Column::Data(d) => d.at(i).ok_or(MonetError::OutOfRange {
                index: i,
                len: d.len(),
            }),
        }
    }

    /// Appends a value. On a void column only the *next* dense oid (or no
    /// value at all, see [`Bat::append_void`]) is accepted.
    pub fn push(&mut self, value: Atom) -> Result<()> {
        match self {
            Column::Void { seqbase, len } => {
                let expected = *seqbase + *len as u64;
                match value {
                    Atom::Oid(o) if o == expected => {
                        *len += 1;
                        Ok(())
                    }
                    other => Err(MonetError::TypeMismatch {
                        expected: format!("dense oid {expected}@0"),
                        found: other.to_string(),
                    }),
                }
            }
            Column::Data(d) => d.push(value),
        }
    }

    /// Extends a void column by one virtual entry.
    fn push_void(&mut self) -> Result<()> {
        match self {
            Column::Void { len, .. } => {
                *len += 1;
                Ok(())
            }
            Column::Data(d) => Err(MonetError::TypeMismatch {
                expected: "void".into(),
                found: d.atom_type().name().into(),
            }),
        }
    }

    /// Iterates the column's (possibly virtual) values.
    pub fn iter(&self) -> ColumnIter<'_> {
        ColumnIter { col: self, pos: 0 }
    }

    /// Materializes the column into a plain atom vector.
    pub fn to_vec(&self) -> Vec<Atom> {
        self.iter().collect()
    }

    /// Rows at the given positions. Void columns materialize into oid data
    /// (re-arranged rows lose density); positions must be in range.
    pub fn gather(&self, idx: &[u32]) -> Column {
        match self {
            Column::Void { seqbase, .. } => Column::Data(ColumnData::Oid(
                idx.iter().map(|&i| seqbase + i as u64).collect(),
            )),
            Column::Data(d) => Column::Data(d.gather(idx)),
        }
    }

    /// A materialized copy: void runs become explicit oid vectors, typed
    /// data is cloned as-is.
    pub fn materialize(&self) -> Column {
        match self {
            Column::Void { seqbase, len } => Column::Data(ColumnData::Oid(
                (0..*len as u64).map(|i| seqbase + i).collect(),
            )),
            data => data.clone(),
        }
    }
}

impl PartialEq for Column {
    /// Logical equality: same declared type and row-wise equal values.
    /// `Dbl` rows compare by bit pattern (matching [`Atom`]'s total order),
    /// so NaN equals itself and `0.0 != -0.0`.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Column::Void { seqbase: a, len: m }, Column::Void { seqbase: b, len: n }) => {
                m == n && (a == b || *m == 0)
            }
            (Column::Data(a), Column::Data(b)) => match (a, b) {
                (ColumnData::Dbl(x), ColumnData::Dbl(y)) => {
                    x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
                }
                (a, b) => a == b,
            },
            _ => false,
        }
    }
}

/// Iterator over a [`Column`]'s values.
pub struct ColumnIter<'a> {
    col: &'a Column,
    pos: usize,
}

impl Iterator for ColumnIter<'_> {
    type Item = Atom;

    fn next(&mut self) -> Option<Atom> {
        if self.pos < self.col.len() {
            let v = self.col.at(self.pos).ok()?;
            self.pos += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.col.len() - self.pos;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for ColumnIter<'_> {}

/// BAT identities for the kernel's index cache; never reused.
static NEXT_BAT_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_bat_id() -> u64 {
    NEXT_BAT_ID.fetch_add(1, Ordering::Relaxed)
}

/// A Binary Association Table: the pair of a head and a tail column of
/// equal length.
///
/// Every BAT carries a process-unique `id` and a `version` counter bumped
/// on each mutation; together they key the kernel's hash-index cache (an
/// index built for `(id, version)` is valid exactly until the next append
/// or replace).
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct Bat {
    head: Column,
    tail: Column,
    id: u64,
    version: u64,
}

impl Clone for Bat {
    /// Clones the columns under a *fresh* identity: the clone may diverge
    /// from the original, so it must not share cached indexes.
    fn clone(&self) -> Self {
        Bat {
            head: self.head.clone(),
            tail: self.tail.clone(),
            id: fresh_bat_id(),
            version: 0,
        }
    }
}

impl PartialEq for Bat {
    fn eq(&self, other: &Self) -> bool {
        self.head == other.head && self.tail == other.tail
    }
}

impl Bat {
    /// Creates an empty BAT with the given column types.
    pub fn new(head: AtomType, tail: AtomType) -> Self {
        Bat::from_columns_unchecked(Column::empty(head), Column::empty(tail))
    }

    /// Builds a BAT directly from two equal-length columns.
    pub fn from_columns(head: Column, tail: Column) -> Result<Self> {
        if head.len() != tail.len() {
            return Err(MonetError::TypeMismatch {
                expected: format!("columns of equal length ({})", head.len()),
                found: format!("tail of length {}", tail.len()),
            });
        }
        Ok(Bat::from_columns_unchecked(head, tail))
    }

    /// Crate-internal constructor for operators that produce equal-length
    /// columns by construction.
    pub(crate) fn from_columns_unchecked(head: Column, tail: Column) -> Self {
        Bat {
            head,
            tail,
            id: fresh_bat_id(),
            version: 0,
        }
    }

    /// Builds a void-headed BAT from tail values (the common Monet layout).
    pub fn from_tail(ty: AtomType, values: impl IntoIterator<Item = Atom>) -> Result<Self> {
        let mut bat = Bat::new(AtomType::Void, ty);
        for v in values {
            bat.append_void(v)?;
        }
        Ok(bat)
    }

    /// Builds a BAT from (head, tail) pairs, inferring nothing: the declared
    /// types are explicit.
    pub fn from_pairs(
        head_ty: AtomType,
        tail_ty: AtomType,
        pairs: impl IntoIterator<Item = (Atom, Atom)>,
    ) -> Result<Self> {
        let mut bat = Bat::new(head_ty, tail_ty);
        for (h, t) in pairs {
            bat.append(h, t)?;
        }
        Ok(bat)
    }

    /// Head column.
    pub fn head(&self) -> &Column {
        &self.head
    }

    /// Tail column.
    pub fn tail(&self) -> &Column {
        &self.tail
    }

    /// Process-unique identity of this BAT instance (fresh per clone).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Mutation counter; bumped by `append`, `append_void` and `replace`.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of pairs (`count` in MIL).
    pub fn len(&self) -> usize {
        self.head.len()
    }

    /// True when the BAT holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Declared (head, tail) types.
    pub fn types(&self) -> (AtomType, AtomType) {
        (self.head.atom_type(), self.tail.atom_type())
    }

    fn touch(&mut self) {
        self.version = self.version.wrapping_add(1);
    }

    /// Appends an explicit (head, tail) pair (`insert` in MIL).
    pub fn append(&mut self, head: Atom, tail: Atom) -> Result<()> {
        self.head.push(head)?;
        // Keep columns equal length even if the tail push fails.
        if let Err(e) = self.tail.push(tail) {
            self.pop_head();
            return Err(e);
        }
        self.touch();
        Ok(())
    }

    /// Appends a tail value under a dense void head.
    pub fn append_void(&mut self, tail: Atom) -> Result<()> {
        self.head.push_void()?;
        if let Err(e) = self.tail.push(tail) {
            self.pop_head();
            return Err(e);
        }
        self.touch();
        Ok(())
    }

    fn pop_head(&mut self) {
        match &mut self.head {
            Column::Void { len, .. } => *len -= 1,
            Column::Data(d) => d.pop(),
        }
    }

    /// Head value at position `i`.
    pub fn head_at(&self, i: usize) -> Result<Atom> {
        self.head.at(i)
    }

    /// Tail value at position `i`.
    pub fn tail_at(&self, i: usize) -> Result<Atom> {
        self.tail.at(i)
    }

    /// Iterates (head, tail) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Atom, Atom)> + '_ {
        self.head.iter().zip(self.tail.iter())
    }

    /// `reverse`: swaps head and tail columns in O(1) (columns are moved,
    /// not copied, when called on an owned BAT; here we clone).
    pub fn reverse(&self) -> Bat {
        Bat::from_columns_unchecked(self.tail.clone(), self.head.clone())
    }

    /// `mirror`: pairs every head value with itself.
    pub fn mirror(&self) -> Bat {
        Bat::from_columns_unchecked(self.head.clone(), self.head.clone())
    }

    /// `mark`: pairs every head value with a dense oid run starting at
    /// `seqbase` — Monet's way of (re)numbering rows.
    pub fn mark(&self, seqbase: u64) -> Bat {
        Bat::from_columns_unchecked(
            self.head.clone(),
            Column::Void {
                seqbase,
                len: self.len(),
            },
        )
    }

    /// `find`: tail value of the first pair whose head equals `key`.
    pub fn find(&self, key: &Atom) -> Option<Atom> {
        // Void heads permit O(1) positional lookup.
        if let Column::Void { seqbase, len } = &self.head {
            if let Atom::Oid(o) = key {
                if *o >= *seqbase && ((*o - *seqbase) as usize) < *len {
                    return self.tail.at((*o - *seqbase) as usize).ok();
                }
            }
            return None;
        }
        self.iter().find(|(h, _)| h == key).map(|(_, t)| t)
    }

    /// Positions `lo..hi` (clamped), as gatherable row indices.
    fn clamped_range(&self, lo: usize, hi: usize) -> Vec<u32> {
        let hi = hi.min(self.len());
        let lo = lo.min(hi);
        (lo as u32..hi as u32).collect()
    }

    /// `slice`: pairs at positions `lo..hi` (clamped). Void columns
    /// materialize (slicing breaks density).
    pub fn slice(&self, lo: usize, hi: usize) -> Bat {
        self.gather(&self.clamped_range(lo, hi))
    }

    /// Pairs at the given row positions, via typed columnar gather. Void
    /// columns materialize into oid data. Positions must be in range.
    pub fn gather(&self, idx: &[u32]) -> Bat {
        Bat::from_columns_unchecked(self.head.gather(idx), self.tail.gather(idx))
    }

    /// Replaces the tail of the first pair whose head equals `key`, or
    /// appends the pair when absent (`replace` in MIL).
    pub fn replace(&mut self, key: Atom, tail: Atom) -> Result<()> {
        let pos = self.iter().position(|(h, _)| h == key);
        match pos {
            Some(i) => match &mut self.tail {
                Column::Data(d) => {
                    d.set(i, tail)?;
                    self.touch();
                    Ok(())
                }
                Column::Void { .. } => Err(MonetError::TypeMismatch {
                    expected: "materialized tail".into(),
                    found: "void".into(),
                }),
            },
            None => self.append(key, tail),
        }
    }
}

impl Default for Bat {
    /// A void-headed oid-tailed BAT (an empty pairing).
    fn default() -> Self {
        Bat::new(AtomType::Void, AtomType::Oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dbl_bat(values: &[f64]) -> Bat {
        Bat::from_tail(AtomType::Dbl, values.iter().map(|v| Atom::Dbl(*v))).unwrap()
    }

    #[test]
    fn void_head_is_dense_and_virtual() {
        let b = dbl_bat(&[1.0, 2.0, 3.0]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.head_at(0).unwrap(), Atom::Oid(0));
        assert_eq!(b.head_at(2).unwrap(), Atom::Oid(2));
        assert!(b.head_at(3).is_err());
    }

    #[test]
    fn append_rejects_wrong_tail_type_and_keeps_columns_aligned() {
        let mut b = Bat::new(AtomType::Void, AtomType::Dbl);
        b.append_void(Atom::Dbl(1.0)).unwrap();
        assert!(b.append_void(Atom::str("oops")).is_err());
        assert_eq!(b.len(), 1);
        b.append_void(Atom::Dbl(2.0)).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn int_widens_into_dbl_column() {
        let mut b = Bat::new(AtomType::Void, AtomType::Dbl);
        b.append_void(Atom::Int(4)).unwrap();
        assert_eq!(b.tail_at(0).unwrap(), Atom::Dbl(4.0));
    }

    #[test]
    fn dbl_into_int_column_is_rejected() {
        let mut b = Bat::new(AtomType::Void, AtomType::Int);
        assert!(b.append_void(Atom::Dbl(1.5)).is_err());
    }

    #[test]
    fn reverse_swaps_columns() {
        let b = dbl_bat(&[5.0, 6.0]);
        let r = b.reverse();
        assert_eq!(r.head_at(0).unwrap(), Atom::Dbl(5.0));
        assert_eq!(r.tail_at(0).unwrap(), Atom::Oid(0));
        assert_eq!(r.reverse(), b);
    }

    #[test]
    fn mirror_pairs_head_with_itself() {
        let b = Bat::from_pairs(
            AtomType::Str,
            AtomType::Int,
            [(Atom::str("a"), Atom::Int(1))],
        )
        .unwrap();
        let m = b.mirror();
        assert_eq!(m.tail_at(0).unwrap(), Atom::str("a"));
    }

    #[test]
    fn mark_renumbers_with_dense_oids() {
        let b = dbl_bat(&[1.0, 2.0]);
        let m = b.reverse().mark(100);
        assert_eq!(m.tail_at(0).unwrap(), Atom::Oid(100));
        assert_eq!(m.tail_at(1).unwrap(), Atom::Oid(101));
    }

    #[test]
    fn find_on_void_head_is_positional() {
        let b = dbl_bat(&[9.0, 8.0, 7.0]);
        assert_eq!(b.find(&Atom::Oid(1)), Some(Atom::Dbl(8.0)));
        assert_eq!(b.find(&Atom::Oid(5)), None);
        assert_eq!(b.find(&Atom::Int(1)), None);
    }

    #[test]
    fn find_on_materialized_head_scans() {
        let b = Bat::from_pairs(
            AtomType::Str,
            AtomType::Int,
            [
                (Atom::str("schumacher"), Atom::Int(1)),
                (Atom::str("hakkinen"), Atom::Int(2)),
            ],
        )
        .unwrap();
        assert_eq!(b.find(&Atom::str("hakkinen")), Some(Atom::Int(2)));
        assert_eq!(b.find(&Atom::str("montoya")), None);
    }

    #[test]
    fn slice_clamps_and_materializes_voids() {
        let b = dbl_bat(&[1.0, 2.0, 3.0, 4.0]);
        let s = b.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.head_at(0).unwrap(), Atom::Oid(1));
        assert_eq!(s.tail_at(1).unwrap(), Atom::Dbl(3.0));
        assert_eq!(b.slice(3, 100).len(), 1);
        assert_eq!(b.slice(10, 2).len(), 0);
    }

    #[test]
    fn replace_updates_or_appends() {
        let mut b = Bat::from_pairs(
            AtomType::Str,
            AtomType::Dbl,
            [(Atom::str("Service"), Atom::Dbl(0.1))],
        )
        .unwrap();
        b.replace(Atom::str("Service"), Atom::Dbl(0.9)).unwrap();
        assert_eq!(b.find(&Atom::str("Service")), Some(Atom::Dbl(0.9)));
        b.replace(Atom::str("Smash"), Atom::Dbl(0.3)).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn replace_rejects_wrong_type_in_int_tail() {
        let mut b = Bat::from_pairs(
            AtomType::Str,
            AtomType::Int,
            [(Atom::str("k"), Atom::Int(1))],
        )
        .unwrap();
        assert!(b.replace(Atom::str("k"), Atom::Dbl(2.5)).is_err());
        assert_eq!(b.find(&Atom::str("k")), Some(Atom::Int(1)));
    }

    #[test]
    fn iterator_yields_pairs_in_order() {
        let b = dbl_bat(&[1.0, 2.0]);
        let pairs: Vec<_> = b.iter().collect();
        assert_eq!(
            pairs,
            vec![
                (Atom::Oid(0), Atom::Dbl(1.0)),
                (Atom::Oid(1), Atom::Dbl(2.0)),
            ]
        );
    }

    #[test]
    fn string_columns_are_dictionary_encoded() {
        let b = Bat::from_tail(
            AtomType::Str,
            ["pit", "lap", "pit", "pit"].into_iter().map(Atom::str),
        )
        .unwrap();
        let s = b.tail().strs().expect("str column");
        assert_eq!(s.len(), 4);
        assert_eq!(s.dict_len(), 2);
        assert_eq!(s.codes(), &[0, 1, 0, 0]);
        assert_eq!(s.code_of("lap"), Some(1));
        assert_eq!(s.code_of("nope"), None);
        // Interning shares one allocation across equal rows.
        assert!(Arc::ptr_eq(s.value(0), s.value(2)));
    }

    #[test]
    fn typed_accessors_expose_slices() {
        let b = Bat::from_tail(AtomType::Int, (0..4).map(Atom::Int)).unwrap();
        assert_eq!(b.tail().ints(), Some(&[0i64, 1, 2, 3][..]));
        assert_eq!(b.tail().dbls(), None);
        assert_eq!(b.head().void_run(), Some((0, 4)));
    }

    #[test]
    fn gather_materializes_and_reorders() {
        let b = dbl_bat(&[1.0, 2.0, 3.0, 4.0]);
        let g = b.gather(&[3, 0, 0]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.head_at(0).unwrap(), Atom::Oid(3));
        assert_eq!(g.tail_at(1).unwrap(), Atom::Dbl(1.0));
        assert_eq!(g.tail_at(2).unwrap(), Atom::Dbl(1.0));
        assert_eq!(g.types(), (AtomType::Oid, AtomType::Dbl));
    }

    #[test]
    fn version_bumps_on_mutation_and_clone_gets_fresh_id() {
        let mut b = Bat::new(AtomType::Void, AtomType::Int);
        let v0 = b.version();
        b.append_void(Atom::Int(1)).unwrap();
        assert!(b.version() > v0);
        let c = b.clone();
        assert_ne!(b.id(), c.id());
        assert_eq!(b, c);
    }

    #[test]
    fn column_equality_is_logical_for_doubles() {
        let a = dbl_bat(&[f64::NAN, 0.0]);
        let b = dbl_bat(&[f64::NAN, 0.0]);
        let c = dbl_bat(&[f64::NAN, -0.0]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
