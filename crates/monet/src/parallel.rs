//! `threadcnt`-style fork/join execution.
//!
//! Monet exposes intra-query parallelism through a thread-count setting and
//! a parallel block construct; the paper leans on it to evaluate six HMMs
//! concurrently (Fig. 3/4) and to fan out DBN inference calls. This module
//! provides the equivalent: a bounded fork/join executor built on crossbeam
//! scoped threads, so jobs may borrow from the caller's stack.
//!
//! Jobs are distributed by striping the job list across workers up front:
//! each worker *owns* its slice of jobs, so there are no shared claim cells
//! to lock. Worker panics are caught per job and surfaced as
//! [`MonetError::WorkerPanic`] instead of unwinding through the scope.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crossbeam::thread;

use crate::error::{MonetError, Result};

/// Renders a caught panic payload as a readable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs one job under a panic guard.
fn run_one<T, F: FnOnce() -> T>(job: F) -> Result<T> {
    catch_unwind(AssertUnwindSafe(job)).map_err(|p| MonetError::WorkerPanic(panic_message(p)))
}

/// Runs `jobs` with at most `threads` of them in flight at once and returns
/// their results in submission order.
///
/// `threads == 0` or `threads == 1` degrade to sequential execution in the
/// calling thread, which is what `threadcnt(1)` means in MIL. A panicking
/// job yields [`MonetError::WorkerPanic`]; the remaining jobs still run to
/// completion and the first panic (in submission order) is reported.
pub fn run_jobs<T, F>(threads: usize, jobs: Vec<F>) -> Result<Vec<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(run_one).collect();
    }
    let n = jobs.len();
    let workers = threads.min(n);

    // Stripe jobs across workers: worker w owns jobs w, w+workers, … — no
    // shared claim state, and interleaving balances uneven job costs.
    let mut stripes: Vec<Vec<(usize, F)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        stripes[i % workers].push((i, job));
    }

    let mut slots: Vec<Option<Result<T>>> = (0..n).map(|_| None).collect();
    let outcome = thread::scope(|s| {
        let handles: Vec<_> = stripes
            .into_iter()
            .map(|stripe| {
                s.spawn(move |_| {
                    stripe
                        .into_iter()
                        .map(|(i, job)| (i, run_one(job)))
                        .collect::<Vec<(usize, Result<T>)>>()
                })
            })
            .collect();
        let mut results = Vec::with_capacity(workers);
        for h in handles {
            results.push(h.join());
        }
        results
    });
    let worker_results = match outcome {
        Ok(r) => r,
        // The scope itself only fails if a worker unwound outside our
        // per-job guard, which run_one prevents; treat it as a panic anyway.
        Err(p) => return Err(MonetError::WorkerPanic(panic_message(p))),
    };
    for per_worker in worker_results {
        let pairs = per_worker.map_err(|p| MonetError::WorkerPanic(panic_message(p)))?;
        for (i, r) in pairs {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.unwrap_or(Err(MonetError::WorkerPanic("job never ran".into()))))
        .collect()
}

/// Maps `f` over `items` in parallel, preserving order.
pub fn par_map<I, T, F>(threads: usize, items: Vec<I>, f: F) -> Result<Vec<T>>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let jobs: Vec<_> = items
        .into_iter()
        .map(|item| {
            let f = &f;
            move || f(item)
        })
        .collect();
    run_jobs(threads, jobs)
}

/// Splits `0..len` into at most `parts` contiguous morsel ranges of
/// near-equal size (empty input yields no morsels).
pub fn morsels(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_submission_order() {
        let jobs: Vec<_> = (0..16).map(|i| move || i * i).collect();
        let out = run_jobs(4, jobs).unwrap();
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_for_one_thread() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..5)
            .map(|_| {
                let c = &counter;
                move || c.fetch_add(1, Ordering::SeqCst)
            })
            .collect();
        let out = run_jobs(1, jobs).unwrap();
        // Sequential execution yields strictly increasing claim order.
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let c = &counter;
                move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        run_jobs(8, jobs).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<i64> = (0..50).collect();
        let par = par_map(6, items.clone(), |v| v * 3 - 1).unwrap();
        let ser: Vec<i64> = items.into_iter().map(|v| v * 3 - 1).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = run_jobs(32, vec![|| 1, || 2]).unwrap();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn panics_become_typed_errors() {
        let jobs: Vec<Box<dyn FnOnce() -> i64 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("kaboom")),
            Box::new(|| 3),
        ];
        let err = run_jobs(4, jobs).unwrap_err();
        match err {
            MonetError::WorkerPanic(msg) => assert!(msg.contains("kaboom")),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn sequential_panics_are_also_caught() {
        let jobs: Vec<Box<dyn FnOnce() -> i64 + Send>> = vec![Box::new(|| panic!("solo"))];
        let err = run_jobs(1, jobs).unwrap_err();
        assert!(matches!(err, MonetError::WorkerPanic(_)));
    }

    #[test]
    fn surviving_jobs_still_run_after_a_panic() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..20)
            .map(|i| {
                let c = &counter;
                let job: Box<dyn FnOnce() + Send> = if i == 3 {
                    Box::new(|| panic!("one bad job"))
                } else {
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                };
                job
            })
            .collect();
        assert!(run_jobs(4, jobs).is_err());
        assert_eq!(counter.load(Ordering::SeqCst), 19);
    }

    #[test]
    fn morsels_cover_range_without_overlap() {
        for (len, parts) in [(10, 3), (7, 7), (5, 16), (0, 4), (100, 1)] {
            let m = morsels(len, parts);
            let total: usize = m.iter().map(|r| r.len()).sum();
            assert_eq!(total, len);
            let mut next = 0;
            for r in &m {
                assert_eq!(r.start, next);
                assert!(!r.is_empty());
                next = r.end;
            }
        }
    }
}
