//! `threadcnt`-style fork/join execution.
//!
//! Monet exposes intra-query parallelism through a thread-count setting and
//! a parallel block construct; the paper leans on it to evaluate six HMMs
//! concurrently (Fig. 3/4) and to fan out DBN inference calls. This module
//! provides the equivalent: a bounded fork/join executor built on crossbeam
//! scoped threads, so jobs may borrow from the caller's stack.

use crossbeam::thread;

/// Runs `jobs` with at most `threads` of them in flight at once and returns
/// their results in submission order.
///
/// `threads == 0` or `threads == 1` degrade to sequential execution, which
/// is what `threadcnt(1)` means in MIL. Panics in jobs are propagated.
pub fn run_jobs<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let n = jobs.len();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    // Work-stealing-lite: a shared index counter; each worker claims the
    // next job. Jobs are FnOnce so we move them into per-index cells.
    let cells: Vec<parking_lot::Mutex<Option<F>>> = jobs
        .into_iter()
        .map(|j| parking_lot::Mutex::new(Some(j)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<&mut Option<T>>> =
        slots.iter_mut().map(parking_lot::Mutex::new).collect();

    thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = cells[i].lock().take().expect("job claimed once");
                let out = job();
                **results[i].lock() = Some(out);
            });
        }
    })
    .expect("worker panicked");

    drop(results);
    slots
        .into_iter()
        .map(|s| s.expect("every job ran"))
        .collect()
}

/// Maps `f` over `items` in parallel, preserving order.
pub fn par_map<I, T, F>(threads: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let jobs: Vec<_> = items
        .into_iter()
        .map(|item| {
            let f = &f;
            move || f(item)
        })
        .collect();
    run_jobs(threads, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_submission_order() {
        let jobs: Vec<_> = (0..16).map(|i| move || i * i).collect();
        let out = run_jobs(4, jobs);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_for_one_thread() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..5)
            .map(|_| {
                let c = &counter;
                move || c.fetch_add(1, Ordering::SeqCst)
            })
            .collect();
        let out = run_jobs(1, jobs);
        // Sequential execution yields strictly increasing claim order.
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let c = &counter;
                move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        run_jobs(8, jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<i64> = (0..50).collect();
        let par = par_map(6, items.clone(), |v| v * 3 - 1);
        let ser: Vec<i64> = items.into_iter().map(|v| v * 3 - 1).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = run_jobs(32, vec![|| 1, || 2]);
        assert_eq!(out, vec![1, 2]);
    }
}
