//! Relational operators over BATs.
//!
//! These are the algebra primitives that MIL programs (and therefore the
//! Moa logical layer) are compiled into: selections, hash joins, semijoins,
//! grouping, aggregation and sorting. All operators are pure — they return
//! fresh BATs and never mutate their inputs, which keeps the kernel easy to
//! parallelize.

use std::collections::HashMap;

use crate::bat::Bat;
use crate::error::{MonetError, Result};
use crate::index::HashIndex;
use crate::value::{Atom, AtomType};

fn out_type(t: AtomType) -> AtomType {
    // Operators that re-arrange rows lose void density.
    if t == AtomType::Void {
        AtomType::Oid
    } else {
        t
    }
}

/// `select(b, v)`: pairs whose tail equals `v`.
pub fn select_eq(b: &Bat, v: &Atom) -> Bat {
    let (ht, tt) = b.types();
    let mut out = Bat::new(out_type(ht), out_type(tt));
    for (h, t) in b.iter().filter(|(_, t)| t == v) {
        out.append(h, t).expect("type preserved");
    }
    out
}

/// `select(b, lo, hi)`: pairs whose tail lies in the inclusive range.
pub fn select_range(b: &Bat, lo: &Atom, hi: &Atom) -> Bat {
    let (ht, tt) = b.types();
    let mut out = Bat::new(out_type(ht), out_type(tt));
    for (h, t) in b.iter().filter(|(_, t)| t >= lo && t <= hi) {
        out.append(h, t).expect("type preserved");
    }
    out
}

/// Generic filter on (head, tail) pairs.
pub fn select_where(b: &Bat, mut pred: impl FnMut(&Atom, &Atom) -> bool) -> Bat {
    let (ht, tt) = b.types();
    let mut out = Bat::new(out_type(ht), out_type(tt));
    for (h, t) in b.iter().filter(|(h, t)| pred(h, t)) {
        out.append(h, t).expect("type preserved");
    }
    out
}

/// `join(l, r)`: Monet's positional join — matches `l.tail` against
/// `r.head` and yields `(l.head, r.tail)` for every match.
pub fn join(l: &Bat, r: &Bat) -> Bat {
    let (lh, _) = l.types();
    let (_, rt) = r.types();
    let mut out = Bat::new(out_type(lh), out_type(rt));
    let idx = HashIndex::build(r.head());
    for (h, t) in l.iter() {
        for &pos in idx.lookup(&t) {
            out.append(h.clone(), r.tail_at(pos).expect("indexed position"))
                .expect("type preserved");
        }
    }
    out
}

/// `semijoin(l, r)`: pairs of `l` whose head occurs among `r`'s heads.
pub fn semijoin(l: &Bat, r: &Bat) -> Bat {
    let (lh, lt) = l.types();
    let mut out = Bat::new(out_type(lh), out_type(lt));
    let idx = HashIndex::build(r.head());
    for (h, t) in l.iter() {
        if idx.contains(&h) {
            out.append(h, t).expect("type preserved");
        }
    }
    out
}

/// `diff(l, r)`: pairs of `l` whose head does **not** occur among `r`'s heads.
pub fn antijoin(l: &Bat, r: &Bat) -> Bat {
    let (lh, lt) = l.types();
    let mut out = Bat::new(out_type(lh), out_type(lt));
    let idx = HashIndex::build(r.head());
    for (h, t) in l.iter() {
        if !idx.contains(&h) {
            out.append(h, t).expect("type preserved");
        }
    }
    out
}

/// Applies `f` to every tail value, keeping heads (`[f]()` map in MIL).
pub fn map_tail(
    b: &Bat,
    out_ty: AtomType,
    mut f: impl FnMut(&Atom) -> Result<Atom>,
) -> Result<Bat> {
    let (ht, _) = b.types();
    let mut out = Bat::new(ht, out_ty);
    for (h, t) in b.iter() {
        let v = f(&t)?;
        // Void heads stay dense because we re-append in order.
        match ht {
            AtomType::Void => out.append_void(v)?,
            _ => out.append(h, v)?,
        }
    }
    Ok(out)
}

/// `unique(b)`: first occurrence of every distinct tail value.
pub fn unique_tail(b: &Bat) -> Bat {
    let (ht, tt) = b.types();
    let mut seen: HashMap<Atom, ()> = HashMap::new();
    let mut out = Bat::new(out_type(ht), out_type(tt));
    for (h, t) in b.iter() {
        if seen.insert(t.clone(), ()).is_none() {
            out.append(h, t).expect("type preserved");
        }
    }
    out
}

/// `histogram(b)`: (tail value, occurrence count) pairs.
pub fn histogram(b: &Bat) -> Bat {
    let (_, tt) = b.types();
    let mut counts: HashMap<Atom, i64> = HashMap::new();
    let mut order: Vec<Atom> = Vec::new();
    for (_, t) in b.iter() {
        let e = counts.entry(t.clone()).or_insert(0);
        if *e == 0 {
            order.push(t);
        }
        *e += 1;
    }
    let mut out = Bat::new(out_type(tt), AtomType::Int);
    for key in order {
        let n = counts[&key];
        out.append(key, Atom::Int(n)).expect("type preserved");
    }
    out
}

/// `group(b)`: maps every head to a group id shared by equal tail values.
pub fn group(b: &Bat) -> Bat {
    let (ht, _) = b.types();
    let mut ids: HashMap<Atom, u64> = HashMap::new();
    let mut next = 0u64;
    let mut out = Bat::new(out_type(ht), AtomType::Oid);
    for (h, t) in b.iter() {
        let id = *ids.entry(t).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        out.append(h, Atom::Oid(id)).expect("type preserved");
    }
    out
}

/// `sort(b)`: pairs ordered by tail value (stable).
pub fn sort_by_tail(b: &Bat) -> Bat {
    let (ht, tt) = b.types();
    let mut pairs: Vec<(Atom, Atom)> = b.iter().collect();
    pairs.sort_by(|a, c| a.1.cmp(&c.1));
    let mut out = Bat::new(out_type(ht), out_type(tt));
    for (h, t) in pairs {
        out.append(h, t).expect("type preserved");
    }
    out
}

/// Numeric aggregate kinds supported by [`aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Sum of tail values.
    Sum,
    /// Arithmetic mean of tail values.
    Avg,
    /// Minimum tail value.
    Min,
    /// Maximum tail value.
    Max,
    /// Number of pairs.
    Count,
}

/// Computes a numeric aggregate over the tail column.
pub fn aggregate(b: &Bat, kind: Aggregate) -> Result<Atom> {
    if kind == Aggregate::Count {
        return Ok(Atom::Int(b.len() as i64));
    }
    if b.is_empty() {
        return Err(MonetError::EmptyBat(format!("{kind:?}").to_lowercase()));
    }
    match kind {
        Aggregate::Min => Ok(b.tail().iter().min().expect("non-empty")),
        Aggregate::Max => Ok(b.tail().iter().max().expect("non-empty")),
        Aggregate::Sum | Aggregate::Avg => {
            let mut sum = 0.0f64;
            let mut all_int = true;
            let mut isum = 0i64;
            for t in b.tail().iter() {
                match &t {
                    Atom::Int(v) => {
                        isum = isum.wrapping_add(*v);
                        sum += *v as f64;
                    }
                    Atom::Dbl(v) => {
                        all_int = false;
                        sum += v;
                    }
                    other => {
                        return Err(MonetError::TypeMismatch {
                            expected: "numeric tail".into(),
                            found: other.to_string(),
                        })
                    }
                }
            }
            if kind == Aggregate::Sum {
                Ok(if all_int {
                    Atom::Int(isum)
                } else {
                    Atom::Dbl(sum)
                })
            } else {
                Ok(Atom::Dbl(sum / b.len() as f64))
            }
        }
        Aggregate::Count => unreachable!("handled above"),
    }
}

/// Grouped aggregation: `grouped(values, groups, kind)` where `groups`
/// assigns a group id to every head of `values`. Returns (group id, agg).
pub fn grouped_aggregate(values: &Bat, groups: &Bat, kind: Aggregate) -> Result<Bat> {
    let gidx = HashIndex::build(groups.head());
    let mut buckets: HashMap<Atom, Vec<Atom>> = HashMap::new();
    let mut order: Vec<Atom> = Vec::new();
    for (h, t) in values.iter() {
        let positions = gidx.lookup(&h);
        let gid = match positions.first() {
            Some(&p) => groups.tail_at(p)?,
            None => continue, // head absent from grouping — dropped
        };
        let bucket = buckets.entry(gid.clone()).or_insert_with(|| {
            order.push(gid.clone());
            Vec::new()
        });
        bucket.push(t);
    }
    let out_ty = if kind == Aggregate::Count {
        AtomType::Int
    } else {
        AtomType::Dbl
    };
    let mut out = Bat::new(out_type(groups.tail().atom_type()), out_ty);
    for gid in order {
        let vals = &buckets[&gid];
        let tmp = Bat::from_tail(
            vals.first().map(|a| a.atom_type()).unwrap_or(AtomType::Dbl),
            vals.iter().cloned(),
        )?;
        let mut agg = aggregate(&tmp, kind)?;
        if out_ty == AtomType::Dbl {
            agg = Atom::Dbl(agg.as_dbl()?);
        }
        out.append(gid, agg)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn named_points() -> Bat {
        Bat::from_pairs(
            AtomType::Str,
            AtomType::Int,
            [
                (Atom::str("schumacher"), Atom::Int(10)),
                (Atom::str("hakkinen"), Atom::Int(8)),
                (Atom::str("schumacher"), Atom::Int(6)),
                (Atom::str("montoya"), Atom::Int(8)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_eq_filters_by_tail() {
        let b = named_points();
        let s = select_eq(&b, &Atom::Int(8));
        assert_eq!(s.len(), 2);
        assert_eq!(s.head_at(0).unwrap(), Atom::str("hakkinen"));
    }

    #[test]
    fn select_range_is_inclusive() {
        let b = named_points();
        let s = select_range(&b, &Atom::Int(7), &Atom::Int(10));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn join_matches_tail_to_head() {
        // l: oid -> driver, r: driver -> team
        let l = Bat::from_tail(
            AtomType::Str,
            ["schumacher", "hakkinen"].into_iter().map(Atom::str),
        )
        .unwrap();
        let r = Bat::from_pairs(
            AtomType::Str,
            AtomType::Str,
            [
                (Atom::str("schumacher"), Atom::str("ferrari")),
                (Atom::str("hakkinen"), Atom::str("mclaren")),
            ],
        )
        .unwrap();
        let j = join(&l, &r);
        assert_eq!(j.len(), 2);
        assert_eq!(j.find(&Atom::Oid(0)), Some(Atom::str("ferrari")));
        assert_eq!(j.find(&Atom::Oid(1)), Some(Atom::str("mclaren")));
    }

    #[test]
    fn join_multiplies_duplicate_matches() {
        let l = Bat::from_tail(AtomType::Int, [Atom::Int(1)]).unwrap();
        let r = Bat::from_pairs(
            AtomType::Int,
            AtomType::Str,
            [
                (Atom::Int(1), Atom::str("a")),
                (Atom::Int(1), Atom::str("b")),
            ],
        )
        .unwrap();
        assert_eq!(join(&l, &r).len(), 2);
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let l = named_points();
        let r = Bat::from_pairs(
            AtomType::Str,
            AtomType::Int,
            [(Atom::str("schumacher"), Atom::Int(0))],
        )
        .unwrap();
        let semi = semijoin(&l, &r);
        let anti = antijoin(&l, &r);
        assert_eq!(semi.len(), 2);
        assert_eq!(anti.len(), 2);
        assert_eq!(semi.len() + anti.len(), l.len());
    }

    #[test]
    fn map_tail_preserves_void_head() {
        let b = Bat::from_tail(AtomType::Int, (1..=3).map(Atom::Int)).unwrap();
        let doubled = map_tail(&b, AtomType::Int, |a| Ok(Atom::Int(a.as_int()? * 2))).unwrap();
        assert_eq!(doubled.head().atom_type(), AtomType::Void);
        assert_eq!(doubled.tail_at(2).unwrap(), Atom::Int(6));
    }

    #[test]
    fn unique_keeps_first_occurrence() {
        let b = named_points();
        let u = unique_tail(&b);
        assert_eq!(u.len(), 3);
        assert_eq!(u.tail_at(1).unwrap(), Atom::Int(8));
        assert_eq!(u.head_at(1).unwrap(), Atom::str("hakkinen"));
    }

    #[test]
    fn histogram_counts_tail_values() {
        let b = named_points();
        let h = histogram(&b);
        assert_eq!(h.find(&Atom::Int(8)), Some(Atom::Int(2)));
        assert_eq!(h.find(&Atom::Int(10)), Some(Atom::Int(1)));
    }

    #[test]
    fn group_assigns_shared_ids() {
        let b = named_points();
        let g = group(&b);
        // rows 1 and 3 share tail value 8 → same group id.
        assert_eq!(g.tail_at(1).unwrap(), g.tail_at(3).unwrap());
        assert_ne!(g.tail_at(0).unwrap(), g.tail_at(1).unwrap());
    }

    #[test]
    fn sort_by_tail_is_stable() {
        let b = named_points();
        let s = sort_by_tail(&b);
        let tails: Vec<_> = s.tail().iter().collect();
        assert_eq!(
            tails,
            vec![Atom::Int(6), Atom::Int(8), Atom::Int(8), Atom::Int(10)]
        );
        // stability: hakkinen (earlier) precedes montoya among the 8s.
        assert_eq!(s.head_at(1).unwrap(), Atom::str("hakkinen"));
        assert_eq!(s.head_at(2).unwrap(), Atom::str("montoya"));
    }

    #[test]
    fn aggregates_over_ints_and_doubles() {
        let b = named_points();
        assert_eq!(aggregate(&b, Aggregate::Sum).unwrap(), Atom::Int(32));
        assert_eq!(aggregate(&b, Aggregate::Avg).unwrap(), Atom::Dbl(8.0));
        assert_eq!(aggregate(&b, Aggregate::Min).unwrap(), Atom::Int(6));
        assert_eq!(aggregate(&b, Aggregate::Max).unwrap(), Atom::Int(10));
        assert_eq!(aggregate(&b, Aggregate::Count).unwrap(), Atom::Int(4));

        let d = Bat::from_tail(AtomType::Dbl, [Atom::Dbl(0.5), Atom::Dbl(1.5)]).unwrap();
        assert_eq!(aggregate(&d, Aggregate::Sum).unwrap(), Atom::Dbl(2.0));
    }

    #[test]
    fn aggregate_on_empty_bat_errors_except_count() {
        let b = Bat::new(AtomType::Void, AtomType::Dbl);
        assert!(aggregate(&b, Aggregate::Max).is_err());
        assert_eq!(aggregate(&b, Aggregate::Count).unwrap(), Atom::Int(0));
    }

    #[test]
    fn aggregate_rejects_non_numeric() {
        let b = Bat::from_tail(AtomType::Str, [Atom::str("x")]).unwrap();
        assert!(aggregate(&b, Aggregate::Sum).is_err());
    }

    #[test]
    fn grouped_aggregate_sums_per_group() {
        // values: oid -> points ; groups: oid -> group id (by driver)
        let values = Bat::from_tail(AtomType::Int, [10, 8, 6, 8].map(Atom::Int)).unwrap();
        let groups = Bat::from_pairs(
            AtomType::Oid,
            AtomType::Oid,
            [
                (Atom::Oid(0), Atom::Oid(0)),
                (Atom::Oid(1), Atom::Oid(1)),
                (Atom::Oid(2), Atom::Oid(0)),
                (Atom::Oid(3), Atom::Oid(2)),
            ],
        )
        .unwrap();
        let agg = grouped_aggregate(&values, &groups, Aggregate::Sum).unwrap();
        assert_eq!(agg.find(&Atom::Oid(0)), Some(Atom::Dbl(16.0)));
        assert_eq!(agg.find(&Atom::Oid(1)), Some(Atom::Dbl(8.0)));
        let counts = grouped_aggregate(&values, &groups, Aggregate::Count).unwrap();
        assert_eq!(counts.find(&Atom::Oid(0)), Some(Atom::Int(2)));
    }
}
