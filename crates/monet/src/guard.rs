//! Execution guards for MIL evaluation.
//!
//! The seed interpreter assumed every MIL program terminates; once the
//! language has `WHILE` loops and recursive `PROC`s that assumption is
//! gone, and a Moa plan compiled into a bad MIL program could wedge a
//! kernel thread forever. An [`ExecBudget`] bounds an evaluation three
//! ways, all cooperative and all optional:
//!
//! * **fuel** — a step budget decremented at loop back-edges, statement
//!   boundaries, procedure calls, and module dispatches. Exhaustion
//!   raises [`MonetError::BudgetExhausted`]. Deterministic, so tests use
//!   it to prove termination without touching the clock.
//! * **deadline** — a wall-clock bound checked every
//!   [`DEADLINE_CHECK_INTERVAL`] ticks (an `Instant::now()` call per tick
//!   would dominate tight loops). Expiry raises [`MonetError::Deadline`].
//! * **cancellation** — a shared [`CancellationToken`] polled every
//!   tick, so an outside thread can abort a running query; the
//!   evaluation raises [`MonetError::Interrupted`].
//!
//! One [`ExecGuard`] is shared (via `Arc`) by every thread of a
//! `PARALLEL` block and every procedure frame of an evaluation, so the
//! budget bounds the *whole program*, not each thread separately.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

pub use cobra_faults::CancellationToken;

use crate::error::{MonetError, Result};

/// How many ticks pass between wall-clock deadline checks.
pub const DEADLINE_CHECK_INTERVAL: u64 = 64;

/// Limits for one MIL evaluation. Build with the fluent methods:
///
/// ```
/// use f1_monet::guard::ExecBudget;
/// use std::time::Duration;
/// let budget = ExecBudget::unlimited()
///     .with_fuel(10_000)
///     .with_deadline(Duration::from_secs(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExecBudget {
    /// Maximum number of interpreter steps, or `None` for unlimited.
    pub fuel: Option<u64>,
    /// Wall-clock bound measured from evaluation start, or `None`.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation flag, or `None`.
    pub cancel: Option<CancellationToken>,
}

impl ExecBudget {
    /// No limits: guarded evaluation behaves like the unguarded one.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps the evaluation at `fuel` interpreter steps.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Caps the evaluation at `deadline` of wall-clock time.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation token polled at every step.
    pub fn with_cancel(mut self, token: CancellationToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Starts the clock: converts the declarative budget into a live
    /// guard for one evaluation.
    pub fn start(&self) -> ExecGuard {
        ExecGuard {
            initial_fuel: self.fuel.unwrap_or(0),
            fuel: self.fuel.map(AtomicU64::new),
            deadline: self.deadline.map(|d| Instant::now() + d),
            cancel: self.cancel.clone(),
            ticks: AtomicU64::new(0),
        }
    }
}

/// Live counters for one evaluation, shared across its threads.
#[derive(Debug)]
pub struct ExecGuard {
    initial_fuel: u64,
    fuel: Option<AtomicU64>,
    deadline: Option<Instant>,
    cancel: Option<CancellationToken>,
    ticks: AtomicU64,
}

impl Default for ExecGuard {
    fn default() -> Self {
        ExecBudget::unlimited().start()
    }
}

impl ExecGuard {
    /// Charges one interpreter step. Fails with
    /// [`MonetError::Interrupted`], [`MonetError::BudgetExhausted`], or
    /// [`MonetError::Deadline`] when a limit is hit.
    pub fn tick(&self) -> Result<()> {
        let t = self.ticks.fetch_add(1, Ordering::Relaxed);
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Err(MonetError::Interrupted);
            }
        }
        if let Some(fuel) = &self.fuel {
            // Saturating decrement: never wraps, stays exhausted at 0.
            let mut cur = fuel.load(Ordering::Relaxed);
            loop {
                if cur == 0 {
                    return Err(MonetError::BudgetExhausted {
                        fuel: self.initial_fuel,
                    });
                }
                match fuel.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        if let Some(deadline) = self.deadline {
            if t.is_multiple_of(DEADLINE_CHECK_INTERVAL) && Instant::now() >= deadline {
                return Err(MonetError::Deadline);
            }
        }
        Ok(())
    }

    /// Interpreter steps charged so far, counted on every budget —
    /// including the unlimited one — so observability can report
    /// per-evaluation step consumption.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Steps charged so far (only meaningful with a fuel limit).
    pub fn fuel_used(&self) -> u64 {
        match &self.fuel {
            Some(f) => self.initial_fuel - f.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Remaining fuel, or `None` when unlimited.
    pub fn fuel_remaining(&self) -> Option<u64> {
        self.fuel.as_ref().map(|f| f.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let guard = ExecBudget::unlimited().start();
        for _ in 0..10_000 {
            guard.tick().unwrap();
        }
        assert_eq!(guard.fuel_remaining(), None);
        assert_eq!(guard.ticks(), 10_000);
    }

    #[test]
    fn fuel_exhaustion_is_exact_and_sticky() {
        let guard = ExecBudget::unlimited().with_fuel(3).start();
        assert!(guard.tick().is_ok());
        assert!(guard.tick().is_ok());
        assert!(guard.tick().is_ok());
        for _ in 0..3 {
            assert_eq!(guard.tick(), Err(MonetError::BudgetExhausted { fuel: 3 }));
        }
        assert_eq!(guard.fuel_used(), 3);
        assert_eq!(guard.fuel_remaining(), Some(0));
    }

    #[test]
    fn cancellation_trips_immediately() {
        let token = CancellationToken::new();
        let guard = ExecBudget::unlimited().with_cancel(token.clone()).start();
        assert!(guard.tick().is_ok());
        token.cancel();
        assert_eq!(guard.tick(), Err(MonetError::Interrupted));
    }

    #[test]
    fn elapsed_deadline_trips_on_check_boundary() {
        // A zero deadline is already expired; the first tick (tick count
        // 0, a check boundary) must observe it.
        let guard = ExecBudget::unlimited()
            .with_deadline(Duration::from_secs(0))
            .start();
        assert_eq!(guard.tick(), Err(MonetError::Deadline));
    }

    #[test]
    fn fuel_is_shared_across_threads() {
        let guard = std::sync::Arc::new(ExecBudget::unlimited().with_fuel(1000).start());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let g = std::sync::Arc::clone(&guard);
                s.spawn(move || {
                    for _ in 0..250 {
                        let _ = g.tick();
                    }
                });
            }
        });
        assert_eq!(guard.fuel_remaining(), Some(0));
        assert!(guard.tick().is_err());
    }
}
