//! # cobra-faults — deterministic fault injection and cancellation
//!
//! Robustness support for the Cobra VDBMS reproduction. Two facilities:
//!
//! * **Fault injection**: production code marks *named sites* with
//!   [`fire`]`("site.name")`. Normally that is a single relaxed atomic
//!   load. Inside [`with_faults`], a seed-driven [`FaultPlan`] decides —
//!   deterministically, with no wall clock and no OS entropy — which
//!   invocations of which sites fail, so tests can script failures of
//!   BAT operations, extension-module procedures, feature extractors, or
//!   EM iterations and assert how the system degrades.
//! * **Cancellation**: [`CancellationToken`], a cheaply clonable flag
//!   shared between an execution and its controller, checked
//!   cooperatively by the MIL interpreter's execution guard.
//!
//! Site naming convention used across the workspace:
//! `bat.{method}` (kernel BAT methods), `proc.{name}` (extension-module
//! dispatch), `extract.{method}` (media feature extractors),
//! `em.iteration` (Bayes EM steps).
//!
//! The whole injection machinery sits behind the `fault-injection`
//! feature (on by default so the test suite exercises it); building with
//! `--no-default-features` turns [`fire`] into a constant `Ok(())`.
//!
//! ```
//! use cobra_faults::{with_faults, fire, FaultPlan, Trigger};
//!
//! let (result, report) = with_faults(
//!     FaultPlan::new(7).fail("demo.step", Trigger::Times(1)),
//!     || (fire("demo.step").is_err(), fire("demo.step").is_err()),
//! );
//! assert_eq!(result, (true, false)); // first invocation fails, second runs
//! assert_eq!(report.fired.len(), 1);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// A cooperative cancellation flag.
///
/// Clones share the same flag; any clone may [`cancel`](Self::cancel),
/// and workers poll [`is_cancelled`](Self::is_cancelled) at safe points.
#[derive(Clone, Debug, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; visible to every clone of the token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once any clone has called [`cancel`](Self::cancel).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------------
// Fault model
// ---------------------------------------------------------------------------

/// The error an armed fault site raises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The site that failed (e.g. `"extract.full"`).
    pub site: String,
    /// Zero-based invocation index at which the site failed.
    pub invocation: u64,
    /// Whether the failure models a transient condition: retry policies
    /// may retry transient faults but must not retry permanent ones.
    pub transient: bool,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} fault at site '{}' (invocation {})",
            if self.transient {
                "transient"
            } else {
                "permanent"
            },
            self.site,
            self.invocation
        )
    }
}

impl std::error::Error for FaultError {}

/// When a rule fires, relative to the per-site invocation counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every invocation fails.
    Always,
    /// The first `n` invocations fail, later ones succeed.
    Times(u32),
    /// Invocations in `[skip, skip + times)` fail.
    Nth {
        /// Invocations to let through first.
        skip: u32,
        /// How many subsequent invocations fail.
        times: u32,
    },
    /// Each invocation fails with this probability, decided by a hash of
    /// (plan seed, site, invocation index) — deterministic across runs.
    Probability(f64),
}

/// One injection rule: which site(s), when, and how the failure presents.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Exact site name, or a prefix followed by `*` (e.g. `"bat.*"`).
    pub site: String,
    /// When the rule fires.
    pub trigger: Trigger,
    /// Whether raised faults are transient (retryable).
    pub transient: bool,
    /// When nonzero the rule injects *latency* instead of failure: the
    /// site sleeps this long and then succeeds. Models a degraded (slow
    /// but functional) dependency for cost-model tests.
    pub delay_ms: u64,
}

impl FaultRule {
    fn matches(&self, site: &str) -> bool {
        match self.site.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => self.site == site,
        }
    }
}

/// A deterministic script of failures for one [`with_faults`] scope.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed feeding [`Trigger::Probability`] decisions.
    pub seed: u64,
    /// Rules checked in order; the first matching rule decides.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no sites fail) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a permanent-failure rule for `site`.
    pub fn fail(mut self, site: impl Into<String>, trigger: Trigger) -> Self {
        self.rules.push(FaultRule {
            site: site.into(),
            trigger,
            transient: false,
            delay_ms: 0,
        });
        self
    }

    /// Adds a transient-failure (retryable) rule for `site`.
    pub fn fail_transient(mut self, site: impl Into<String>, trigger: Trigger) -> Self {
        self.rules.push(FaultRule {
            site: site.into(),
            trigger,
            transient: true,
            delay_ms: 0,
        });
        self
    }

    /// Adds a slowdown rule for `site`: matching invocations sleep
    /// `delay_ms` and then succeed, so the operation completes but its
    /// measured cost inflates.
    pub fn slow(mut self, site: impl Into<String>, trigger: Trigger, delay_ms: u64) -> Self {
        self.rules.push(FaultRule {
            site: site.into(),
            trigger,
            transient: false,
            delay_ms,
        });
        self
    }
}

/// A fault that actually fired during a [`with_faults`] scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    /// Site that failed.
    pub site: String,
    /// Zero-based invocation index at which it failed.
    pub invocation: u64,
}

/// Everything that fired during one [`with_faults`] scope.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// Faults in firing order.
    pub fired: Vec<FiredFault>,
    /// Slowdown injections in firing order (the site succeeded late).
    pub slowed: Vec<FiredFault>,
}

impl FaultReport {
    /// How many times `site` failed during the scope.
    pub fn count(&self, site: &str) -> usize {
        self.fired.iter().filter(|f| f.site == site).count()
    }

    /// How many times `site` was slowed during the scope.
    pub fn count_slowed(&self, site: &str) -> usize {
        self.slowed.iter().filter(|f| f.site == site).count()
    }
}

// ---------------------------------------------------------------------------
// Armed injector (feature-gated)
// ---------------------------------------------------------------------------

#[cfg(feature = "fault-injection")]
mod armed {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    pub(super) struct Injector {
        pub(super) plan: FaultPlan,
        pub(super) counters: Mutex<HashMap<String, u64>>,
        pub(super) fired: Mutex<Vec<FiredFault>>,
        pub(super) slowed: Mutex<Vec<FiredFault>>,
    }

    /// Fast-path flag: `fire()` is a single relaxed load when disarmed.
    pub(super) static ARMED: AtomicBool = AtomicBool::new(false);

    pub(super) fn injector_slot() -> &'static Mutex<Option<Arc<Injector>>> {
        static SLOT: Mutex<Option<Arc<Injector>>> = Mutex::new(None);
        &SLOT
    }

    /// Serializes concurrent `with_faults` scopes (the injector is
    /// process-global; cargo runs tests on many threads).
    pub(super) fn scope_lock() -> &'static Mutex<()> {
        static LOCK: Mutex<()> = Mutex::new(());
        &LOCK
    }

    /// SplitMix64 over (seed, site, invocation): deterministic verdicts
    /// for `Trigger::Probability` with no global RNG state.
    pub(super) fn decision_hash(seed: u64, site: &str, invocation: u64) -> u64 {
        let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in site.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= invocation.wrapping_mul(0x2545_f491_4f6c_dd1d);
        let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Marks a named fault site. Returns `Err` when an armed [`FaultPlan`]
/// scripts a failure for this invocation; otherwise `Ok(())`.
///
/// Disarmed (the overwhelmingly common case) this is one relaxed atomic
/// load. With the `fault-injection` feature disabled it is a constant.
#[cfg(feature = "fault-injection")]
pub fn fire(site: &str) -> Result<(), FaultError> {
    use armed::*;
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    let injector = {
        let slot = injector_slot().lock().unwrap_or_else(|p| p.into_inner());
        match slot.as_ref() {
            Some(i) => Arc::clone(i),
            None => return Ok(()),
        }
    };
    let invocation = {
        let mut counters = injector.counters.lock().unwrap_or_else(|p| p.into_inner());
        let c = counters.entry(site.to_string()).or_insert(0);
        let inv = *c;
        *c += 1;
        inv
    };
    let rule = injector.plan.rules.iter().find(|r| r.matches(site));
    let Some(rule) = rule else { return Ok(()) };
    let fails = match rule.trigger {
        Trigger::Always => true,
        Trigger::Times(n) => invocation < n as u64,
        Trigger::Nth { skip, times } => {
            invocation >= skip as u64 && invocation < (skip + times) as u64
        }
        Trigger::Probability(p) => {
            let h = armed::decision_hash(injector.plan.seed, site, invocation);
            (h as f64 / u64::MAX as f64) < p
        }
    };
    if !fails {
        return Ok(());
    }
    if rule.delay_ms > 0 {
        // A slowdown rule: stall the caller, record it, succeed.
        let delay = std::time::Duration::from_millis(rule.delay_ms);
        injector
            .slowed
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(FiredFault {
                site: site.to_string(),
                invocation,
            });
        std::thread::sleep(delay);
        return Ok(());
    }
    injector
        .fired
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(FiredFault {
            site: site.to_string(),
            invocation,
        });
    Err(FaultError {
        site: site.to_string(),
        invocation,
        transient: rule.transient,
    })
}

/// No-op: the `fault-injection` feature is disabled.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn fire(_site: &str) -> Result<(), FaultError> {
    Ok(())
}

/// Runs `f` with `plan` armed, returning `f`'s result plus a report of
/// every fault that fired. Scopes are serialized process-wide (tests on
/// other threads wait rather than observe each other's faults), and the
/// plan is disarmed even if `f` panics.
#[cfg(feature = "fault-injection")]
pub fn with_faults<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> (R, FaultReport) {
    use armed::*;
    let _scope = scope_lock().lock().unwrap_or_else(|p| p.into_inner());
    let injector = Arc::new(Injector {
        plan,
        counters: std::sync::Mutex::new(Default::default()),
        fired: std::sync::Mutex::new(Vec::new()),
        slowed: std::sync::Mutex::new(Vec::new()),
    });
    *injector_slot().lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::clone(&injector));
    ARMED.store(true, Ordering::SeqCst);

    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            armed::ARMED.store(false, Ordering::SeqCst);
            *armed::injector_slot()
                .lock()
                .unwrap_or_else(|p| p.into_inner()) = None;
        }
    }
    let disarm = Disarm;

    let result = f();

    drop(disarm);
    let fired = injector
        .fired
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone();
    let slowed = injector
        .slowed
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone();
    (result, FaultReport { fired, slowed })
}

/// Runs `f` unmodified: the `fault-injection` feature is disabled, so no
/// plan ever arms.
#[cfg(not(feature = "fault-injection"))]
pub fn with_faults<R>(_plan: FaultPlan, f: impl FnOnce() -> R) -> (R, FaultReport) {
    (f(), FaultReport::default())
}

/// True while a [`with_faults`] scope is armed on this process.
#[cfg(feature = "fault-injection")]
pub fn is_armed() -> bool {
    armed::ARMED.load(Ordering::Relaxed)
}

/// Always false: the `fault-injection` feature is disabled.
#[cfg(not(feature = "fault-injection"))]
pub fn is_armed() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sites_never_fail() {
        assert!(!is_armed());
        for _ in 0..100 {
            assert!(fire("any.site").is_ok());
        }
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn times_trigger_fails_then_recovers() {
        let ((), report) = with_faults(
            FaultPlan::new(1).fail_transient("io.read", Trigger::Times(2)),
            || {
                assert_eq!(
                    fire("io.read"),
                    Err(FaultError {
                        site: "io.read".into(),
                        invocation: 0,
                        transient: true
                    })
                );
                assert!(fire("io.read").is_err());
                assert!(fire("io.read").is_ok());
                assert!(fire("other.site").is_ok());
            },
        );
        assert_eq!(report.count("io.read"), 2);
        assert_eq!(report.count("other.site"), 0);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn nth_trigger_skips_then_fails() {
        let ((), report) = with_faults(
            FaultPlan::new(1).fail("x", Trigger::Nth { skip: 1, times: 1 }),
            || {
                assert!(fire("x").is_ok());
                assert!(fire("x").is_err());
                assert!(fire("x").is_ok());
            },
        );
        assert_eq!(
            report.fired,
            vec![FiredFault {
                site: "x".into(),
                invocation: 1
            }]
        );
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn slow_rule_delays_but_succeeds() {
        let (elapsed, report) = with_faults(
            FaultPlan::new(1).slow("net.fetch", Trigger::Times(1), 20),
            || {
                let t = std::time::Instant::now();
                assert!(fire("net.fetch").is_ok());
                let first = t.elapsed();
                assert!(fire("net.fetch").is_ok());
                first
            },
        );
        assert!(elapsed >= std::time::Duration::from_millis(20));
        assert!(report.fired.is_empty());
        assert_eq!(report.count_slowed("net.fetch"), 1);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn prefix_wildcard_matches_site_family() {
        let ((), report) = with_faults(FaultPlan::new(1).fail("bat.*", Trigger::Always), || {
            assert!(fire("bat.insert").is_err());
            assert!(fire("bat.join").is_err());
            assert!(fire("proc.dbnInfer").is_ok());
        });
        assert_eq!(report.fired.len(), 2);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn probability_trigger_is_deterministic() {
        let run = || {
            with_faults(
                FaultPlan::new(42).fail("p.site", Trigger::Probability(0.5)),
                || (0..64).map(|_| fire("p.site").is_err()).collect::<Vec<_>>(),
            )
            .0
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // With p = 0.5 over 64 draws, both outcomes must occur.
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn disarms_even_when_scope_panics() {
        let caught = std::panic::catch_unwind(|| {
            with_faults(FaultPlan::new(0).fail("x", Trigger::Always), || {
                panic!("scope panics");
            })
        });
        assert!(caught.is_err());
        assert!(!is_armed());
        assert!(fire("x").is_ok());
    }

    #[test]
    fn cancellation_token_is_shared_between_clones() {
        let token = CancellationToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }
}
