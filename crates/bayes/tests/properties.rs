//! Property tests for BN/DBN invariants.

use f1_bayes::cpt::Cpt;
use f1_bayes::dbn::Dbn;
use f1_bayes::engine::Engine;
use f1_bayes::evidence::{EvidenceSeq, Obs};
use f1_bayes::exact;
use f1_bayes::slice::SliceNet;
use proptest::prelude::*;

fn prob() -> impl Strategy<Value = f64> {
    // Stay away from exact 0/1 so evidence is never impossible.
    0.02f64..0.98
}

/// Builds the EA -> Kw HMM-like DBN from sampled parameters.
fn hmm_dbn(p0: f64, stay0: f64, stay1: f64, e0: f64, e1: f64) -> Dbn {
    let mut s = SliceNet::new();
    let ea = s.hidden("EA", 2, &[]);
    let kw = s.observed("Kw", 2, &[ea]);
    let mut d = Dbn::new(s, vec![(ea, ea)]).unwrap();
    d.set_prior_cpt(ea, Cpt::binary(vec![], &[p0]).unwrap())
        .unwrap();
    d.set_trans_cpt(ea, Cpt::binary(vec![2], &[1.0 - stay0, stay1]).unwrap())
        .unwrap();
    d.set_cpt(kw, Cpt::binary(vec![2], &[e0, e1]).unwrap())
        .unwrap();
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_matches_brute_force_enumeration(
        p0 in prob(), stay0 in prob(), stay1 in prob(),
        e0 in prob(), e1 in prob(),
        obs in proptest::collection::vec(0usize..2, 1..5),
    ) {
        let d = hmm_dbn(p0, stay0, stay1, e0, e1);
        let mut ev = EvidenceSeq::new(obs.len());
        for (t, &o) in obs.iter().enumerate() {
            ev.set(t, 1, Obs::Hard(o));
        }
        let eng = Engine::new(&d).unwrap();
        let smo = eng.smooth(&ev).unwrap();
        for t in 0..obs.len() {
            let fast = smo.gamma.marginal(t, 0).unwrap();
            let slow = exact::posterior(&d, &ev, t, 0).unwrap();
            prop_assert!((fast[1] - slow[1]).abs() < 1e-9,
                "t={} fast={} slow={}", t, fast[1], slow[1]);
        }
        let ll = exact::loglik(&d, &ev).unwrap();
        prop_assert!((smo.gamma.loglik - ll).abs() < 1e-9);
    }

    #[test]
    fn posteriors_are_distributions(
        p0 in prob(), stay0 in prob(), stay1 in prob(),
        e0 in prob(), e1 in prob(),
        soft in proptest::collection::vec(prob(), 1..12),
    ) {
        let d = hmm_dbn(p0, stay0, stay1, e0, e1);
        let mut ev = EvidenceSeq::new(soft.len());
        for (t, &p) in soft.iter().enumerate() {
            ev.set_prob(t, 1, p);
        }
        let eng = Engine::new(&d).unwrap();
        let post = eng.filter(&ev, None).unwrap();
        for t in 0..soft.len() {
            let m = post.marginal(t, 0).unwrap();
            prop_assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(m.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn bk_single_cluster_equals_exact_filtering(
        p0 in prob(), stay0 in prob(), stay1 in prob(),
        e0 in prob(), e1 in prob(),
        soft in proptest::collection::vec(prob(), 1..10),
    ) {
        let d = hmm_dbn(p0, stay0, stay1, e0, e1);
        let mut ev = EvidenceSeq::new(soft.len());
        for (t, &p) in soft.iter().enumerate() {
            ev.set_prob(t, 1, p);
        }
        let eng = Engine::new(&d).unwrap();
        let exact_f = eng.filter(&ev, None).unwrap();
        let bk = eng.filter(&ev, Some(&[vec![0]])).unwrap();
        for t in 0..soft.len() {
            let a = exact_f.marginal(t, 0).unwrap()[1];
            let b = bk.marginal(t, 0).unwrap()[1];
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn bk_step_api_matches_batch_filter(
        p0 in prob(), stay0 in prob(), stay1 in prob(),
        e0 in prob(), e1 in prob(),
        soft in proptest::collection::vec(prob(), 1..12),
        clustered in 0u8..2,
    ) {
        // Differential: the resumable step API, fed evidence ONE SLICE
        // AT A TIME (each step sees only a 1-slice window, exactly like
        // a live ingest chunk), must produce beliefs identical to batch
        // filtering over the whole sequence.
        let d = hmm_dbn(p0, stay0, stay1, e0, e1);
        let mut ev = EvidenceSeq::new(soft.len());
        for (t, &p) in soft.iter().enumerate() {
            ev.set_prob(t, 1, p);
        }
        let eng = Engine::new(&d).unwrap();
        let clusters: Option<Vec<Vec<usize>>> = (clustered == 1).then(|| vec![vec![0]]);
        let batch = eng.filter(&ev, clusters.as_deref()).unwrap();
        let mut state = eng.stepper(clusters.as_deref()).unwrap();
        for t in 0..soft.len() {
            let slice = ev.window(t, t + 1);
            let belief = state.step(&slice, 0).unwrap();
            prop_assert_eq!(belief.as_slice(), batch.belief(t),
                "belief diverged at t={}", t);
            let m = state.marginal(0).unwrap();
            let bm = batch.marginal(t, 0).unwrap();
            prop_assert_eq!(m, bm, "marginal diverged at t={}", t);
        }
        prop_assert_eq!(state.slices(), batch.len());
        prop_assert!((state.loglik() - batch.loglik).abs() < 1e-12,
            "loglik diverged: step={} batch={}", state.loglik(), batch.loglik);
    }

    #[test]
    fn bk_step_projection_matches_batch_on_coupled_net(
        p0 in prob(), c0 in prob(), c1 in prob(),
        s0 in prob(), s1 in prob(),
        e0 in prob(), e1 in prob(),
        obs in proptest::collection::vec(0usize..2, 1..10),
    ) {
        // Two coupled hidden nodes with singleton BK clusters: the
        // projection is a genuine approximation here, so this checks the
        // step API reproduces the *projected* trajectory, not just the
        // exact one.
        let mut s = SliceNet::new();
        let a = s.hidden("A", 2, &[]);
        let b = s.hidden("B", 2, &[a]);
        let kw = s.observed("Kw", 2, &[b]);
        let mut d = Dbn::new(s, vec![(a, a), (b, b)]).unwrap();
        d.set_prior_cpt(a, Cpt::binary(vec![], &[p0]).unwrap()).unwrap();
        d.set_prior_cpt(b, Cpt::binary(vec![2], &[c0, c1]).unwrap()).unwrap();
        d.set_trans_cpt(a, Cpt::binary(vec![2], &[1.0 - s0, s0]).unwrap()).unwrap();
        d.set_trans_cpt(b, Cpt::binary(vec![2, 2], &[c0, s1, c1, s1]).unwrap()).unwrap();
        d.set_cpt(kw, Cpt::binary(vec![2], &[e0, e1]).unwrap()).unwrap();
        let mut ev = EvidenceSeq::new(obs.len());
        for (t, &o) in obs.iter().enumerate() {
            ev.set(t, kw, Obs::Hard(o));
        }
        let eng = Engine::new(&d).unwrap();
        let clusters = vec![vec![a], vec![b]];
        let batch = eng.filter(&ev, Some(&clusters)).unwrap();
        let mut state = eng.stepper(Some(&clusters)).unwrap();
        for t in 0..obs.len() {
            let belief = state.step(&ev.window(t, t + 1), 0).unwrap();
            prop_assert_eq!(belief.as_slice(), batch.belief(t),
                "projected belief diverged at t={}", t);
        }
        prop_assert!((state.loglik() - batch.loglik).abs() < 1e-12);
    }

    #[test]
    fn em_never_decreases_loglik(
        seed in 0u64..1000,
        t_len in 4usize..16,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = hmm_dbn(0.5, 0.5, 0.5, 0.5, 0.5);
        model.randomize(&mut rng, 0.7);
        let mut seqs = Vec::new();
        for _ in 0..3 {
            let mut ev = EvidenceSeq::new(t_len);
            for t in 0..t_len {
                ev.set(t, 1, Obs::Hard(rng.gen_range(0..2)));
            }
            seqs.push(ev);
        }
        let report = f1_bayes::em::train(
            &mut model,
            &seqs,
            &f1_bayes::em::EmConfig { max_iters: 8, tol: 0.0, pseudocount: 0.0 },
        ).unwrap();
        for w in report.logliks.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-7, "loglik dropped {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn cluster_projection_preserves_single_node_marginals(
        p0 in prob(), c0 in prob(), c1 in prob(),
    ) {
        // Two-node net; project onto singletons; node marginals unchanged.
        let mut s = SliceNet::new();
        let a = s.hidden("A", 2, &[]);
        let b = s.hidden("B", 2, &[a]);
        let mut d = Dbn::bn(s).unwrap();
        d.set_prior_cpt(a, Cpt::binary(vec![], &[p0]).unwrap()).unwrap();
        d.set_prior_cpt(b, Cpt::binary(vec![2], &[c0, c1]).unwrap()).unwrap();
        let eng = Engine::new(&d).unwrap();
        let ev = EvidenceSeq::new(1);
        let post = eng.filter(&ev, None).unwrap();
        let ma = post.marginal(0, a).unwrap();
        let mb = post.marginal(0, b).unwrap();
        let mut belief = post.belief(0).to_vec();
        eng.project(&mut belief, &[vec![a], vec![b]]).unwrap();
        // Recompute marginals from the projected belief.
        let pa1 = belief[1] + belief[3];
        let pb1 = belief[2] + belief[3];
        prop_assert!((pa1 - ma[1]).abs() < 1e-9);
        prop_assert!((pb1 - mb[1]).abs() < 1e-9);
    }

    #[test]
    fn metrics_precision_recall_bounded(
        dets in proptest::collection::vec((0usize..100, 1usize..20), 0..8),
        trs in proptest::collection::vec((0usize..100, 1usize..20), 0..8),
    ) {
        use f1_bayes::metrics::{precision_recall, Segment};
        let d: Vec<Segment> = dets.iter().map(|&(s, l)| Segment::new(s, s + l)).collect();
        let t: Vec<Segment> = trs.iter().map(|&(s, l)| Segment::new(s, s + l)).collect();
        let pr = precision_recall(&d, &t);
        prop_assert!((0.0..=1.0).contains(&pr.precision));
        prop_assert!((0.0..=1.0).contains(&pr.recall));
        prop_assert!((0.0..=1.0).contains(&pr.f1()));
        prop_assert_eq!(pr.true_positives + pr.false_positives, d.len());
    }

    #[test]
    fn threshold_segments_respect_min_len(
        trace in proptest::collection::vec(0.0f64..1.0, 0..80),
        theta in 0.1f64..0.9,
        min_len in 1usize..6,
    ) {
        let segs = f1_bayes::metrics::threshold_segments(&trace, theta, min_len, 0);
        for s in &segs {
            prop_assert!(s.len() >= min_len);
            for &v in &trace[s.start..s.end] {
                prop_assert!(v >= theta);
            }
        }
        // Segments are disjoint and ordered.
        for w in segs.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }
}
