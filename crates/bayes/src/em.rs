//! Expectation-Maximization parameter learning.
//!
//! The paper learns both BN and DBN parameters with EM ("as we work with
//! DBNs that have hidden states, we employ the Expectation Maximization
//! learning algorithm", §4). This module implements EM with:
//!
//! * hidden nodes (the E-step uses exact forward-backward smoothing from
//!   [`crate::engine::Engine::smooth`]),
//! * **tied transition parameters** across time slices (a 2-TBN),
//! * soft evidence — expected counts for evidence nodes are weighted by
//!   the per-state posterior implied by the likelihood vector,
//! * optional clamping: hard evidence on hidden nodes simply enters the
//!   sequence, enabling partially supervised training,
//! * Dirichlet pseudocounts for MAP smoothing of sparse rows.
//!
//! A static BN is trained by pooling every slice's posterior into the
//! prior CPT counts (slices are independent when there are no temporal
//! edges).

use crate::cpt::CptCounts;
use crate::dbn::Dbn;
use crate::engine::Engine;
use crate::evidence::{EvidenceSeq, Obs};
use crate::{BayesError, Result};

/// EM hyper-parameters.
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// Maximum number of EM iterations.
    pub max_iters: usize,
    /// Relative log-likelihood improvement below which EM stops.
    pub tol: f64,
    /// Dirichlet pseudocount added to every CPT cell in the M-step.
    pub pseudocount: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            max_iters: 20,
            tol: 1e-4,
            pseudocount: 0.05,
        }
    }
}

/// What EM did.
#[derive(Debug, Clone)]
pub struct EmReport {
    /// Number of completed iterations.
    pub iterations: usize,
    /// Total training log-likelihood after each iteration's E-step.
    pub logliks: Vec<f64>,
    /// True when the tolerance criterion stopped EM before `max_iters`.
    pub converged: bool,
}

/// Runs EM on `dbn` over the training `sequences`, updating its CPTs in
/// place.
pub fn train(dbn: &mut Dbn, sequences: &[EvidenceSeq], cfg: &EmConfig) -> Result<EmReport> {
    if sequences.is_empty() || sequences.iter().all(|s| s.is_empty()) {
        return Err(BayesError::EmptySequence);
    }
    let n_nodes = dbn.slice().len();
    let mut logliks = Vec::new();
    let mut converged = false;

    for iter in 0..cfg.max_iters {
        // Fault site `em.iteration`: tests can abort training at a
        // scripted iteration. An injected or numerical failure leaves
        // the CPTs at their last completed iteration.
        if cobra_faults::is_armed() {
            if let Err(e) = cobra_faults::fire("em.iteration") {
                return Err(BayesError::EmDiverged {
                    iteration: iter,
                    message: e.to_string(),
                });
            }
        }
        // E-step.
        let mut prior_counts: Vec<CptCounts> = (0..n_nodes)
            .map(|id| dbn.prior_cpt(id).zero_counts())
            .collect();
        let mut trans_counts: Vec<CptCounts> = (0..n_nodes)
            .map(|id| dbn.trans_cpt(id).zero_counts())
            .collect();
        let mut total_ll = 0.0;
        {
            let engine = Engine::new(dbn)?;
            for seq in sequences.iter().filter(|s| !s.is_empty()) {
                total_ll += accumulate(dbn, &engine, seq, &mut prior_counts, &mut trans_counts)?;
            }
        }
        if !total_ll.is_finite() {
            // A NaN/-inf log-likelihood means the parameters (or the
            // evidence) broke the model; iterating further only smears
            // NaNs through every CPT.
            return Err(BayesError::EmDiverged {
                iteration: iter,
                message: format!("log-likelihood became non-finite ({total_ll})"),
            });
        }
        logliks.push(total_ll);

        // M-step.
        let is_static = dbn.is_static();
        for id in 0..n_nodes {
            let node_observed = dbn.slice().nodes()[id].observed;
            let mut prior = dbn.prior_cpt(id).clone();
            prior.set_from_counts(&prior_counts[id], cfg.pseudocount);
            dbn.set_prior_cpt(id, prior.clone())?;
            if is_static || (node_observed && dbn.temporal_parents(id).is_empty()) {
                // Tie the transition CPT to the prior: slices are
                // interchangeable for static nets and evidence nodes.
                dbn.set_trans_cpt(id, prior)?;
            } else {
                let mut trans = dbn.trans_cpt(id).clone();
                trans.set_from_counts(&trans_counts[id], cfg.pseudocount);
                dbn.set_trans_cpt(id, trans)?;
            }
        }

        // Convergence check on the E-step log-likelihood.
        let k = logliks.len();
        if k >= 2 {
            let prev = logliks[k - 2];
            let cur = logliks[k - 1];
            if (cur - prev).abs() <= cfg.tol * (1.0 + prev.abs()) {
                converged = true;
                break;
            }
        }
    }

    Ok(EmReport {
        iterations: logliks.len(),
        logliks,
        converged,
    })
}

/// Like [`train`], but strict about convergence: failing to reach
/// `cfg.tol` within `cfg.max_iters` iterations is an
/// [`BayesError::EmNotConverged`] error instead of a report flag.
pub fn train_converged(
    dbn: &mut Dbn,
    sequences: &[EvidenceSeq],
    cfg: &EmConfig,
) -> Result<EmReport> {
    let report = train(dbn, sequences, cfg)?;
    if !report.converged {
        return Err(BayesError::EmNotConverged {
            iterations: report.iterations,
        });
    }
    Ok(report)
}

/// Accumulates one sequence's expected counts; returns its log-likelihood.
fn accumulate(
    dbn: &Dbn,
    engine: &Engine<'_>,
    seq: &EvidenceSeq,
    prior_counts: &mut [CptCounts],
    trans_counts: &mut [CptCounts],
) -> Result<f64> {
    let smo = engine.smooth(seq)?;
    let tlen = seq.len();
    let n = smo.n_states;
    let is_static = dbn.is_static();
    let hidden = engine.hidden().to_vec();
    let observed = dbn.slice().observed_ids();
    let core: std::collections::HashSet<usize> = dbn.slice().core_observed().into_iter().collect();

    for t in 0..tlen {
        let hard = engine.hard_map(seq, t)?;
        let gamma = smo.gamma.belief(t);

        // Hidden-node prior counts: slice 0, or every slice when static.
        if t == 0 || is_static {
            for &h in &hidden {
                for (state, &w) in gamma.iter().enumerate() {
                    if w == 0.0 {
                        continue;
                    }
                    let cfg = engine.parent_config(h, state, None, &hard, false)?;
                    prior_counts[h].add(cfg, engine.state_value(state, h), w);
                }
            }
        }

        // Observed-node counts (prior CPT; evidence CPTs are tied).
        for &e in &observed {
            let card = dbn.slice().nodes()[e].card;
            let cpt = dbn.prior_cpt(e);
            let obs = seq.get(t, e);
            if obs.is_none() && !core.contains(&e) {
                continue; // missing leaf observation: no information
            }
            for (state, &w) in gamma.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let cfg = engine.parent_config(e, state, None, &hard, false)?;
                if let Some(&v) = hard.get(&e) {
                    prior_counts[e].add(cfg, v, w);
                } else if let Some(obs) = obs {
                    // Posterior over the evidence node's own state.
                    let mut q: Vec<f64> =
                        (0..card).map(|s| cpt.prob(cfg, s) * lik(obs, s)).collect();
                    let qs: f64 = q.iter().sum();
                    if qs > 0.0 {
                        for x in &mut q {
                            *x /= qs;
                        }
                        for (s, &qv) in q.iter().enumerate() {
                            prior_counts[e].add(cfg, s, w * qv);
                        }
                    }
                }
            }
        }
    }

    // Hidden-node transition counts from pairwise posteriors.
    if !is_static {
        for t in 0..tlen.saturating_sub(1) {
            let hard_next = engine.hard_map(seq, t + 1)?;
            let xi = &smo.xi[t];
            for &h in &hidden {
                for prev in 0..n {
                    for cur in 0..n {
                        let w = xi[prev * n + cur];
                        if w == 0.0 {
                            continue;
                        }
                        let cfg = engine.parent_config(h, cur, Some(prev), &hard_next, true)?;
                        trans_counts[h].add(cfg, engine.state_value(cur, h), w);
                    }
                }
            }
        }
    }

    Ok(smo.gamma.loglik)
}

fn lik(obs: &Obs, state: usize) -> f64 {
    match obs {
        Obs::Hard(s) => {
            if *s == state {
                1.0
            } else {
                0.0
            }
        }
        Obs::Soft(l) => l.get(state).copied().unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpt::Cpt;
    use crate::evidence::Obs;
    use crate::slice::SliceNet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn hmm_dbn() -> (Dbn, usize, usize) {
        let mut s = SliceNet::new();
        let ea = s.hidden("EA", 2, &[]);
        let kw = s.observed("Kw", 2, &[ea]);
        let d = Dbn::new(s, vec![(ea, ea)]).unwrap();
        (d, ea, kw)
    }

    /// Samples sequences from a ground-truth model.
    fn sample(truth: &Dbn, ea: usize, kw: usize, rng: &mut StdRng, t_len: usize) -> EvidenceSeq {
        let mut seq = EvidenceSeq::new(t_len);
        let mut state = (rng.gen::<f64>() < truth.prior_cpt(ea).prob(0, 1)) as usize;
        for t in 0..t_len {
            if t > 0 {
                let p = truth.trans_cpt(ea).prob(state, 1);
                state = (rng.gen::<f64>() < p) as usize;
            }
            let pk = truth.prior_cpt(kw).prob(state, 1);
            let obs = (rng.gen::<f64>() < pk) as usize;
            seq.set(t, kw, Obs::Hard(obs));
        }
        seq
    }

    #[test]
    fn injected_iteration_fault_aborts_training() {
        let (mut model, ea, kw) = hmm_dbn();
        let mut rng = StdRng::seed_from_u64(3);
        let seqs = vec![sample(&model.clone(), ea, kw, &mut rng, 10)];
        let (result, report) = cobra_faults::with_faults(
            cobra_faults::FaultPlan::new(1).fail(
                "em.iteration",
                cobra_faults::Trigger::Nth { skip: 2, times: 1 },
            ),
            || {
                train(
                    &mut model,
                    &seqs,
                    &EmConfig {
                        max_iters: 8,
                        // Negative tolerance: the convergence check can
                        // never pass, so the loop provably reaches the
                        // scripted fault iteration.
                        tol: -1.0,
                        pseudocount: 0.1,
                    },
                )
            },
        );
        assert_eq!(report.count("em.iteration"), 1);
        match result {
            Err(BayesError::EmDiverged { iteration: 2, .. }) => {}
            other => panic!("expected EmDiverged at iteration 2, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_evidence_is_a_typed_error_not_a_nan_model() {
        let (mut model, _ea, kw) = hmm_dbn();
        let mut seq = EvidenceSeq::new(4);
        // Soft evidence with NaN mass poisons the log-likelihood.
        for t in 0..4 {
            seq.set(t, kw, Obs::Soft(vec![f64::NAN, 1.0]));
        }
        let err = train(&mut model, &[seq], &EmConfig::default()).unwrap_err();
        assert!(
            matches!(
                err,
                BayesError::EmDiverged { .. } | BayesError::Numerical(_)
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn train_converged_is_strict_about_tolerance() {
        let (mut model, ea, kw) = hmm_dbn();
        let mut rng = StdRng::seed_from_u64(5);
        model.randomize(&mut rng, 0.6);
        let seqs = vec![sample(&model.clone(), ea, kw, &mut rng, 30)];
        // One iteration with zero tolerance cannot satisfy the check.
        let err = train_converged(
            &mut model,
            &seqs,
            &EmConfig {
                max_iters: 1,
                tol: 0.0,
                pseudocount: 0.1,
            },
        )
        .unwrap_err();
        assert_eq!(err, BayesError::EmNotConverged { iterations: 1 });
        // A loose tolerance converges and reports how.
        let report = train_converged(
            &mut model,
            &seqs,
            &EmConfig {
                max_iters: 20,
                tol: 1e3,
                pseudocount: 0.1,
            },
        )
        .unwrap();
        assert!(report.converged);
    }

    #[test]
    fn loglik_is_monotone_nondecreasing() {
        let (mut model, ea, kw) = hmm_dbn();
        let (mut truth, _, _) = hmm_dbn();
        truth
            .set_prior_cpt(ea, Cpt::binary(vec![], &[0.2]).unwrap())
            .unwrap();
        truth
            .set_trans_cpt(ea, Cpt::binary(vec![2], &[0.1, 0.9]).unwrap())
            .unwrap();
        truth
            .set_cpt(kw, Cpt::binary(vec![2], &[0.15, 0.8]).unwrap())
            .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let seqs: Vec<EvidenceSeq> = (0..6)
            .map(|_| sample(&truth, ea, kw, &mut rng, 40))
            .collect();

        model.randomize(&mut rng, 0.6);
        let report = train(
            &mut model,
            &seqs,
            &EmConfig {
                max_iters: 15,
                tol: 0.0,
                pseudocount: 0.0,
            },
        )
        .unwrap();
        for w in report.logliks.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-8,
                "EM log-likelihood decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn em_recovers_emission_asymmetry() {
        // Ground truth: keyword much likelier when EA=1. EM from an
        // informative start should keep/strengthen the asymmetry.
        let (mut truth, ea, kw) = hmm_dbn();
        truth
            .set_prior_cpt(ea, Cpt::binary(vec![], &[0.3]).unwrap())
            .unwrap();
        truth
            .set_trans_cpt(ea, Cpt::binary(vec![2], &[0.15, 0.85]).unwrap())
            .unwrap();
        truth
            .set_cpt(kw, Cpt::binary(vec![2], &[0.1, 0.9]).unwrap())
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let seqs: Vec<EvidenceSeq> = (0..10)
            .map(|_| sample(&truth, ea, kw, &mut rng, 60))
            .collect();

        let (mut model, _, _) = hmm_dbn();
        model
            .set_prior_cpt(ea, Cpt::binary(vec![], &[0.4]).unwrap())
            .unwrap();
        model
            .set_trans_cpt(ea, Cpt::binary(vec![2], &[0.3, 0.7]).unwrap())
            .unwrap();
        model
            .set_cpt(kw, Cpt::binary(vec![2], &[0.3, 0.7]).unwrap())
            .unwrap();
        train(&mut model, &seqs, &EmConfig::default()).unwrap();
        let p_low = model.prior_cpt(kw).prob(0, 1);
        let p_high = model.prior_cpt(kw).prob(1, 1);
        assert!(
            p_high - p_low > 0.4,
            "emission asymmetry not recovered: {p_low} vs {p_high}"
        );
    }

    #[test]
    fn supervised_clamping_pins_down_hidden_semantics() {
        // Clamp EA to ground truth during training: emission CPT converges
        // near the true conditional frequencies.
        let (mut truth, ea, kw) = hmm_dbn();
        truth
            .set_prior_cpt(ea, Cpt::binary(vec![], &[0.5]).unwrap())
            .unwrap();
        truth
            .set_trans_cpt(ea, Cpt::binary(vec![2], &[0.2, 0.8]).unwrap())
            .unwrap();
        truth
            .set_cpt(kw, Cpt::binary(vec![2], &[0.05, 0.75]).unwrap())
            .unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        // Sample with hidden-state bookkeeping so we can clamp.
        let mut seqs = Vec::new();
        for _ in 0..8 {
            let t_len = 80;
            let mut seq = EvidenceSeq::new(t_len);
            let mut state = (rng.gen::<f64>() < 0.5) as usize;
            for t in 0..t_len {
                if t > 0 {
                    let p = truth.trans_cpt(ea).prob(state, 1);
                    state = (rng.gen::<f64>() < p) as usize;
                }
                let pk = truth.prior_cpt(kw).prob(state, 1);
                seq.set(t, kw, Obs::Hard((rng.gen::<f64>() < pk) as usize));
                seq.set(t, ea, Obs::Hard(state));
            }
            seqs.push(seq);
        }
        let (mut model, _, _) = hmm_dbn();
        train(&mut model, &seqs, &EmConfig::default()).unwrap();
        assert!((model.prior_cpt(kw).prob(1, 1) - 0.75).abs() < 0.1);
        assert!((model.prior_cpt(kw).prob(0, 1) - 0.05).abs() < 0.1);
        assert!(model.trans_cpt(ea).prob(1, 1) > 0.7);
    }

    #[test]
    fn static_bn_pools_all_slices() {
        // Static net: P(E|H) learned from every slice. Clamp H so the
        // estimate is exact counting.
        let mut s = SliceNet::new();
        let h = s.hidden("H", 2, &[]);
        let e = s.observed("E", 2, &[h]);
        let mut model = Dbn::bn(s).unwrap();
        let mut seq = EvidenceSeq::new(8);
        // H=1 slices: E = 1,1,1,0 ; H=0 slices: E = 0,0,0,1
        let data = [
            (1usize, 1usize),
            (1, 1),
            (1, 1),
            (1, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 1),
        ];
        for (t, (hv, ev)) in data.iter().enumerate() {
            seq.set(t, h, Obs::Hard(*hv));
            seq.set(t, e, Obs::Hard(*ev));
        }
        train(
            &mut model,
            &[seq],
            &EmConfig {
                max_iters: 3,
                tol: 0.0,
                pseudocount: 0.0,
            },
        )
        .unwrap();
        assert!((model.prior_cpt(e).prob(1, 1) - 0.75).abs() < 1e-9);
        assert!((model.prior_cpt(e).prob(0, 1) - 0.25).abs() < 1e-9);
        assert!((model.prior_cpt(h).prob(0, 1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_training_set_is_rejected() {
        let (mut model, _, _) = hmm_dbn();
        assert!(matches!(
            train(&mut model, &[], &EmConfig::default()),
            Err(BayesError::EmptySequence)
        ));
        assert!(matches!(
            train(&mut model, &[EvidenceSeq::new(0)], &EmConfig::default()),
            Err(BayesError::EmptySequence)
        ));
    }
}
