//! The intra-slice structure of a network: nodes, cardinalities, parents.
//!
//! A [`SliceNet`] describes one time slice of a DBN (or an entire static
//! BN). Nodes are *hidden* or *observed*; observed nodes are the shaded
//! evidence nodes of the paper's Fig. 7 and Fig. 10 and receive feature
//! values as (soft) evidence.

use crate::{BayesError, Result};

/// Index of a node within its slice.
pub type NodeId = usize;

/// One node of a slice.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SliceNode {
    /// Human-readable name ("EA", "SteAvg", …).
    pub name: String,
    /// Number of discrete states (2 for every node in the paper).
    pub card: usize,
    /// Parents within the same slice, in CPT digit order.
    pub intra_parents: Vec<NodeId>,
    /// True for evidence nodes.
    pub observed: bool,
}

/// The intra-slice structure.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct SliceNet {
    nodes: Vec<SliceNode>,
}

impl SliceNet {
    /// An empty slice.
    pub fn new() -> Self {
        SliceNet::default()
    }

    /// Adds a hidden node and returns its id.
    pub fn hidden(&mut self, name: &str, card: usize, intra_parents: &[NodeId]) -> NodeId {
        self.push(name, card, intra_parents, false)
    }

    /// Adds an observed (evidence) node and returns its id.
    pub fn observed(&mut self, name: &str, card: usize, intra_parents: &[NodeId]) -> NodeId {
        self.push(name, card, intra_parents, true)
    }

    fn push(
        &mut self,
        name: &str,
        card: usize,
        intra_parents: &[NodeId],
        observed: bool,
    ) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(SliceNode {
            name: name.to_string(),
            card,
            intra_parents: intra_parents.to_vec(),
            observed,
        });
        id
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[SliceNode] {
        &self.nodes
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> Result<&SliceNode> {
        self.nodes.get(id).ok_or(BayesError::UnknownNode(id))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the slice has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Id of the node with the given name.
    pub fn id_of(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Ids of hidden nodes, ascending.
    pub fn hidden_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].observed)
            .collect()
    }

    /// Ids of observed nodes, ascending.
    pub fn observed_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].observed)
            .collect()
    }

    /// Checks parent references and acyclicity of the intra-slice graph,
    /// returning a topological order.
    pub fn validate(&self) -> Result<Vec<NodeId>> {
        let n = self.nodes.len();
        for node in &self.nodes {
            for &p in &node.intra_parents {
                if p >= n {
                    return Err(BayesError::UnknownNode(p));
                }
            }
        }
        // Kahn's algorithm over parent → child edges.
        let mut indegree = vec![0usize; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (id, node) in self.nodes.iter().enumerate() {
            indegree[id] = node.intra_parents.len();
            for &p in &node.intra_parents {
                children[p].push(id);
            }
        }
        let mut queue: Vec<NodeId> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop() {
            order.push(id);
            for &c in &children[id] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(BayesError::Cyclic)
        }
    }

    /// Observed nodes that act as an intra-slice parent of some node.
    /// Their evidence is *hardened* (argmax) before inference because they
    /// condition other CPTs — see the engine documentation.
    pub fn core_observed(&self) -> Vec<NodeId> {
        let mut is_parent = vec![false; self.nodes.len()];
        for node in &self.nodes {
            for &p in &node.intra_parents {
                is_parent[p] = true;
            }
        }
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].observed && is_parent[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SliceNet {
        // EA -> EN -> SteAvg(observed); EA -> Kw(observed)
        let mut s = SliceNet::new();
        let ea = s.hidden("EA", 2, &[]);
        let en = s.hidden("EN", 2, &[ea]);
        s.observed("SteAvg", 2, &[en]);
        s.observed("Kw", 2, &[ea]);
        s
    }

    #[test]
    fn ids_and_names_round_trip() {
        let s = tiny();
        assert_eq!(s.len(), 4);
        assert_eq!(s.id_of("EN"), Some(1));
        assert_eq!(s.id_of("nope"), None);
        assert_eq!(s.node(1).unwrap().name, "EN");
        assert!(s.node(9).is_err());
    }

    #[test]
    fn hidden_and_observed_partition() {
        let s = tiny();
        assert_eq!(s.hidden_ids(), vec![0, 1]);
        assert_eq!(s.observed_ids(), vec![2, 3]);
    }

    #[test]
    fn validate_returns_topological_order() {
        let s = tiny();
        let order = s.validate().unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn cycles_are_rejected() {
        let mut s = SliceNet::new();
        let a = s.hidden("A", 2, &[1]); // forward reference to B
        let _b = s.hidden("B", 2, &[a]);
        assert_eq!(s.validate(), Err(BayesError::Cyclic));
    }

    #[test]
    fn dangling_parent_is_rejected() {
        let mut s = SliceNet::new();
        s.hidden("A", 2, &[5]);
        assert!(matches!(s.validate(), Err(BayesError::UnknownNode(5))));
    }

    #[test]
    fn core_observed_detects_evidence_parents() {
        // Structure (b) of Fig. 7: evidence nodes are parents of the query.
        let mut s = SliceNet::new();
        let kw = s.observed("Kw", 2, &[]);
        let ste = s.observed("Ste", 2, &[]);
        s.hidden("EA", 2, &[kw, ste]);
        assert_eq!(s.core_observed(), vec![0, 1]);
        // Leaf evidence is not core.
        assert!(tiny().core_observed().is_empty());
    }
}
