//! The joint-state inference engine.
//!
//! The engine compiles a [`Dbn`] into a compact representation over the
//! joint state of its *hidden* nodes (the paper's networks have 1–6 hidden
//! binary nodes, so at most 64 joint states) and provides:
//!
//! * **filtering** — forward message passing with per-step normalization,
//!   optionally interleaved with the Boyen–Koller cluster projection
//!   ([`Engine::filter`]),
//! * **smoothing** — forward-backward posteriors and pairwise slice
//!   posteriors, the E-step quantities for EM ([`Engine::smooth`]),
//! * **log-likelihood** of an evidence sequence.
//!
//! Evidence enters per slice: soft likelihood vectors on evidence leaves,
//! hard clamps on hidden nodes (used for partially supervised training).
//! Observed nodes that *condition* other nodes (evidence-as-parent, the
//! paper's Fig. 7b structure) are hardened to their most likely state —
//! their value then selects CPT rows, which makes the transition model
//! time-varying but keeps inference exact.

use std::collections::HashMap;

use crate::dbn::Dbn;
use crate::evidence::EvidenceSeq;
use crate::slice::NodeId;
use crate::{BayesError, Result};

/// Compiled inference engine for one [`Dbn`].
pub struct Engine<'a> {
    dbn: &'a Dbn,
    hidden: Vec<NodeId>,
    hpos: HashMap<NodeId, usize>,
    cards: Vec<usize>,
    strides: Vec<usize>,
    n_states: usize,
    core_observed: Vec<NodeId>,
    /// Whether any hidden node has a core-observed intra parent — if not,
    /// the transition matrix is time-invariant and cached.
    time_varying: bool,
}

/// Per-slice joint posteriors over the hidden nodes.
#[derive(Debug, Clone)]
pub struct Posteriors {
    hidden: Vec<NodeId>,
    cards: Vec<usize>,
    strides: Vec<usize>,
    /// Log-likelihood of the evidence under the model.
    pub loglik: f64,
    beliefs: Vec<Vec<f64>>,
}

impl Posteriors {
    /// Number of slices.
    pub fn len(&self) -> usize {
        self.beliefs.len()
    }

    /// True when no slices were processed.
    pub fn is_empty(&self) -> bool {
        self.beliefs.is_empty()
    }

    /// Marginal distribution of a hidden node at slice `t`.
    pub fn marginal(&self, t: usize, node: NodeId) -> Result<Vec<f64>> {
        let h = self
            .hidden
            .iter()
            .position(|&n| n == node)
            .ok_or(BayesError::UnknownNode(node))?;
        let card = self.cards[h];
        let mut out = vec![0.0; card];
        for (state, w) in self.beliefs[t].iter().enumerate() {
            out[(state / self.strides[h]) % card] += w;
        }
        Ok(out)
    }

    /// `P(node = state)` for every slice — the query-node trace plotted in
    /// the paper's Fig. 9.
    pub fn trace(&self, node: NodeId, state: usize) -> Result<Vec<f64>> {
        (0..self.beliefs.len())
            .map(|t| self.marginal(t, node).map(|m| m[state]))
            .collect()
    }

    /// Raw joint belief at slice `t` (states in engine encoding).
    pub fn belief(&self, t: usize) -> &[f64] {
        &self.beliefs[t]
    }
}

/// Resumable Boyen–Koller filter: the forward pass of
/// [`Engine::filter`] exposed one slice at a time, so the DBN can run
/// *online* as evidence windows arrive (live ingest) instead of
/// requiring the whole sequence up front.
///
/// Created by [`Engine::stepper`]. Each [`step`](BkState::step) call
/// consumes one evidence slice and returns the (projected) joint
/// belief after absorbing it; the state carries the running alpha
/// vector, slice count, accumulated log-likelihood, and the cached
/// transition matrix across calls. Feeding the same slices through
/// `step` produces bit-identical beliefs to one batch `filter` call —
/// batch filtering is implemented *on top of* this type.
pub struct BkState<'e, 'a> {
    engine: &'e Engine<'a>,
    clusters: Option<Vec<Vec<NodeId>>>,
    alpha: Vec<f64>,
    steps: usize,
    loglik: f64,
    cached_trans: Option<Vec<f64>>,
}

impl<'e, 'a> BkState<'e, 'a> {
    /// Absorbs evidence slice `t` of `ev` and returns the belief after
    /// the step. The first call runs the prior update; every later call
    /// runs transition → observation → normalize → project. Callers
    /// stream windows by passing each window's slices in arrival order
    /// (the `t` index addresses *within* `ev`; the filter's own clock
    /// is [`slices`](BkState::slices)).
    pub fn step(&mut self, ev: &EvidenceSeq, t: usize) -> Result<Vec<f64>> {
        let engine = self.engine;
        let hard = engine.hard_values(ev, t)?;
        let mut next = if self.steps == 0 {
            engine.prior_vec(&hard)?
        } else {
            let trans = if engine.time_varying {
                self.trans_matrix(&hard)?
            } else {
                match &self.cached_trans {
                    Some(m) => m.clone(),
                    None => {
                        let m = self.trans_matrix(&hard)?;
                        self.cached_trans = Some(m.clone());
                        m
                    }
                }
            };
            let n = engine.n_states;
            let mut next = vec![0.0; n];
            for prev in 0..n {
                let w = self.alpha[prev];
                if w == 0.0 {
                    continue;
                }
                let row = &trans[prev * n..(prev + 1) * n];
                for cur in 0..n {
                    next[cur] += w * row[cur];
                }
            }
            next
        };
        let obs = engine.obs_factor(ev, t, &hard)?;
        for (x, o) in next.iter_mut().zip(&obs) {
            *x *= o;
        }
        let scale = Engine::normalize(&mut next)?.ln();
        // Match `filter`'s operation order exactly: at t=0 the
        // projection runs *after* the loglik accumulation either way,
        // but later steps normalize before projecting.
        if let Some(c) = &self.clusters {
            engine.project(&mut next, c)?;
        }
        self.loglik += scale;
        self.alpha = next.clone();
        self.steps += 1;
        Ok(next)
    }

    fn trans_matrix(&self, hard: &HashMap<NodeId, usize>) -> Result<Vec<f64>> {
        self.engine.trans_matrix(hard)
    }

    /// Feeds every slice of `ev` in order. Returns the number of slices
    /// absorbed (convenience for chunked ingest).
    pub fn run(&mut self, ev: &EvidenceSeq) -> Result<usize> {
        for t in 0..ev.len() {
            self.step(ev, t)?;
        }
        Ok(ev.len())
    }

    /// Number of slices absorbed so far.
    pub fn slices(&self) -> usize {
        self.steps
    }

    /// Accumulated log-likelihood of everything absorbed so far.
    pub fn loglik(&self) -> f64 {
        self.loglik
    }

    /// Current joint belief (empty before the first step).
    pub fn belief(&self) -> &[f64] {
        &self.alpha
    }

    /// Marginal of a hidden node under the current belief.
    pub fn marginal(&self, node: NodeId) -> Result<Vec<f64>> {
        if self.steps == 0 {
            return Err(BayesError::EmptySequence);
        }
        let engine = self.engine;
        let h = engine
            .hidden
            .iter()
            .position(|&n| n == node)
            .ok_or(BayesError::UnknownNode(node))?;
        let card = engine.cards[h];
        let mut out = vec![0.0; card];
        for (state, w) in self.alpha.iter().enumerate() {
            out[(state / engine.strides[h]) % card] += w;
        }
        Ok(out)
    }
}

/// Smoothed posteriors plus pairwise slice posteriors, for EM.
pub struct Smoothed {
    /// Smoothed per-slice joint posteriors γ_t.
    pub gamma: Posteriors,
    /// Pairwise posteriors ξ_t over (state at t, state at t+1), row-major
    /// `xi[t][i * n_states + j]`, one entry per t in `0..T-1`.
    pub xi: Vec<Vec<f64>>,
    /// Number of joint hidden states.
    pub n_states: usize,
}

impl<'a> Engine<'a> {
    /// Compiles an engine for `dbn`.
    pub fn new(dbn: &'a Dbn) -> Result<Self> {
        dbn.slice().validate()?;
        let hidden = dbn.slice().hidden_ids();
        let cards: Vec<usize> = hidden
            .iter()
            .map(|&id| dbn.slice().nodes()[id].card)
            .collect();
        let mut strides = Vec::with_capacity(cards.len());
        let mut acc = 1usize;
        for &c in &cards {
            strides.push(acc);
            acc *= c;
        }
        let hpos: HashMap<NodeId, usize> =
            hidden.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let core_observed = dbn.slice().core_observed();
        let core_set: std::collections::HashSet<NodeId> = core_observed.iter().copied().collect();
        let time_varying = hidden.iter().any(|&id| {
            dbn.slice().nodes()[id]
                .intra_parents
                .iter()
                .any(|p| core_set.contains(p))
        });
        Ok(Engine {
            dbn,
            hidden,
            hpos,
            cards,
            strides,
            n_states: acc,
            core_observed,
            time_varying,
        })
    }

    /// Number of joint hidden states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Hidden node ids in engine order.
    pub fn hidden(&self) -> &[NodeId] {
        &self.hidden
    }

    fn value_of(&self, state: usize, node: NodeId) -> usize {
        let h = self.hpos[&node];
        (state / self.strides[h]) % self.cards[h]
    }

    /// Hard values of core-observed nodes at slice `t`.
    fn hard_values(&self, ev: &EvidenceSeq, t: usize) -> Result<HashMap<NodeId, usize>> {
        let mut out = HashMap::new();
        for &id in &self.core_observed {
            let card = self.dbn.slice().nodes()[id].card;
            let obs = ev
                .get(t, id)
                .ok_or(BayesError::MissingHardEvidence { node: id, t })?;
            obs.validate(id, card)?;
            out.insert(id, obs.argmax(card));
        }
        Ok(out)
    }

    /// Assembles a parent configuration for `node`'s CPT: intra parents
    /// read from the current joint state (`cur`) or the hard map; temporal
    /// parents read from the previous joint state (`prev`).
    fn config(
        &self,
        node: NodeId,
        cur: usize,
        prev: Option<usize>,
        hard: &HashMap<NodeId, usize>,
        with_temporal: bool,
    ) -> Result<usize> {
        let def = &self.dbn.slice().nodes()[node];
        let mut vals: Vec<usize> = Vec::with_capacity(def.intra_parents.len() + 2);
        for &p in &def.intra_parents {
            if let Some(&v) = hard.get(&p) {
                vals.push(v);
            } else if self.hpos.contains_key(&p) {
                vals.push(self.value_of(cur, p));
            } else {
                // Observed parent without evidence would have been caught
                // in hard_values; hidden parents are always in hpos.
                return Err(BayesError::MissingHardEvidence { node: p, t: 0 });
            }
        }
        if with_temporal {
            let prev = prev.expect("temporal config requires previous state");
            for from in self.dbn.temporal_parents(node) {
                vals.push(self.value_of(prev, from));
            }
        }
        let cpt = if with_temporal {
            self.dbn.trans_cpt(node)
        } else {
            self.dbn.prior_cpt(node)
        };
        Ok(cpt.config_of(&vals))
    }

    /// Observation factor over hidden states for slice `t`: the product of
    /// every observed node's expected likelihood and of soft/hard clamps
    /// on hidden nodes.
    fn obs_factor(
        &self,
        ev: &EvidenceSeq,
        t: usize,
        hard: &HashMap<NodeId, usize>,
    ) -> Result<Vec<f64>> {
        let slice = self.dbn.slice();
        let mut out = vec![1.0; self.n_states];
        for (state, o) in out.iter_mut().enumerate() {
            let mut f = 1.0;
            // Observed nodes.
            for &e in &slice.observed_ids() {
                let card = slice.nodes()[e].card;
                let cpt = self.dbn.prior_cpt(e);
                let cfg = self.config(e, state, None, hard, false)?;
                match (hard.get(&e), ev.get(t, e)) {
                    (Some(&v), obs) => {
                        // Core observed: hardened value selects one CPT cell.
                        let lik = obs.map(|o| o.likelihood(v, card)).unwrap_or(1.0);
                        f *= cpt.prob(cfg, v) * lik;
                    }
                    (None, Some(obs)) => {
                        obs.validate(e, card)?;
                        let mut s = 0.0;
                        for v in 0..card {
                            s += cpt.prob(cfg, v) * obs.likelihood(v, card);
                        }
                        f *= s;
                    }
                    (None, None) => {} // unobserved leaf sums to 1
                }
            }
            // Clamps / soft evidence on hidden nodes.
            for &h in &self.hidden {
                if let Some(obs) = ev.get(t, h) {
                    let card = slice.nodes()[h].card;
                    obs.validate(h, card)?;
                    f *= obs.likelihood(self.value_of(state, h), card);
                }
            }
            *o = f;
        }
        Ok(out)
    }

    /// Prior joint vector at slice 0.
    fn prior_vec(&self, hard: &HashMap<NodeId, usize>) -> Result<Vec<f64>> {
        let mut out = vec![1.0; self.n_states];
        for (state, o) in out.iter_mut().enumerate() {
            let mut p = 1.0;
            for &h in &self.hidden {
                let cfg = self.config(h, state, None, hard, false)?;
                p *= self.dbn.prior_cpt(h).prob(cfg, self.value_of(state, h));
            }
            *o = p;
        }
        Ok(out)
    }

    /// Transition matrix for slice `t` (t ≥ 1), row-major
    /// `m[prev * n_states + cur]`.
    fn trans_matrix(&self, hard: &HashMap<NodeId, usize>) -> Result<Vec<f64>> {
        let n = self.n_states;
        let mut m = vec![1.0; n * n];
        for prev in 0..n {
            for cur in 0..n {
                let mut p = 1.0;
                for &h in &self.hidden {
                    let cfg = self.config(h, cur, Some(prev), hard, true)?;
                    p *= self.dbn.trans_cpt(h).prob(cfg, self.value_of(cur, h));
                }
                m[prev * n + cur] = p;
            }
        }
        Ok(m)
    }

    fn normalize(v: &mut [f64]) -> Result<f64> {
        let s: f64 = v.iter().sum();
        if s.is_nan() || s <= 0.0 {
            return Err(BayesError::Numerical(
                "message vanished (impossible evidence)".into(),
            ));
        }
        for x in v.iter_mut() {
            *x /= s;
        }
        Ok(s)
    }

    /// Boyen–Koller projection: replaces a joint belief by the product of
    /// its marginals over `clusters` (a partition of the hidden nodes).
    pub fn project(&self, belief: &mut [f64], clusters: &[Vec<NodeId>]) -> Result<()> {
        self.validate_clusters(clusters)?;
        if clusters.len() <= 1 {
            return Ok(()); // single cluster: projection is the identity
        }
        let mut cluster_margs: Vec<(Vec<NodeId>, Vec<f64>)> = Vec::with_capacity(clusters.len());
        for cluster in clusters {
            let size: usize = cluster.iter().map(|&n| self.cards[self.hpos[&n]]).product();
            let mut marg = vec![0.0; size];
            for (state, w) in belief.iter().enumerate() {
                let mut idx = 0;
                let mut stride = 1;
                for &n in cluster {
                    idx += self.value_of(state, n) * stride;
                    stride *= self.cards[self.hpos[&n]];
                }
                marg[idx] += w;
            }
            cluster_margs.push((cluster.clone(), marg));
        }
        for (state, w) in belief.iter_mut().enumerate() {
            let mut p = 1.0;
            for (cluster, marg) in &cluster_margs {
                let mut idx = 0;
                let mut stride = 1;
                for &n in cluster {
                    idx += self.value_of(state, n) * stride;
                    stride *= self.cards[self.hpos[&n]];
                }
                p *= marg[idx];
            }
            *w = p;
        }
        Self::normalize(belief)?;
        Ok(())
    }

    fn validate_clusters(&self, clusters: &[Vec<NodeId>]) -> Result<()> {
        let mut seen = std::collections::HashSet::new();
        for cluster in clusters {
            for &n in cluster {
                if !self.hpos.contains_key(&n) {
                    return Err(BayesError::BadClusters(format!(
                        "node {n} is not a hidden node"
                    )));
                }
                if !seen.insert(n) {
                    return Err(BayesError::BadClusters(format!("node {n} appears twice")));
                }
            }
        }
        if seen.len() != self.hidden.len() {
            return Err(BayesError::BadClusters(format!(
                "{} of {} hidden nodes covered",
                seen.len(),
                self.hidden.len()
            )));
        }
        Ok(())
    }

    /// Starts a resumable Boyen–Koller filter over this engine. With
    /// `clusters = None` (or one cluster) each step is exact; otherwise
    /// the BK projection is applied after every step. The returned
    /// [`BkState`] absorbs evidence one slice at a time — the online
    /// form of [`Engine::filter`], which is built on top of it.
    pub fn stepper(&self, clusters: Option<&[Vec<NodeId>]>) -> Result<BkState<'_, 'a>> {
        if let Some(c) = clusters {
            self.validate_clusters(c)?;
        }
        Ok(BkState {
            engine: self,
            clusters: clusters.map(|c| c.to_vec()),
            alpha: Vec::new(),
            steps: 0,
            loglik: 0.0,
            cached_trans: None,
        })
    }

    /// Forward filtering. With `clusters = None` (or one cluster) this is
    /// exact; otherwise the Boyen–Koller projection is applied after every
    /// step — the paper's "modified Boyen-Koller algorithm for approximate
    /// inference". Implemented by driving [`Engine::stepper`] over every
    /// slice, so batch and online filtering cannot drift apart.
    pub fn filter(&self, ev: &EvidenceSeq, clusters: Option<&[Vec<NodeId>]>) -> Result<Posteriors> {
        if ev.is_empty() {
            return Err(BayesError::EmptySequence);
        }
        let mut state = self.stepper(clusters)?;
        let mut beliefs = Vec::with_capacity(ev.len());
        for t in 0..ev.len() {
            beliefs.push(state.step(ev, t)?);
        }
        Ok(Posteriors {
            hidden: self.hidden.clone(),
            cards: self.cards.clone(),
            strides: self.strides.clone(),
            loglik: state.loglik(),
            beliefs,
        })
    }

    /// Exact forward-backward smoothing, returning per-slice posteriors
    /// γ_t and pairwise posteriors ξ_t (the EM E-step quantities).
    pub fn smooth(&self, ev: &EvidenceSeq) -> Result<Smoothed> {
        if ev.is_empty() {
            return Err(BayesError::EmptySequence);
        }
        let tlen = ev.len();
        let n = self.n_states;
        // Forward pass, keeping scaled alphas, per-step observation
        // factors and transition matrices.
        let mut alphas: Vec<Vec<f64>> = Vec::with_capacity(tlen);
        let mut obs_factors: Vec<Vec<f64>> = Vec::with_capacity(tlen);
        let mut transes: Vec<Vec<f64>> = Vec::with_capacity(tlen.saturating_sub(1));
        let mut cached_trans: Option<Vec<f64>> = None;
        let mut loglik = 0.0;

        let hard0 = self.hard_values(ev, 0)?;
        let mut alpha = self.prior_vec(&hard0)?;
        let obs0 = self.obs_factor(ev, 0, &hard0)?;
        for (x, o) in alpha.iter_mut().zip(&obs0) {
            *x *= o;
        }
        loglik += Self::normalize(&mut alpha)?.ln();
        alphas.push(alpha.clone());
        obs_factors.push(obs0);

        for t in 1..tlen {
            let hard = self.hard_values(ev, t)?;
            let trans = if self.time_varying {
                self.trans_matrix(&hard)?
            } else {
                match &cached_trans {
                    Some(m) => m.clone(),
                    None => {
                        let m = self.trans_matrix(&hard)?;
                        cached_trans = Some(m.clone());
                        m
                    }
                }
            };
            let obs = self.obs_factor(ev, t, &hard)?;
            let mut next = vec![0.0; n];
            for prev in 0..n {
                let w = alpha[prev];
                if w == 0.0 {
                    continue;
                }
                let row = &trans[prev * n..(prev + 1) * n];
                for cur in 0..n {
                    next[cur] += w * row[cur];
                }
            }
            for (x, o) in next.iter_mut().zip(&obs) {
                *x *= o;
            }
            loglik += Self::normalize(&mut next)?.ln();
            alpha = next;
            alphas.push(alpha.clone());
            obs_factors.push(obs);
            transes.push(trans);
        }

        // Backward pass.
        let mut betas: Vec<Vec<f64>> = vec![vec![1.0; n]; tlen];
        for t in (0..tlen - 1).rev() {
            let trans = &transes[t];
            let obs = &obs_factors[t + 1];
            let bnext = betas[t + 1].clone();
            let mut b = vec![0.0; n];
            for prev in 0..n {
                let row = &trans[prev * n..(prev + 1) * n];
                let mut s = 0.0;
                for cur in 0..n {
                    s += row[cur] * obs[cur] * bnext[cur];
                }
                b[prev] = s;
            }
            Self::normalize(&mut b)?;
            betas[t] = b;
        }

        // Gammas and xis.
        let mut beliefs = Vec::with_capacity(tlen);
        for t in 0..tlen {
            let mut g: Vec<f64> = alphas[t]
                .iter()
                .zip(&betas[t])
                .map(|(a, b)| a * b)
                .collect();
            Self::normalize(&mut g)?;
            beliefs.push(g);
        }
        let mut xi = Vec::with_capacity(tlen.saturating_sub(1));
        for t in 0..tlen.saturating_sub(1) {
            let trans = &transes[t];
            let obs = &obs_factors[t + 1];
            let mut x = vec![0.0; n * n];
            for prev in 0..n {
                let a = alphas[t][prev];
                if a == 0.0 {
                    continue;
                }
                let row = &trans[prev * n..(prev + 1) * n];
                for cur in 0..n {
                    x[prev * n + cur] = a * row[cur] * obs[cur] * betas[t + 1][cur];
                }
            }
            Self::normalize(&mut x)?;
            xi.push(x);
        }

        Ok(Smoothed {
            gamma: Posteriors {
                hidden: self.hidden.clone(),
                cards: self.cards.clone(),
                strides: self.strides.clone(),
                loglik,
                beliefs,
            },
            xi,
            n_states: n,
        })
    }

    /// Log-likelihood of an evidence sequence under the model.
    pub fn loglik(&self, ev: &EvidenceSeq) -> Result<f64> {
        Ok(self.filter(ev, None)?.loglik)
    }

    /// Joint-state value of `node` in engine state `state` (exposed for
    /// EM and tests).
    pub fn state_value(&self, state: usize, node: NodeId) -> usize {
        self.value_of(state, node)
    }

    /// Parent configuration helper exposed for EM (same semantics as the
    /// engine's internal CPT indexing).
    pub fn parent_config(
        &self,
        node: NodeId,
        cur: usize,
        prev: Option<usize>,
        hard: &HashMap<NodeId, usize>,
        with_temporal: bool,
    ) -> Result<usize> {
        self.config(node, cur, prev, hard, with_temporal)
    }

    /// Hard values of core-observed nodes (exposed for EM).
    pub fn hard_map(&self, ev: &EvidenceSeq, t: usize) -> Result<HashMap<NodeId, usize>> {
        self.hard_values(ev, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpt::Cpt;
    use crate::evidence::Obs;
    use crate::slice::SliceNet;

    /// EA -> Kw(observed), EA_{t-1} -> EA_t : a 2-state HMM in disguise.
    fn mini_dbn() -> Dbn {
        let mut s = SliceNet::new();
        let ea = s.hidden("EA", 2, &[]);
        let kw = s.observed("Kw", 2, &[ea]);
        let mut d = Dbn::new(s, vec![(ea, ea)]).unwrap();
        d.set_prior_cpt(ea, Cpt::binary(vec![], &[0.2]).unwrap())
            .unwrap();
        d.set_trans_cpt(ea, Cpt::binary(vec![2], &[0.1, 0.8]).unwrap())
            .unwrap();
        d.set_cpt(kw, Cpt::binary(vec![2], &[0.1, 0.7]).unwrap())
            .unwrap();
        d
    }

    #[test]
    fn single_slice_posterior_matches_bayes_rule() {
        let d = mini_dbn();
        let e = Engine::new(&d).unwrap();
        let mut ev = EvidenceSeq::new(1);
        ev.set(0, 1, Obs::Hard(1));
        let post = e.filter(&ev, None).unwrap();
        // P(EA=1 | Kw=1) = 0.2*0.7 / (0.2*0.7 + 0.8*0.1) = 0.14/0.22
        let m = post.marginal(0, 0).unwrap();
        assert!((m[1] - 0.14 / 0.22).abs() < 1e-12);
        // loglik = ln P(Kw=1) = ln 0.22
        assert!((post.loglik - 0.22f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn soft_evidence_interpolates_between_hard_cases() {
        let d = mini_dbn();
        let e = Engine::new(&d).unwrap();
        let mut hard1 = EvidenceSeq::new(1);
        hard1.set(0, 1, Obs::Hard(1));
        let p1 = e.filter(&hard1, None).unwrap().marginal(0, 0).unwrap()[1];
        let mut hard0 = EvidenceSeq::new(1);
        hard0.set(0, 1, Obs::Hard(0));
        let p0 = e.filter(&hard0, None).unwrap().marginal(0, 0).unwrap()[1];
        let mut soft = EvidenceSeq::new(1);
        soft.set_prob(0, 1, 0.6);
        let ps = e.filter(&soft, None).unwrap().marginal(0, 0).unwrap()[1];
        assert!(ps > p0.min(p1) && ps < p0.max(p1));
    }

    #[test]
    fn filtering_carries_state_across_slices() {
        let d = mini_dbn();
        let e = Engine::new(&d).unwrap();
        // Strong keyword evidence at t=0 should raise P(EA=1) at t=1 even
        // with neutral evidence there (persistence through trans 0.8).
        let mut ev = EvidenceSeq::new(2);
        ev.set(0, 1, Obs::Hard(1));
        ev.set_prob(1, 1, 0.5);
        let post = e.filter(&ev, None).unwrap();
        let p_t1 = post.marginal(1, 0).unwrap()[1];

        let mut flat = EvidenceSeq::new(2);
        flat.set_prob(0, 1, 0.5);
        flat.set_prob(1, 1, 0.5);
        let base = e.filter(&flat, None).unwrap().marginal(1, 0).unwrap()[1];
        assert!(p_t1 > base, "p_t1={p_t1} should exceed baseline {base}");
    }

    #[test]
    fn hidden_clamp_forces_state() {
        let d = mini_dbn();
        let e = Engine::new(&d).unwrap();
        let mut ev = EvidenceSeq::new(1);
        ev.set(0, 0, Obs::Hard(1)); // clamp EA itself
        let post = e.filter(&ev, None).unwrap();
        assert!((post.marginal(0, 0).unwrap()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn impossible_evidence_reports_numerical_error() {
        let mut s = SliceNet::new();
        let a = s.hidden("A", 2, &[]);
        let mut d = Dbn::bn(s).unwrap();
        d.set_prior_cpt(a, Cpt::binary(vec![], &[0.0]).unwrap())
            .unwrap();
        let e = Engine::new(&d).unwrap();
        let mut ev = EvidenceSeq::new(1);
        ev.set(0, a, Obs::Hard(1)); // P(A=1)=0 yet clamped to 1
        assert!(matches!(e.filter(&ev, None), Err(BayesError::Numerical(_))));
    }

    #[test]
    fn smoothing_refines_filtering_with_future_evidence() {
        let d = mini_dbn();
        let e = Engine::new(&d).unwrap();
        let mut ev = EvidenceSeq::new(3);
        ev.set_prob(0, 1, 0.5);
        ev.set(1, 1, Obs::Hard(1));
        ev.set(2, 1, Obs::Hard(1));
        let filt = e.filter(&ev, None).unwrap();
        let smo = e.smooth(&ev).unwrap();
        // Future keyword evidence should raise the smoothed posterior at
        // t=0 above the filtered one.
        let pf = filt.marginal(0, 0).unwrap()[1];
        let ps = smo.gamma.marginal(0, 0).unwrap()[1];
        assert!(ps > pf);
        // Log-likelihoods agree (both are exact).
        assert!((filt.loglik - smo.gamma.loglik).abs() < 1e-10);
    }

    #[test]
    fn xi_marginalizes_to_gamma() {
        let d = mini_dbn();
        let e = Engine::new(&d).unwrap();
        let mut ev = EvidenceSeq::new(4);
        for t in 0..4 {
            ev.set_prob(t, 1, 0.3 + 0.1 * t as f64);
        }
        let smo = e.smooth(&ev).unwrap();
        let n = smo.n_states;
        for t in 0..3 {
            // Row sums of xi_t = gamma_t, column sums = gamma_{t+1}.
            for i in 0..n {
                let row: f64 = (0..n).map(|j| smo.xi[t][i * n + j]).sum();
                assert!((row - smo.gamma.belief(t)[i]).abs() < 1e-9);
            }
            for j in 0..n {
                let col: f64 = (0..n).map(|i| smo.xi[t][i * n + j]).sum();
                assert!((col - smo.gamma.belief(t + 1)[j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn single_cluster_projection_is_identity() {
        let d = mini_dbn();
        let e = Engine::new(&d).unwrap();
        let mut ev = EvidenceSeq::new(5);
        for t in 0..5 {
            ev.set_prob(t, 1, 0.7);
        }
        let exact = e.filter(&ev, None).unwrap();
        let one_cluster = e.filter(&ev, Some(&[vec![0]])).unwrap();
        for t in 0..5 {
            let a = exact.marginal(t, 0).unwrap();
            let b = one_cluster.marginal(t, 0).unwrap();
            assert!((a[1] - b[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn cluster_validation_rejects_bad_partitions() {
        let d = mini_dbn();
        let e = Engine::new(&d).unwrap();
        let ev = EvidenceSeq::new(1);
        assert!(matches!(
            e.filter(&ev, Some(&[vec![0, 0]])),
            Err(BayesError::BadClusters(_))
        ));
        assert!(matches!(
            e.filter(&ev, Some(&[vec![1]])),
            Err(BayesError::BadClusters(_))
        ));
        assert!(matches!(
            e.filter(&ev, Some(&[vec![]])),
            Err(BayesError::BadClusters(_))
        ));
    }

    #[test]
    fn empty_sequence_is_rejected() {
        let d = mini_dbn();
        let e = Engine::new(&d).unwrap();
        assert!(matches!(
            e.filter(&EvidenceSeq::new(0), None),
            Err(BayesError::EmptySequence)
        ));
    }

    /// Evidence-as-parent (Fig. 7b): Kw -> EA with Kw observed.
    #[test]
    fn core_observed_parent_selects_cpt_row() {
        let mut s = SliceNet::new();
        let kw = s.observed("Kw", 2, &[]);
        let ea = s.hidden("EA", 2, &[kw]);
        let mut d = Dbn::bn(s).unwrap();
        d.set_cpt(kw, Cpt::binary(vec![], &[0.5]).unwrap()).unwrap();
        d.set_prior_cpt(ea, Cpt::binary(vec![2], &[0.1, 0.9]).unwrap())
            .unwrap();
        d.set_trans_cpt(ea, Cpt::binary(vec![2], &[0.1, 0.9]).unwrap())
            .unwrap();
        let e = Engine::new(&d).unwrap();
        let mut ev = EvidenceSeq::new(1);
        ev.set(0, kw, Obs::Hard(1));
        let post = e.filter(&ev, None).unwrap();
        assert!((post.marginal(0, ea).unwrap()[1] - 0.9).abs() < 1e-12);
        // Soft evidence on a core node hardens to its argmax.
        let mut ev2 = EvidenceSeq::new(1);
        ev2.set_prob(0, kw, 0.8);
        let post2 = e.filter(&ev2, None).unwrap();
        assert!((post2.marginal(0, ea).unwrap()[1] - 0.9).abs() < 1e-12);
        // Missing evidence on a core node is an error.
        let ev3 = EvidenceSeq::new(1);
        assert!(matches!(
            e.filter(&ev3, None),
            Err(BayesError::MissingHardEvidence { .. })
        ));
    }

    #[test]
    fn bk_projection_factorizes_two_node_belief() {
        // Two coupled hidden nodes; project onto singleton clusters and
        // check the result is the product of marginals.
        let mut s = SliceNet::new();
        let a = s.hidden("A", 2, &[]);
        let b = s.hidden("B", 2, &[a]);
        let mut d = Dbn::bn(s).unwrap();
        d.set_prior_cpt(a, Cpt::binary(vec![], &[0.3]).unwrap())
            .unwrap();
        d.set_prior_cpt(b, Cpt::binary(vec![2], &[0.2, 0.9]).unwrap())
            .unwrap();
        let e = Engine::new(&d).unwrap();
        let ev = EvidenceSeq::new(1);
        let post = e.filter(&ev, None).unwrap();
        let mut belief = post.belief(0).to_vec();
        let ma = post.marginal(0, a).unwrap();
        let mb = post.marginal(0, b).unwrap();
        e.project(&mut belief, &[vec![a], vec![b]]).unwrap();
        // After projection: belief(a_v, b_v) = ma[a_v] * mb[b_v].
        // Engine encoding: state = a_v * 1 + b_v * 2.
        for (av, &mav) in ma.iter().enumerate() {
            for (bv, &mbv) in mb.iter().enumerate() {
                let idx = av + bv * 2;
                assert!((belief[idx] - mav * mbv).abs() < 1e-12);
            }
        }
    }
}
