//! Evidence sequences: how feature values enter the network.
//!
//! The paper's features are "represented as probabilistic values in range
//! from zero to one" at a 0.1 s clip rate (§5.5). A value `p` for a binary
//! evidence node becomes the *virtual evidence* likelihood `[1-p, p]` —
//! Pearl's virtual-evidence construction. Ground-truth clamping during
//! (partially) supervised learning uses hard evidence on a hidden node.

use std::collections::HashMap;

use crate::slice::NodeId;
use crate::{BayesError, Result};

/// One node's observation at one slice.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Obs {
    /// The node is observed in exactly this state.
    Hard(usize),
    /// Likelihood vector over the node's states (virtual evidence).
    Soft(Vec<f64>),
}

impl Obs {
    /// Virtual evidence for a binary node from a `[0, 1]` feature value.
    pub fn from_prob(p: f64) -> Obs {
        let p = p.clamp(0.0, 1.0);
        Obs::Soft(vec![1.0 - p, p])
    }

    /// The likelihood this observation assigns to `state` of a node with
    /// `card` states.
    pub fn likelihood(&self, state: usize, card: usize) -> f64 {
        match self {
            Obs::Hard(s) => {
                if *s == state {
                    1.0
                } else {
                    0.0
                }
            }
            Obs::Soft(lik) => {
                debug_assert_eq!(lik.len(), card);
                lik.get(state).copied().unwrap_or(0.0)
            }
        }
    }

    /// The most likely state under this observation.
    pub fn argmax(&self, card: usize) -> usize {
        match self {
            Obs::Hard(s) => *s,
            Obs::Soft(lik) => {
                debug_assert_eq!(lik.len(), card);
                lik.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            }
        }
    }

    /// Validates the observation against a node cardinality.
    pub fn validate(&self, node: NodeId, card: usize) -> Result<()> {
        match self {
            Obs::Hard(s) => {
                if *s < card {
                    Ok(())
                } else {
                    Err(BayesError::EvidenceShape {
                        node,
                        expected: card,
                        found: *s + 1,
                    })
                }
            }
            Obs::Soft(lik) => {
                if lik.len() != card {
                    return Err(BayesError::EvidenceShape {
                        node,
                        expected: card,
                        found: lik.len(),
                    });
                }
                if lik.iter().any(|v| *v < 0.0) || lik.iter().all(|v| *v == 0.0) {
                    return Err(BayesError::Numerical(format!(
                        "likelihood for node {node} must be non-negative and not all zero"
                    )));
                }
                Ok(())
            }
        }
    }
}

/// Evidence for a whole sequence: one observation map per slice.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EvidenceSeq {
    slices: Vec<HashMap<NodeId, Obs>>,
}

impl EvidenceSeq {
    /// An empty sequence of `len` slices.
    pub fn new(len: usize) -> Self {
        EvidenceSeq {
            slices: vec![HashMap::new(); len],
        }
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// True when the sequence has no slices.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Sets an observation.
    pub fn set(&mut self, t: usize, node: NodeId, obs: Obs) {
        self.slices[t].insert(node, obs);
    }

    /// Convenience: soft evidence from a `[0, 1]` value on a binary node.
    pub fn set_prob(&mut self, t: usize, node: NodeId, p: f64) {
        self.set(t, node, Obs::from_prob(p));
    }

    /// Observation of `node` at slice `t`, if any.
    pub fn get(&self, t: usize, node: NodeId) -> Option<&Obs> {
        self.slices.get(t).and_then(|m| m.get(&node))
    }

    /// Builds a sequence from a dense feature matrix: `features[t][k]` is
    /// the `[0, 1]` value of `nodes[k]` at slice `t`.
    pub fn from_matrix(nodes: &[NodeId], features: &[Vec<f64>]) -> Self {
        let mut seq = EvidenceSeq::new(features.len());
        for (t, row) in features.iter().enumerate() {
            for (k, &node) in nodes.iter().enumerate() {
                if let Some(&p) = row.get(k) {
                    seq.set_prob(t, node, p);
                }
            }
        }
        seq
    }

    /// Splits the sequence into consecutive segments of `seg_len` slices,
    /// dropping a final partial segment — how the paper cuts its 300 s
    /// training sequence into 12 × 25 s segments.
    pub fn segments(&self, seg_len: usize) -> Vec<EvidenceSeq> {
        assert!(seg_len > 0, "segment length must be positive");
        let mut out = Vec::new();
        let mut i = 0;
        while i + seg_len <= self.slices.len() {
            out.push(EvidenceSeq {
                slices: self.slices[i..i + seg_len].to_vec(),
            });
            i += seg_len;
        }
        out
    }

    /// Sub-sequence of slices `lo..hi` (clamped).
    pub fn window(&self, lo: usize, hi: usize) -> EvidenceSeq {
        let hi = hi.min(self.slices.len());
        let lo = lo.min(hi);
        EvidenceSeq {
            slices: self.slices[lo..hi].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_prob_builds_virtual_evidence() {
        let obs = Obs::from_prob(0.7);
        assert!((obs.likelihood(1, 2) - 0.7).abs() < 1e-12);
        assert!((obs.likelihood(0, 2) - 0.3).abs() < 1e-12);
        assert_eq!(obs.argmax(2), 1);
        // Values are clamped.
        assert_eq!(Obs::from_prob(1.4), Obs::Soft(vec![0.0, 1.0]));
    }

    #[test]
    fn hard_evidence_is_a_delta() {
        let obs = Obs::Hard(1);
        assert_eq!(obs.likelihood(1, 3), 1.0);
        assert_eq!(obs.likelihood(2, 3), 0.0);
        assert_eq!(obs.argmax(3), 1);
    }

    #[test]
    fn validation_catches_shape_errors() {
        assert!(Obs::Hard(2).validate(0, 2).is_err());
        assert!(Obs::Soft(vec![0.5]).validate(0, 2).is_err());
        assert!(Obs::Soft(vec![0.0, 0.0]).validate(0, 2).is_err());
        assert!(Obs::Soft(vec![-0.1, 1.0]).validate(0, 2).is_err());
        assert!(Obs::Soft(vec![0.2, 0.8]).validate(0, 2).is_ok());
    }

    #[test]
    fn matrix_construction_and_access() {
        let features = vec![vec![0.1, 0.9], vec![0.5, 0.4]];
        let seq = EvidenceSeq::from_matrix(&[3, 5], &features);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.get(0, 5), Some(&Obs::Soft(vec![1.0 - 0.9, 0.9])));
        assert_eq!(seq.get(1, 3), Some(&Obs::Soft(vec![0.5, 0.5])));
        assert_eq!(seq.get(0, 7), None);
    }

    #[test]
    fn segments_drop_partial_tail() {
        let seq = EvidenceSeq::new(10);
        let segs = seq.segments(3);
        assert_eq!(segs.len(), 3);
        assert!(segs.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn window_clamps() {
        let seq = EvidenceSeq::new(5);
        assert_eq!(seq.window(2, 100).len(), 3);
        assert_eq!(seq.window(4, 2).len(), 0);
    }
}
