//! Conditional probability tables for discrete nodes.

use rand::Rng;

use crate::{BayesError, Result};

/// A conditional probability table `P(child | parents)`.
///
/// Rows are indexed by the mixed-radix *parent configuration* (first parent
/// is the least-significant digit) and hold one probability per child
/// state. Rows always sum to one after construction or normalization.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cpt {
    card: usize,
    parent_cards: Vec<usize>,
    data: Vec<f64>,
}

impl Cpt {
    /// A uniform CPT.
    pub fn uniform(card: usize, parent_cards: Vec<usize>) -> Self {
        assert!(card >= 1, "child cardinality must be positive");
        let configs: usize = parent_cards.iter().product();
        Cpt {
            card,
            parent_cards,
            data: vec![1.0 / card as f64; configs * card],
        }
    }

    /// A CPT with rows drawn from a symmetric Dirichlet-ish jitter around
    /// uniform; `spread` in `(0, 1)` controls how far rows deviate.
    pub fn random(card: usize, parent_cards: Vec<usize>, rng: &mut impl Rng, spread: f64) -> Self {
        let mut cpt = Cpt::uniform(card, parent_cards);
        let configs = cpt.n_configs();
        for cfg in 0..configs {
            let mut row: Vec<f64> = (0..card)
                .map(|_| (1.0 - spread) + spread * rng.gen::<f64>())
                .collect();
            let sum: f64 = row.iter().sum();
            for v in &mut row {
                *v /= sum;
            }
            cpt.set_row(cfg, &row).expect("row matches cardinality");
        }
        cpt
    }

    /// Builds a CPT from explicit rows (one per parent configuration, in
    /// configuration order). Rows are normalized.
    pub fn from_rows(card: usize, parent_cards: Vec<usize>, rows: &[Vec<f64>]) -> Result<Self> {
        let configs: usize = parent_cards.iter().product();
        if rows.len() != configs {
            return Err(BayesError::CptShape {
                node: usize::MAX,
                message: format!(
                    "{} rows provided, {configs} parent configurations",
                    rows.len()
                ),
            });
        }
        let mut cpt = Cpt::uniform(card, parent_cards);
        for (cfg, row) in rows.iter().enumerate() {
            cpt.set_row(cfg, row)?;
        }
        Ok(cpt)
    }

    /// Shorthand for a *binary* node CPT: `rows[cfg]` is `P(child = 1 | cfg)`.
    pub fn binary(parent_cards: Vec<usize>, p_true: &[f64]) -> Result<Self> {
        let rows: Vec<Vec<f64>> = p_true.iter().map(|p| vec![1.0 - p, *p]).collect();
        Cpt::from_rows(2, parent_cards, &rows)
    }

    /// Child cardinality.
    pub fn card(&self) -> usize {
        self.card
    }

    /// Parent cardinalities (defines configuration indexing).
    pub fn parent_cards(&self) -> &[usize] {
        &self.parent_cards
    }

    /// Number of parent configurations.
    pub fn n_configs(&self) -> usize {
        self.parent_cards.iter().product()
    }

    /// Encodes parent state values into a configuration index
    /// (first parent is the least significant digit).
    pub fn config_of(&self, parent_states: &[usize]) -> usize {
        debug_assert_eq!(parent_states.len(), self.parent_cards.len());
        let mut cfg = 0;
        let mut stride = 1;
        for (v, c) in parent_states.iter().zip(&self.parent_cards) {
            debug_assert!(v < c, "parent state out of range");
            cfg += v * stride;
            stride *= c;
        }
        cfg
    }

    /// `P(child = state | configuration)`.
    pub fn prob(&self, config: usize, state: usize) -> f64 {
        self.data[config * self.card + state]
    }

    /// The probability row for a parent configuration.
    pub fn row(&self, config: usize) -> &[f64] {
        &self.data[config * self.card..(config + 1) * self.card]
    }

    /// Replaces a row (normalizing it).
    pub fn set_row(&mut self, config: usize, row: &[f64]) -> Result<()> {
        if row.len() != self.card {
            return Err(BayesError::CptShape {
                node: usize::MAX,
                message: format!("row length {} != cardinality {}", row.len(), self.card),
            });
        }
        let sum: f64 = row.iter().sum();
        if sum.is_nan() || sum <= 0.0 {
            return Err(BayesError::Numerical(format!(
                "CPT row sums to {sum}, cannot normalize"
            )));
        }
        for (i, v) in row.iter().enumerate() {
            if *v < 0.0 {
                return Err(BayesError::Numerical("negative CPT entry".into()));
            }
            self.data[config * self.card + i] = v / sum;
        }
        Ok(())
    }

    /// Re-estimates every row from an accumulator of expected counts of the
    /// same shape, adding `pseudocount` to each cell (MAP smoothing). Rows
    /// whose total count is zero keep their previous values.
    pub fn set_from_counts(&mut self, counts: &CptCounts, pseudocount: f64) {
        debug_assert_eq!(counts.data.len(), self.data.len());
        for cfg in 0..self.n_configs() {
            let slice = &counts.data[cfg * self.card..(cfg + 1) * self.card];
            let total: f64 = slice.iter().sum();
            if total <= 0.0 && pseudocount <= 0.0 {
                continue;
            }
            let denom = total + pseudocount * self.card as f64;
            for (s, &c) in slice.iter().enumerate() {
                self.data[cfg * self.card + s] = (c + pseudocount) / denom;
            }
        }
    }

    /// An all-zero expected-count accumulator matching this CPT's shape.
    pub fn zero_counts(&self) -> CptCounts {
        CptCounts {
            card: self.card,
            data: vec![0.0; self.data.len()],
        }
    }
}

/// Expected-count accumulator used by EM's E-step.
#[derive(Debug, Clone)]
pub struct CptCounts {
    card: usize,
    data: Vec<f64>,
}

impl CptCounts {
    /// Adds `weight` to the (config, state) cell.
    pub fn add(&mut self, config: usize, state: usize, weight: f64) {
        self.data[config * self.card + state] += weight;
    }

    /// Total accumulated mass.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_rows_sum_to_one() {
        let cpt = Cpt::uniform(3, vec![2, 2]);
        assert_eq!(cpt.n_configs(), 4);
        for cfg in 0..4 {
            let s: f64 = cpt.row(cfg).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!((cpt.prob(cfg, 0) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn config_encoding_is_mixed_radix_lsb_first() {
        let cpt = Cpt::uniform(2, vec![2, 3]);
        assert_eq!(cpt.config_of(&[0, 0]), 0);
        assert_eq!(cpt.config_of(&[1, 0]), 1);
        assert_eq!(cpt.config_of(&[0, 1]), 2);
        assert_eq!(cpt.config_of(&[1, 2]), 5);
    }

    #[test]
    fn binary_builder_sets_p_true() {
        let cpt = Cpt::binary(vec![2], &[0.1, 0.8]).unwrap();
        assert!((cpt.prob(0, 1) - 0.1).abs() < 1e-12);
        assert!((cpt.prob(1, 0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(Cpt::from_rows(2, vec![2], &[vec![0.5, 0.5]]).is_err());
        assert!(Cpt::from_rows(2, vec![2], &[vec![1.0, 1.0], vec![2.0, 2.0]]).is_ok());
        // normalization happened:
        let cpt = Cpt::from_rows(2, vec![], &[vec![3.0, 1.0]]).unwrap();
        assert!((cpt.prob(0, 0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn set_row_rejects_bad_rows() {
        let mut cpt = Cpt::uniform(2, vec![]);
        assert!(cpt.set_row(0, &[0.2, 0.8, 0.0]).is_err());
        assert!(cpt.set_row(0, &[0.0, 0.0]).is_err());
        assert!(cpt.set_row(0, &[-1.0, 2.0]).is_err());
        assert!(cpt.set_row(0, &[1.0, 3.0]).is_ok());
        assert!((cpt.prob(0, 1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn random_rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(7);
        let cpt = Cpt::random(4, vec![3], &mut rng, 0.9);
        for cfg in 0..3 {
            let s: f64 = cpt.row(cfg).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(cpt.row(cfg).iter().all(|p| *p > 0.0));
        }
    }

    #[test]
    fn counts_reestimate_with_pseudocounts() {
        let mut cpt = Cpt::uniform(2, vec![2]);
        let mut counts = cpt.zero_counts();
        counts.add(0, 1, 9.0);
        counts.add(0, 0, 1.0);
        // config 1 gets no mass: stays uniform thanks to pseudocounts.
        cpt.set_from_counts(&counts, 1.0);
        assert!((cpt.prob(0, 1) - 10.0 / 12.0).abs() < 1e-12);
        assert!((cpt.prob(1, 0) - 0.5).abs() < 1e-12);
        assert!((counts.total() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_pseudocount_keeps_untouched_rows() {
        let mut cpt = Cpt::binary(vec![2], &[0.3, 0.7]).unwrap();
        let counts = cpt.zero_counts();
        cpt.set_from_counts(&counts, 0.0);
        assert!((cpt.prob(0, 1) - 0.3).abs() < 1e-12);
    }
}
