//! Brute-force enumeration over the unrolled network — a test oracle.
//!
//! For tiny networks and short sequences this module computes posteriors
//! by enumerating *every* joint configuration of *every* node across all
//! slices. It is exponentially slow on purpose: its only job is to verify
//! the production engine ([`crate::engine::Engine`]) and the EM E-step on
//! hand-checkable cases.

use crate::dbn::Dbn;
use crate::evidence::{EvidenceSeq, Obs};
use crate::slice::NodeId;
use crate::{BayesError, Result};

/// One joint configuration: `cfg[t][n]` is node `n`'s state at slice `t`.
type JointConfig = Vec<Vec<usize>>;

/// Enumerates all joint configurations and their unnormalized weights.
///
/// Returns `(configs, weights)` where `configs[i][t][n]` is the state of
/// node `n` at slice `t` in configuration `i`.
fn enumerate(dbn: &Dbn, ev: &EvidenceSeq) -> Result<(Vec<JointConfig>, Vec<f64>)> {
    if ev.is_empty() {
        return Err(BayesError::EmptySequence);
    }
    let tlen = ev.len();
    let n = dbn.slice().len();
    let cards: Vec<usize> = dbn.slice().nodes().iter().map(|nd| nd.card).collect();
    let total: usize = cards.iter().map(|c| c.pow(tlen as u32)).product::<usize>();
    assert!(
        total <= 1 << 22,
        "exact enumeration limited to small problems (got {total} configs)"
    );

    let mut configs = Vec::with_capacity(total);
    let mut weights = Vec::with_capacity(total);
    // Mixed-radix counter over (slice, node) cells.
    let mut counter = vec![vec![0usize; n]; tlen];
    loop {
        let w = weight_of(dbn, ev, &counter)?;
        configs.push(counter.clone());
        weights.push(w);
        // Increment.
        let mut done = true;
        'inc: for row in counter.iter_mut().take(tlen) {
            for i in 0..n {
                row[i] += 1;
                if row[i] < cards[i] {
                    done = false;
                    break 'inc;
                }
                row[i] = 0;
            }
        }
        if done {
            break;
        }
    }
    Ok((configs, weights))
}

fn weight_of(dbn: &Dbn, ev: &EvidenceSeq, config: &[Vec<usize>]) -> Result<f64> {
    let slice = dbn.slice();
    let mut w = 1.0;
    for (t, states) in config.iter().enumerate() {
        for (id, node) in slice.nodes().iter().enumerate() {
            let mut pa: Vec<usize> = node.intra_parents.iter().map(|&p| states[p]).collect();
            let cpt = if t == 0 {
                dbn.prior_cpt(id)
            } else {
                for from in dbn.temporal_parents(id) {
                    pa.push(config[t - 1][from]);
                }
                dbn.trans_cpt(id)
            };
            w *= cpt.prob(cpt.config_of(&pa), states[id]);
            if let Some(obs) = ev.get(t, id) {
                w *= match obs {
                    Obs::Hard(s) => {
                        if *s == states[id] {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    Obs::Soft(lik) => lik[states[id]],
                };
            }
            if w == 0.0 {
                return Ok(0.0);
            }
        }
    }
    Ok(w)
}

/// Exact smoothed posterior of `node` at slice `t`.
pub fn posterior(dbn: &Dbn, ev: &EvidenceSeq, t: usize, node: NodeId) -> Result<Vec<f64>> {
    let card = dbn.slice().node(node)?.card;
    let (configs, weights) = enumerate(dbn, ev)?;
    let mut out = vec![0.0; card];
    let mut total = 0.0;
    for (cfg, w) in configs.iter().zip(&weights) {
        out[cfg[t][node]] += w;
        total += w;
    }
    if total.is_nan() || total <= 0.0 {
        return Err(BayesError::Numerical("zero total probability".into()));
    }
    for v in &mut out {
        *v /= total;
    }
    Ok(out)
}

/// Exact log-likelihood of the evidence.
pub fn loglik(dbn: &Dbn, ev: &EvidenceSeq) -> Result<f64> {
    let (_, weights) = enumerate(dbn, ev)?;
    let total: f64 = weights.iter().sum();
    if total.is_nan() || total <= 0.0 {
        return Err(BayesError::Numerical("zero total probability".into()));
    }
    Ok(total.ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpt::Cpt;
    use crate::engine::Engine;
    use crate::slice::SliceNet;

    fn hmm_like() -> Dbn {
        let mut s = SliceNet::new();
        let ea = s.hidden("EA", 2, &[]);
        let kw = s.observed("Kw", 2, &[ea]);
        let mut d = Dbn::new(s, vec![(ea, ea)]).unwrap();
        d.set_prior_cpt(ea, Cpt::binary(vec![], &[0.3]).unwrap())
            .unwrap();
        d.set_trans_cpt(ea, Cpt::binary(vec![2], &[0.15, 0.75]).unwrap())
            .unwrap();
        d.set_cpt(kw, Cpt::binary(vec![2], &[0.2, 0.6]).unwrap())
            .unwrap();
        d
    }

    /// Two hidden nodes with intra-slice coupling and crossing temporal
    /// edges — exercises every indexing path.
    fn two_hidden() -> Dbn {
        let mut s = SliceNet::new();
        let a = s.hidden("A", 2, &[]);
        let b = s.hidden("B", 2, &[a]);
        let e1 = s.observed("E1", 2, &[a]);
        let e2 = s.observed("E2", 2, &[b]);
        let mut d = Dbn::new(s, vec![(a, a), (a, b), (b, b)]).unwrap();
        d.set_prior_cpt(a, Cpt::binary(vec![], &[0.4]).unwrap())
            .unwrap();
        d.set_prior_cpt(b, Cpt::binary(vec![2], &[0.2, 0.7]).unwrap())
            .unwrap();
        // A_t | A_t-1 ; B_t | A_t, A_t-1, B_t-1
        d.set_trans_cpt(a, Cpt::binary(vec![2], &[0.1, 0.85]).unwrap())
            .unwrap();
        d.set_trans_cpt(
            b,
            Cpt::binary(vec![2, 2, 2], &[0.05, 0.3, 0.4, 0.6, 0.2, 0.5, 0.7, 0.95]).unwrap(),
        )
        .unwrap();
        d.set_cpt(e1, Cpt::binary(vec![2], &[0.25, 0.8]).unwrap())
            .unwrap();
        d.set_cpt(e2, Cpt::binary(vec![2], &[0.1, 0.65]).unwrap())
            .unwrap();
        d
    }

    #[test]
    fn engine_smoothing_matches_enumeration_hmm() {
        let d = hmm_like();
        let eng = Engine::new(&d).unwrap();
        let mut ev = EvidenceSeq::new(3);
        ev.set(0, 1, Obs::Hard(1));
        ev.set_prob(1, 1, 0.4);
        ev.set(2, 1, Obs::Hard(0));
        let smo = eng.smooth(&ev).unwrap();
        for t in 0..3 {
            let exact = posterior(&d, &ev, t, 0).unwrap();
            let fast = smo.gamma.marginal(t, 0).unwrap();
            for s in 0..2 {
                assert!(
                    (exact[s] - fast[s]).abs() < 1e-10,
                    "t={t} s={s}: exact={} fast={}",
                    exact[s],
                    fast[s]
                );
            }
        }
        let ll = loglik(&d, &ev).unwrap();
        assert!((ll - smo.gamma.loglik).abs() < 1e-10);
    }

    #[test]
    fn engine_matches_enumeration_on_coupled_net() {
        let d = two_hidden();
        let eng = Engine::new(&d).unwrap();
        let mut ev = EvidenceSeq::new(3);
        ev.set_prob(0, 2, 0.9);
        ev.set_prob(0, 3, 0.2);
        ev.set(1, 2, Obs::Hard(0));
        ev.set_prob(1, 3, 0.7);
        ev.set_prob(2, 2, 0.5);
        ev.set(2, 3, Obs::Hard(1));
        let smo = eng.smooth(&ev).unwrap();
        for t in 0..3 {
            for node in [0usize, 1] {
                let exact = posterior(&d, &ev, t, node).unwrap();
                let fast = smo.gamma.marginal(t, node).unwrap();
                assert!(
                    (exact[1] - fast[1]).abs() < 1e-10,
                    "t={t} node={node}: exact={} fast={}",
                    exact[1],
                    fast[1]
                );
            }
        }
    }

    #[test]
    fn filtered_last_slice_equals_smoothed_last_slice() {
        let d = two_hidden();
        let eng = Engine::new(&d).unwrap();
        let mut ev = EvidenceSeq::new(4);
        for t in 0..4 {
            ev.set_prob(t, 2, 0.3 + 0.15 * t as f64);
            ev.set_prob(t, 3, 0.8 - 0.1 * t as f64);
        }
        let filt = eng.filter(&ev, None).unwrap();
        let smo = eng.smooth(&ev).unwrap();
        let a = filt.marginal(3, 0).unwrap();
        let b = smo.gamma.marginal(3, 0).unwrap();
        assert!((a[1] - b[1]).abs() < 1e-10);
    }

    #[test]
    fn hidden_clamps_match_enumeration() {
        let d = two_hidden();
        let eng = Engine::new(&d).unwrap();
        let mut ev = EvidenceSeq::new(2);
        ev.set(0, 0, Obs::Hard(1)); // clamp hidden A at t=0
        ev.set_prob(1, 3, 0.9);
        let smo = eng.smooth(&ev).unwrap();
        for t in 0..2 {
            let exact = posterior(&d, &ev, t, 1).unwrap();
            let fast = smo.gamma.marginal(t, 1).unwrap();
            assert!((exact[1] - fast[1]).abs() < 1e-10);
        }
    }
}
