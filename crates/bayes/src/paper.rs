//! The concrete network structures evaluated in the paper.
//!
//! §5.5 compares three static BN slice structures (Fig. 7), three temporal
//! dependency wirings (Fig. 8 and the two in-text variants), and an
//! audio-visual highlight network (Fig. 10/11, with and without the
//! "passing" sub-network). This module builds each of them with
//! domain-informed initial CPTs, ready for EM refinement.
//!
//! Feature columns follow the paper's numbering (§5.5): f1 keywords,
//! f2 pause rate, f3–f5 short-time-energy statistics, f6–f8 pitch
//! statistics, f9–f10 MFCC statistics, f11 part of race, f12 replay,
//! f13 color difference, f14 semaphore, f15 dust, f16 sand, f17 motion.

use crate::cpt::Cpt;
use crate::dbn::Dbn;
use crate::slice::{NodeId, SliceNet};
use crate::Result;

/// Audio evidence node names in f1…f10 order.
pub const AUDIO_FEATURES: [&str; 10] = [
    "Kw", "Pause", "SteAvg", "SteDyn", "SteMax", "PitchAvg", "PitchDyn", "PitchMax", "MfccAvg",
    "MfccMax",
];

/// Audio-visual evidence node names in f1…f17 order.
pub const AV_FEATURES: [&str; 17] = [
    "Kw",
    "Pause",
    "SteAvg",
    "SteDyn",
    "SteMax",
    "PitchAvg",
    "PitchDyn",
    "PitchMax",
    "MfccAvg",
    "MfccMax",
    "PartOfRace",
    "Replay",
    "ColorDiff",
    "Semaphore",
    "Dust",
    "Sand",
    "Motion",
];

/// The three static slice structures of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BnStructure {
    /// Fig. 7a — "fully parameterized": the query node drives hidden
    /// mid-level nodes (speech, energy, pitch) which drive the evidence.
    FullyParameterized,
    /// Fig. 7b — evidence nodes influence the query node directly.
    DirectEvidence,
    /// Fig. 7c — input/output: evidence feeds mid-level hidden nodes which
    /// feed the query.
    InputOutput,
}

/// The three temporal wirings discussed in §5.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalVariant {
    /// Fig. 8 (variant 1, the winner): every hidden node persists, the
    /// query node fans out to all hidden nodes, and all hidden nodes feed
    /// the query in the next slice.
    Full,
    /// Variant 2: all non-observable nodes distribute evidence to the
    /// query node of the next slice; only the query receives temporal
    /// evidence.
    QueryOnly,
    /// Variant 3: every hidden node persists and feeds the next query,
    /// but the query fans out only to itself.
    NoQueryFanOut,
}

/// A built paper network: the DBN plus the ids needed to feed evidence and
/// read the query posterior.
#[derive(Debug, Clone)]
pub struct PaperNet {
    /// The network.
    pub dbn: Dbn,
    /// Main query node ("EA" for audio nets, "HL" for audio-visual).
    pub query: NodeId,
    /// Evidence node ids in feature order (f1…), for
    /// [`crate::evidence::EvidenceSeq::from_matrix`].
    pub feature_nodes: Vec<NodeId>,
}

impl PaperNet {
    /// Node id by name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.dbn.slice().id_of(name)
    }
}

/// `p(child = 1 | parents)` rows from a logistic combination: the row for
/// parent values `v` is `sigmoid(bias + Σ w_i v_i)`. A compact way to
/// initialize multi-parent binary CPTs with monotone domain knowledge.
fn logistic_rows(parent_cards: &[usize], weights: &[f64], bias: f64) -> Vec<f64> {
    assert_eq!(parent_cards.len(), weights.len());
    let configs: usize = parent_cards.iter().product();
    (0..configs)
        .map(|cfg| {
            let mut rest = cfg;
            let mut z = bias;
            for (c, w) in parent_cards.iter().zip(weights) {
                let v = rest % c;
                rest /= c;
                z += w * v as f64;
            }
            1.0 / (1.0 + (-z).exp())
        })
        .collect()
}

fn binary_logistic(parent_cards: Vec<usize>, weights: &[f64], bias: f64) -> Cpt {
    let rows = logistic_rows(&parent_cards, weights, bias);
    Cpt::binary(parent_cards, &rows).expect("logistic rows are valid probabilities")
}

/// Persistence-flavored transition rows: `p_base` when every temporal
/// parent is 0, pulled towards 1 by active parents.
#[cfg_attr(not(test), allow(dead_code))]
fn persistence(parent_cards: Vec<usize>, self_weight: f64, other_weight: f64, bias: f64) -> Cpt {
    let n = parent_cards.len();
    let mut weights = vec![other_weight; n];
    if n > 0 {
        // By convention the node's own previous value is the *last*
        // temporal parent appended by the builders below.
        weights[n - 1] = self_weight;
    }
    binary_logistic(parent_cards, &weights, bias)
}

// ---------------------------------------------------------------------------
// Audio networks (Fig. 7 / Fig. 8)
// ---------------------------------------------------------------------------

/// Builds the static audio BN of the given structure.
pub fn audio_bn(structure: BnStructure) -> Result<PaperNet> {
    build_audio(structure, None)
}

/// Builds the audio DBN: the slice structure plus a temporal wiring.
/// Structure (b) has a single hidden node, so every variant degenerates to
/// query persistence.
pub fn audio_dbn(structure: BnStructure, variant: TemporalVariant) -> Result<PaperNet> {
    build_audio(structure, Some(variant))
}

fn build_audio(structure: BnStructure, variant: Option<TemporalVariant>) -> Result<PaperNet> {
    match structure {
        BnStructure::FullyParameterized => audio_fully_parameterized(variant),
        BnStructure::DirectEvidence => audio_direct_evidence(variant),
        BnStructure::InputOutput => audio_input_output(variant),
    }
}

fn audio_fully_parameterized(variant: Option<TemporalVariant>) -> Result<PaperNet> {
    let mut s = SliceNet::new();
    let ea = s.hidden("EA", 2, &[]);
    let sp = s.hidden("SP", 2, &[ea]);
    let en = s.hidden("EN", 2, &[ea, sp]);
    let pi = s.hidden("PI", 2, &[ea, sp]);
    let kw = s.observed("Kw", 2, &[ea]);
    let pause = s.observed("Pause", 2, &[sp]);
    let ste_avg = s.observed("SteAvg", 2, &[en]);
    let ste_dyn = s.observed("SteDyn", 2, &[en]);
    let ste_max = s.observed("SteMax", 2, &[en]);
    let p_avg = s.observed("PitchAvg", 2, &[pi]);
    let p_dyn = s.observed("PitchDyn", 2, &[pi]);
    let p_max = s.observed("PitchMax", 2, &[pi]);
    let m_avg = s.observed("MfccAvg", 2, &[sp]);
    let m_max = s.observed("MfccMax", 2, &[sp]);

    let temporal = temporal_edges(variant, ea, &[sp, en, pi]);
    let mut dbn = Dbn::new(s, temporal)?;

    dbn.set_prior_cpt(ea, Cpt::binary(vec![], &[0.15])?)?;
    dbn.set_prior_cpt(sp, Cpt::binary(vec![2], &[0.55, 0.95])?)?;
    // Config order: EA + 2*SP.
    dbn.set_prior_cpt(en, Cpt::binary(vec![2, 2], &[0.10, 0.45, 0.25, 0.90])?)?;
    dbn.set_prior_cpt(pi, Cpt::binary(vec![2, 2], &[0.10, 0.40, 0.20, 0.88])?)?;

    set_audio_evidence_cpts(
        &mut dbn,
        &[
            (kw, 0.03, 0.45),
            (pause, 0.70, 0.25),
            (ste_avg, 0.20, 0.85),
            (ste_dyn, 0.22, 0.80),
            (ste_max, 0.18, 0.88),
            (p_avg, 0.20, 0.85),
            (p_dyn, 0.25, 0.78),
            (p_max, 0.18, 0.86),
            (m_avg, 0.25, 0.75),
            (m_max, 0.22, 0.78),
        ],
    )?;

    set_transition_cpts(&mut dbn, ea, &[sp, en, pi], variant)?;

    Ok(PaperNet {
        feature_nodes: vec![
            kw, pause, ste_avg, ste_dyn, ste_max, p_avg, p_dyn, p_max, m_avg, m_max,
        ],
        dbn,
        query: ea,
    })
}

fn audio_direct_evidence(variant: Option<TemporalVariant>) -> Result<PaperNet> {
    let mut s = SliceNet::new();
    let mut evidence = Vec::new();
    for name in AUDIO_FEATURES {
        evidence.push(s.observed(name, 2, &[]));
    }
    let ea = s.hidden("EA", 2, &evidence);
    let temporal = if variant.is_some() {
        vec![(ea, ea)]
    } else {
        Vec::new()
    };
    let mut dbn = Dbn::new(s, temporal)?;
    // Evidence priors: features fire rarely a priori.
    for &e in &evidence {
        dbn.set_cpt(e, Cpt::binary(vec![], &[0.25])?)?;
    }
    // Query CPT: noisy logistic combination of the ten cues. Pause rate
    // (index 1) votes *against* excitement; everything else votes for.
    let mut weights = vec![1.1; 10];
    weights[1] = -0.9;
    weights[0] = 1.6; // keywords are a strong cue
    let pcards = vec![2; 10];
    dbn.set_prior_cpt(ea, binary_logistic(pcards.clone(), &weights, -3.4))?;
    if variant.is_some() {
        // Transition: same cues plus the previous query value.
        let mut tweights = weights.clone();
        tweights.push(2.2);
        let mut tcards = pcards;
        tcards.push(2);
        dbn.set_trans_cpt(ea, binary_logistic(tcards, &tweights, -4.4))?;
    }
    Ok(PaperNet {
        feature_nodes: evidence,
        dbn,
        query: ea,
    })
}

fn audio_input_output(variant: Option<TemporalVariant>) -> Result<PaperNet> {
    let mut s = SliceNet::new();
    let kw = s.observed("Kw", 2, &[]);
    let pause = s.observed("Pause", 2, &[]);
    let ste_avg = s.observed("SteAvg", 2, &[]);
    let ste_dyn = s.observed("SteDyn", 2, &[]);
    let ste_max = s.observed("SteMax", 2, &[]);
    let p_avg = s.observed("PitchAvg", 2, &[]);
    let p_dyn = s.observed("PitchDyn", 2, &[]);
    let p_max = s.observed("PitchMax", 2, &[]);
    let m_avg = s.observed("MfccAvg", 2, &[]);
    let m_max = s.observed("MfccMax", 2, &[]);
    let en = s.hidden("EN", 2, &[ste_avg, ste_dyn, ste_max]);
    let pi = s.hidden("PI", 2, &[p_avg, p_dyn, p_max]);
    let sp = s.hidden("SP", 2, &[pause, m_avg, m_max]);
    let ea = s.hidden("EA", 2, &[en, pi, sp, kw]);

    let temporal = temporal_edges(variant, ea, &[en, pi, sp]);
    let mut dbn = Dbn::new(s, temporal)?;

    for &e in &[
        kw, pause, ste_avg, ste_dyn, ste_max, p_avg, p_dyn, p_max, m_avg, m_max,
    ] {
        dbn.set_cpt(e, Cpt::binary(vec![], &[0.25])?)?;
    }
    dbn.set_prior_cpt(en, binary_logistic(vec![2, 2, 2], &[1.4, 1.2, 1.4], -2.6))?;
    dbn.set_prior_cpt(pi, binary_logistic(vec![2, 2, 2], &[1.4, 1.2, 1.4], -2.6))?;
    dbn.set_prior_cpt(sp, binary_logistic(vec![2, 2, 2], &[-1.2, 1.3, 1.3], -0.6))?;
    dbn.set_prior_cpt(
        ea,
        binary_logistic(vec![2, 2, 2, 2], &[1.5, 1.5, 1.0, 1.8], -3.2),
    )?;
    set_transition_cpts(&mut dbn, ea, &[en, pi, sp], variant)?;

    Ok(PaperNet {
        feature_nodes: vec![
            kw, pause, ste_avg, ste_dyn, ste_max, p_avg, p_dyn, p_max, m_avg, m_max,
        ],
        dbn,
        query: ea,
    })
}

/// Temporal edge set for the query node `q` and mid-level hidden `mids`.
fn temporal_edges(
    variant: Option<TemporalVariant>,
    q: NodeId,
    mids: &[NodeId],
) -> Vec<(NodeId, NodeId)> {
    let Some(variant) = variant else {
        return Vec::new();
    };
    let mut edges = Vec::new();
    match variant {
        TemporalVariant::Full => {
            // Mids feed next query; query fans out to next mids; everyone
            // persists. Self-edges are appended last so `persistence` can
            // weight them (see the CPT builders).
            for &m in mids {
                edges.push((m, q));
                edges.push((q, m));
                edges.push((m, m));
            }
            edges.push((q, q));
        }
        TemporalVariant::QueryOnly => {
            for &m in mids {
                edges.push((m, q));
            }
            edges.push((q, q));
        }
        TemporalVariant::NoQueryFanOut => {
            for &m in mids {
                edges.push((m, q));
                edges.push((m, m));
            }
            edges.push((q, q));
        }
    }
    edges
}

/// Installs transition CPTs matching [`temporal_edges`]'s parent order.
fn set_transition_cpts(
    dbn: &mut Dbn,
    q: NodeId,
    mids: &[NodeId],
    variant: Option<TemporalVariant>,
) -> Result<()> {
    let Some(variant) = variant else {
        return Ok(());
    };
    // Query transition: intra parents first, then temporal (mids…, self).
    let q_intra: Vec<usize> = dbn.slice().nodes()[q]
        .intra_parents
        .iter()
        .map(|&p| dbn.slice().nodes()[p].card)
        .collect();
    let q_temporal = dbn.temporal_parents(q);
    let mut cards = q_intra.clone();
    cards.extend(q_temporal.iter().map(|_| 2));
    let mut weights = vec![1.2; q_intra.len()];
    // Temporal mids contribute mildly; the self edge dominates so that the
    // query state persists across 0.1 s clips (excited commentary spans
    // seconds, not single clips).
    for &tp in &q_temporal {
        weights.push(if tp == q { 4.2 } else { 0.5 });
    }
    let bias = -2.5 - 1.0 * q_intra.len() as f64;
    dbn.set_trans_cpt(q, binary_logistic(cards, &weights, bias))?;

    // Mid transitions.
    for &m in mids {
        let temporal = dbn.temporal_parents(m);
        if temporal.is_empty() {
            // QueryOnly variant: mids keep their prior CPT each slice.
            let prior = dbn.prior_cpt(m).clone();
            dbn.set_trans_cpt(m, prior)?;
            continue;
        }
        let intra: Vec<usize> = dbn.slice().nodes()[m]
            .intra_parents
            .iter()
            .map(|&p| dbn.slice().nodes()[p].card)
            .collect();
        let mut cards = intra.clone();
        cards.extend(temporal.iter().map(|_| 2));
        let mut weights = vec![1.0; intra.len()];
        for &tp in &temporal {
            weights.push(if tp == m { 3.5 } else { 0.5 });
        }
        let bias = -2.2 - 0.8 * intra.len() as f64;
        dbn.set_trans_cpt(m, binary_logistic(cards, &weights, bias))?;
    }
    let _ = variant;
    Ok(())
}

fn set_audio_evidence_cpts(dbn: &mut Dbn, specs: &[(NodeId, f64, f64)]) -> Result<()> {
    for &(node, p_off, p_on) in specs {
        dbn.set_cpt(node, Cpt::binary(vec![2], &[p_off, p_on])?)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Audio-visual network (Fig. 10 / Fig. 11)
// ---------------------------------------------------------------------------

/// Ids of the audio-visual network's query nodes.
#[derive(Debug, Clone, Copy)]
pub struct AvNodes {
    /// Highlight — the main query node.
    pub highlight: NodeId,
    /// Excited announcer sub-query.
    pub excited: NodeId,
    /// Race-start sub-query.
    pub start: NodeId,
    /// Fly-out sub-query.
    pub fly_out: NodeId,
    /// Passing sub-query (absent when the passing sub-network is excluded).
    pub passing: Option<NodeId>,
}

/// Builds the audio-visual highlight DBN of Fig. 10/11. With
/// `with_passing = false` the passing sub-network is excluded, the
/// simplification the paper applies after the Belgian GP results
/// (Table 4).
pub fn audio_visual_dbn(with_passing: bool) -> Result<(PaperNet, AvNodes)> {
    let mut s = SliceNet::new();
    let hl = s.hidden("HL", 2, &[]);
    let ea = s.hidden("EA", 2, &[hl]);
    let st = s.hidden("ST", 2, &[hl]);
    let fo = s.hidden("FO", 2, &[hl]);
    let ps = if with_passing {
        Some(s.hidden("PS", 2, &[hl]))
    } else {
        None
    };

    // Audio evidence under EA.
    let kw = s.observed("Kw", 2, &[ea]);
    let pause = s.observed("Pause", 2, &[ea]);
    let ste_avg = s.observed("SteAvg", 2, &[ea]);
    let ste_dyn = s.observed("SteDyn", 2, &[ea]);
    let ste_max = s.observed("SteMax", 2, &[ea]);
    let p_avg = s.observed("PitchAvg", 2, &[ea]);
    let p_dyn = s.observed("PitchDyn", 2, &[ea]);
    let p_max = s.observed("PitchMax", 2, &[ea]);
    let m_avg = s.observed("MfccAvg", 2, &[ea]);
    let m_max = s.observed("MfccMax", 2, &[ea]);
    // Visual evidence.
    let part = s.observed("PartOfRace", 2, &[st]);
    let replay = s.observed("Replay", 2, &[hl]);
    let color = match ps {
        Some(ps) => s.observed("ColorDiff", 2, &[ps]),
        None => s.observed("ColorDiff", 2, &[]),
    };
    let sema = s.observed("Semaphore", 2, &[st]);
    let dust = s.observed("Dust", 2, &[fo]);
    let sand = s.observed("Sand", 2, &[fo]);
    let motion = match ps {
        Some(ps) => s.observed("Motion", 2, &[st, ps]),
        None => s.observed("Motion", 2, &[st]),
    };

    // Temporal wiring (Fig. 11): persistence everywhere, HL fans out to
    // the sub-queries and receives from them. Self-edges appended last.
    let mut subs = vec![ea, st, fo];
    if let Some(ps) = ps {
        subs.push(ps);
    }
    let mut temporal = Vec::new();
    for &m in &subs {
        temporal.push((m, hl));
        temporal.push((hl, m));
        temporal.push((m, m));
    }
    temporal.push((hl, hl));
    let mut dbn = Dbn::new(s, temporal)?;

    dbn.set_prior_cpt(hl, Cpt::binary(vec![], &[0.12])?)?;
    dbn.set_prior_cpt(ea, Cpt::binary(vec![2], &[0.08, 0.75])?)?;
    dbn.set_prior_cpt(st, Cpt::binary(vec![2], &[0.01, 0.10])?)?;
    dbn.set_prior_cpt(fo, Cpt::binary(vec![2], &[0.01, 0.15])?)?;
    if let Some(ps) = ps {
        dbn.set_prior_cpt(ps, Cpt::binary(vec![2], &[0.03, 0.30])?)?;
    }

    set_audio_evidence_cpts(
        &mut dbn,
        &[
            (kw, 0.03, 0.45),
            (pause, 0.70, 0.25),
            (ste_avg, 0.20, 0.85),
            (ste_dyn, 0.22, 0.80),
            (ste_max, 0.18, 0.88),
            (p_avg, 0.20, 0.85),
            (p_dyn, 0.25, 0.78),
            (p_max, 0.18, 0.86),
            (m_avg, 0.25, 0.75),
            (m_max, 0.22, 0.78),
        ],
    )?;
    dbn.set_cpt(part, Cpt::binary(vec![2], &[0.30, 0.85])?)?;
    dbn.set_cpt(replay, Cpt::binary(vec![2], &[0.05, 0.45])?)?;
    match ps {
        Some(_) => dbn.set_cpt(color, Cpt::binary(vec![2], &[0.25, 0.75])?)?,
        None => dbn.set_cpt(color, Cpt::binary(vec![], &[0.3])?)?,
    }
    dbn.set_cpt(sema, Cpt::binary(vec![2], &[0.01, 0.80])?)?;
    dbn.set_cpt(dust, Cpt::binary(vec![2], &[0.04, 0.80])?)?;
    dbn.set_cpt(sand, Cpt::binary(vec![2], &[0.05, 0.75])?)?;
    match ps {
        // Config order: ST + 2*PS.
        Some(_) => dbn.set_cpt(motion, Cpt::binary(vec![2, 2], &[0.20, 0.85, 0.75, 0.95])?)?,
        None => dbn.set_cpt(motion, Cpt::binary(vec![2], &[0.25, 0.85])?)?,
    }

    // Transitions.
    let hl_temporal = dbn.temporal_parents(hl);
    let mut w = Vec::new();
    for &tp in &hl_temporal {
        w.push(if tp == hl { 4.5 } else { 0.6 });
    }
    let cards = vec![2; hl_temporal.len()];
    dbn.set_trans_cpt(hl, binary_logistic(cards, &w, -2.8))?;
    for &m in &subs {
        let temporal = dbn.temporal_parents(m);
        let mut cards = vec![2]; // intra parent HL
        cards.extend(temporal.iter().map(|_| 2));
        let mut w = vec![1.4];
        for &tp in &temporal {
            w.push(if tp == m { 3.8 } else { 0.5 });
        }
        dbn.set_trans_cpt(m, binary_logistic(cards, &w, -3.0))?;
    }

    let feature_nodes = vec![
        kw, pause, ste_avg, ste_dyn, ste_max, p_avg, p_dyn, p_max, m_avg, m_max, part, replay,
        color, sema, dust, sand, motion,
    ];
    Ok((
        PaperNet {
            dbn,
            query: hl,
            feature_nodes,
        },
        AvNodes {
            highlight: hl,
            excited: ea,
            start: st,
            fly_out: fo,
            passing: ps,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::evidence::EvidenceSeq;

    #[test]
    fn logistic_rows_are_monotone_in_parents() {
        let rows = logistic_rows(&[2, 2], &[1.0, 2.0], -1.5);
        assert_eq!(rows.len(), 4);
        assert!(rows[1] > rows[0]); // first parent on
        assert!(rows[2] > rows[0]); // second parent on
        assert!(rows[3] > rows[1] && rows[3] > rows[2]);
        assert!(rows.iter().all(|p| *p > 0.0 && *p < 1.0));
    }

    #[test]
    fn persistence_favors_self_edge() {
        let cpt = persistence(vec![2, 2], 3.0, 0.5, -1.5);
        // Self (last parent) on vs other parent on.
        assert!(cpt.prob(0b10, 1) > cpt.prob(0b01, 1));
    }

    #[test]
    fn all_audio_structures_build_and_infer() {
        for structure in [
            BnStructure::FullyParameterized,
            BnStructure::DirectEvidence,
            BnStructure::InputOutput,
        ] {
            let bn = audio_bn(structure).unwrap();
            assert!(bn.dbn.is_static());
            assert_eq!(bn.feature_nodes.len(), 10);
            let engine = Engine::new(&bn.dbn).unwrap();
            // Feed a strongly "excited" feature vector; pause rate low.
            let mut features = vec![0.9; 10];
            features[1] = 0.1;
            let ev = EvidenceSeq::from_matrix(&bn.feature_nodes, &[features]);
            let post = engine.filter(&ev, None).unwrap();
            let p_excited = post.marginal(0, bn.query).unwrap()[1];
            // And a quiet vector.
            let mut quiet = vec![0.1; 10];
            quiet[1] = 0.9;
            let ev_q = EvidenceSeq::from_matrix(&bn.feature_nodes, &[quiet]);
            let p_quiet = engine
                .filter(&ev_q, None)
                .unwrap()
                .marginal(0, bn.query)
                .unwrap()[1];
            assert!(
                p_excited > p_quiet + 0.2,
                "{structure:?}: excited {p_excited} vs quiet {p_quiet}"
            );
        }
    }

    #[test]
    fn all_temporal_variants_build_and_infer() {
        for variant in [
            TemporalVariant::Full,
            TemporalVariant::QueryOnly,
            TemporalVariant::NoQueryFanOut,
        ] {
            for structure in [
                BnStructure::FullyParameterized,
                BnStructure::DirectEvidence,
                BnStructure::InputOutput,
            ] {
                let net = audio_dbn(structure, variant).unwrap();
                assert!(!net.dbn.is_static());
                let engine = Engine::new(&net.dbn).unwrap();
                let mut rows = Vec::new();
                for t in 0..20 {
                    let excited = (5..15).contains(&t);
                    let p = if excited { 0.85 } else { 0.15 };
                    let mut row = vec![p; 10];
                    row[1] = 1.0 - p;
                    rows.push(row);
                }
                let ev = EvidenceSeq::from_matrix(&net.feature_nodes, &rows);
                let post = engine.filter(&ev, None).unwrap();
                let trace = post.trace(net.query, 1).unwrap();
                let mid: f64 = trace[8..12].iter().sum::<f64>() / 4.0;
                let edge: f64 = trace[0..3].iter().sum::<f64>() / 3.0;
                assert!(
                    mid > edge,
                    "{structure:?}/{variant:?}: mid {mid} vs edge {edge}"
                );
            }
        }
    }

    #[test]
    fn dbn_trace_is_smoother_than_bn_trace() {
        use crate::metrics::roughness;
        let bn = audio_bn(BnStructure::FullyParameterized).unwrap();
        let dbn = audio_dbn(BnStructure::FullyParameterized, TemporalVariant::Full).unwrap();
        // An excited burst (clips 20..40) with clip-level flicker on top —
        // the static BN trace follows the flicker, the DBN integrates it
        // away (the paper's Fig. 9 contrast). Compare normalized roughness
        // so the two traces' different dynamic ranges don't bias the
        // statistic.
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|t| {
                let base: f64 = if (20..40).contains(&t) { 0.8 } else { 0.2 };
                let flick: f64 = if t % 2 == 0 { 0.15 } else { -0.15 };
                let p = (base + flick).clamp(0.0, 1.0);
                let mut row = vec![p; 10];
                row[1] = 1.0 - p;
                row
            })
            .collect();
        let ev_bn = EvidenceSeq::from_matrix(&bn.feature_nodes, &rows);
        let ev_dbn = EvidenceSeq::from_matrix(&dbn.feature_nodes, &rows);
        let bn_trace = Engine::new(&bn.dbn)
            .unwrap()
            .filter(&ev_bn, None)
            .unwrap()
            .trace(bn.query, 1)
            .unwrap();
        let dbn_trace = Engine::new(&dbn.dbn)
            .unwrap()
            .filter(&ev_dbn, None)
            .unwrap()
            .trace(dbn.query, 1)
            .unwrap();
        let range = |tr: &[f64]| {
            let mx = tr.iter().cloned().fold(f64::MIN, f64::max);
            let mn = tr.iter().cloned().fold(f64::MAX, f64::min);
            (mx - mn).max(1e-9)
        };
        let bn_r = roughness(&bn_trace) / range(&bn_trace);
        let dbn_r = roughness(&dbn_trace) / range(&dbn_trace);
        assert!(dbn_r < bn_r, "dbn {dbn_r} !< bn {bn_r}");
        // Both still respond to the burst.
        assert!(dbn_trace[30] > dbn_trace[5] + 0.2);
    }

    #[test]
    fn audio_visual_net_with_and_without_passing() {
        let (with, nodes_with) = audio_visual_dbn(true).unwrap();
        let (without, nodes_without) = audio_visual_dbn(false).unwrap();
        assert!(nodes_with.passing.is_some());
        assert!(nodes_without.passing.is_none());
        assert_eq!(with.feature_nodes.len(), 17);
        assert_eq!(without.feature_nodes.len(), 17);
        // Hidden counts: HL + EA + ST + FO (+ PS).
        assert_eq!(with.dbn.slice().hidden_ids().len(), 5);
        assert_eq!(without.dbn.slice().hidden_ids().len(), 4);

        // A start-like evidence pattern raises both HL and ST.
        let engine = Engine::new(&without.dbn).unwrap();
        let mut rows = Vec::new();
        for t in 0..10 {
            let mut row = vec![0.2; 17];
            row[1] = 0.8; // pause rate high when idle
            if (3..7).contains(&t) {
                for v in row.iter_mut().take(10) {
                    *v = 0.8;
                }
                row[1] = 0.2;
                row[10] = 0.9; // part of race
                row[13] = 0.95; // semaphore
                row[16] = 0.9; // motion
            }
            rows.push(row);
        }
        let ev = EvidenceSeq::from_matrix(&without.feature_nodes, &rows);
        let post = engine.filter(&ev, None).unwrap();
        let hl = post.trace(nodes_without.highlight, 1).unwrap();
        let st = post.trace(nodes_without.start, 1).unwrap();
        assert!(hl[5] > hl[0]);
        assert!(st[5] > st[0]);
    }

    #[test]
    fn feature_constants_match_network_order() {
        let bn = audio_bn(BnStructure::FullyParameterized).unwrap();
        for (k, &node) in bn.feature_nodes.iter().enumerate() {
            assert_eq!(bn.dbn.slice().nodes()[node].name, AUDIO_FEATURES[k]);
        }
        let (av, _) = audio_visual_dbn(true).unwrap();
        for (k, &node) in av.feature_nodes.iter().enumerate() {
            assert_eq!(av.dbn.slice().nodes()[node].name, AV_FEATURES[k]);
        }
    }
}
