//! # f1-bayes — Bayesian and dynamic Bayesian networks
//!
//! The probabilistic-fusion substrate of the Cobra VDBMS reproduction
//! (paper §4 and §5.5). The paper's DBN extension delegated to Matlab; this
//! crate implements the same machinery natively:
//!
//! * discrete **Bayesian networks** over small node sets ([`slice::SliceNet`]),
//! * **dynamic Bayesian networks** as 2-TBNs: an intra-slice structure plus
//!   temporal edges between consecutive slices ([`dbn::Dbn`]),
//! * **soft (virtual) evidence**: the audio-visual features arrive as
//!   probabilistic values in `[0, 1]` and enter the network as likelihood
//!   vectors ([`evidence`]),
//! * **filtering and smoothing** over the joint hidden state, with the
//!   **modified Boyen–Koller projection** onto a configurable cluster
//!   partition between steps — one single cluster reproduces the paper's
//!   "exact" configuration ([`engine`], [`bk`]),
//! * **Expectation-Maximization** parameter learning with hidden nodes and
//!   tied (time-invariant) transition parameters ([`em`]),
//! * the paper's concrete **network structures**: the three BN slice
//!   structures of Fig. 7, the temporal-dependency variants of Fig. 8 and
//!   §5.5, and the audio-visual highlight network of Fig. 10/11
//!   ([`paper`]),
//! * **evaluation metrics**: thresholded minimum-duration segment
//!   extraction, the output accumulation the paper applies to static BN
//!   traces, precision/recall against ground-truth intervals, and the
//!   roughness statistic used to discuss Fig. 9 ([`metrics`]).
//!
//! The inference engine enumerates the joint state of the *hidden* nodes of
//! one slice (the paper's networks have 1–6 hidden binary nodes, so ≤ 64
//! joint states) and treats evidence nodes analytically, which makes exact
//! filtering, smoothing and EM cheap while leaving the Boyen–Koller cluster
//! projection available for the paper's clustering experiment.

pub mod bk;
pub mod cpt;
pub mod dbn;
pub mod em;
pub mod engine;
pub mod evidence;
pub mod exact;
pub mod metrics;
pub mod paper;
pub mod slice;

pub use cpt::Cpt;
pub use dbn::Dbn;
pub use em::{EmConfig, EmReport};
pub use engine::{Engine, Posteriors};
pub use evidence::{EvidenceSeq, Obs};
pub use metrics::{PrecisionRecall, Segment};
pub use slice::{NodeId, SliceNet, SliceNode};

/// Errors raised while building or running networks.
#[derive(Debug, Clone, PartialEq)]
pub enum BayesError {
    /// A node id referenced a node that does not exist.
    UnknownNode(usize),
    /// The intra-slice structure contains a directed cycle.
    Cyclic,
    /// A CPT does not match its node's cardinality or parent configuration.
    CptShape {
        /// Node whose CPT is malformed.
        node: usize,
        /// Description of the mismatch.
        message: String,
    },
    /// A temporal edge touches an observed node (temporal edges must
    /// connect hidden nodes).
    TemporalOnObserved(usize),
    /// An observed node that acts as a parent received no usable evidence.
    MissingHardEvidence {
        /// The offending node.
        node: usize,
        /// Slice index.
        t: usize,
    },
    /// Evidence vector length differs from node cardinality.
    EvidenceShape {
        /// The offending node.
        node: usize,
        /// Expected cardinality.
        expected: usize,
        /// Provided likelihood length.
        found: usize,
    },
    /// An empty sequence was passed where at least one slice is required.
    EmptySequence,
    /// A cluster partition does not cover the hidden nodes exactly once.
    BadClusters(String),
    /// Numerical failure (all-zero message, impossible evidence).
    Numerical(String),
    /// EM produced a non-finite log-likelihood: the parameters diverged
    /// (or an injected fault aborted the iteration).
    EmDiverged {
        /// Zero-based iteration at which the failure was detected.
        iteration: usize,
        /// What went wrong.
        message: String,
    },
    /// EM failed to reach its tolerance within `max_iters` (only raised
    /// by [`em::train_converged`]; plain [`em::train`] reports this
    /// through [`EmReport::converged`](em::EmReport)).
    EmNotConverged {
        /// Iterations actually run.
        iterations: usize,
    },
}

impl std::fmt::Display for BayesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BayesError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            BayesError::Cyclic => write!(f, "intra-slice structure is cyclic"),
            BayesError::CptShape { node, message } => {
                write!(f, "CPT shape mismatch on node {node}: {message}")
            }
            BayesError::TemporalOnObserved(id) => {
                write!(f, "temporal edge touches observed node {id}")
            }
            BayesError::MissingHardEvidence { node, t } => {
                write!(f, "node {node} needs hard evidence at slice {t}")
            }
            BayesError::EvidenceShape {
                node,
                expected,
                found,
            } => write!(
                f,
                "evidence for node {node} has length {found}, expected {expected}"
            ),
            BayesError::EmptySequence => write!(f, "empty evidence sequence"),
            BayesError::BadClusters(msg) => write!(f, "bad cluster partition: {msg}"),
            BayesError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            BayesError::EmDiverged { iteration, message } => {
                write!(f, "EM diverged at iteration {iteration}: {message}")
            }
            BayesError::EmNotConverged { iterations } => {
                write!(f, "EM did not converge within {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for BayesError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, BayesError>;
