//! Detection metrics: segments, precision/recall, trace statistics.
//!
//! The paper evaluates excited-speech and highlight detection with
//! precision and recall over *segments*. DBN query traces are smooth and
//! are thresholded directly (with a minimum duration of 6 s in Table 3);
//! static BN traces are noisy and must first be *accumulated over time*
//! (§5.5, Fig. 9a). This module implements both post-processing paths and
//! the interval-overlap precision/recall computation.

/// A half-open clip interval `[start, end)` on the 0.1 s clip grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First clip index.
    pub start: usize,
    /// One past the last clip index.
    pub end: usize,
}

impl Segment {
    /// Creates a segment (panics if `end < start`).
    pub fn new(start: usize, end: usize) -> Self {
        assert!(end >= start, "segment end before start");
        Segment { start, end }
    }

    /// Length in clips.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the segment covers no clips.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// True when the two segments share at least one clip.
    pub fn overlaps(&self, other: &Segment) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Number of shared clips.
    pub fn overlap_len(&self, other: &Segment) -> usize {
        let lo = self.start.max(other.start);
        let hi = self.end.min(other.end);
        hi.saturating_sub(lo)
    }
}

/// Thresholds a probability trace into segments: clips with `p >= theta`
/// are positive; runs separated by gaps of at most `merge_gap` clips are
/// merged; runs shorter than `min_len` clips are dropped.
///
/// The paper's audio-visual configuration is `theta = 0.5`, `min_len = 60`
/// (6 s of 0.1 s clips).
pub fn threshold_segments(
    trace: &[f64],
    theta: f64,
    min_len: usize,
    merge_gap: usize,
) -> Vec<Segment> {
    let mut raw: Vec<Segment> = Vec::new();
    let mut start: Option<usize> = None;
    for (i, &p) in trace.iter().enumerate() {
        if p >= theta {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            raw.push(Segment::new(s, i));
        }
    }
    if let Some(s) = start {
        raw.push(Segment::new(s, trace.len()));
    }
    // Merge across small gaps.
    let mut merged: Vec<Segment> = Vec::new();
    for seg in raw {
        match merged.last_mut() {
            Some(last) if seg.start <= last.end + merge_gap => {
                last.end = last.end.max(seg.end);
            }
            _ => merged.push(seg),
        }
    }
    merged.into_iter().filter(|s| s.len() >= min_len).collect()
}

/// The accumulation the paper applies to noisy static-BN outputs before
/// thresholding: a trailing moving average over `window` clips.
pub fn accumulate(trace: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(trace.len());
    let mut sum = 0.0;
    for i in 0..trace.len() {
        sum += trace[i];
        if i >= window {
            sum -= trace[i - window];
        }
        let n = (i + 1).min(window);
        out.push(sum / n as f64);
    }
    out
}

/// Mean absolute first difference of a trace — the quantitative version of
/// the paper's Fig. 9 observation that DBN outputs are "much smoother"
/// than BN outputs.
pub fn roughness(trace: &[f64]) -> f64 {
    if trace.len() < 2 {
        return 0.0;
    }
    trace.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (trace.len() - 1) as f64
}

/// Precision and recall of detected segments against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of detected segments that overlap some true segment.
    pub precision: f64,
    /// Fraction of true segments overlapped by some detection.
    pub recall: f64,
    /// Detected segments overlapping truth.
    pub true_positives: usize,
    /// Detected segments overlapping nothing.
    pub false_positives: usize,
    /// True segments with no overlapping detection.
    pub false_negatives: usize,
}

impl PrecisionRecall {
    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision, self.recall);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Segment-level precision/recall by interval overlap (the evaluation
/// style of the paper's tables: a detection counts if it hits an
/// interesting segment; an interesting segment is recalled if some
/// detection hits it).
pub fn precision_recall(detected: &[Segment], truth: &[Segment]) -> PrecisionRecall {
    let tp = detected
        .iter()
        .filter(|d| truth.iter().any(|t| d.overlaps(t)))
        .count();
    let fp = detected.len() - tp;
    let found = truth
        .iter()
        .filter(|t| detected.iter().any(|d| d.overlaps(t)))
        .count();
    let fn_ = truth.len() - found;
    PrecisionRecall {
        precision: if detected.is_empty() {
            0.0
        } else {
            tp as f64 / detected.len() as f64
        },
        recall: if truth.is_empty() {
            0.0
        } else {
            found as f64 / truth.len() as f64
        },
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_,
    }
}

/// Segment-level precision/recall with a minimum-overlap criterion: a
/// detection counts only when at least `min_frac` of it lies inside one
/// true segment, and a true segment is recalled only when detections
/// cover at least `min_frac` of it. This penalizes sloppy, over-wide
/// detections that any-overlap scoring would accept.
pub fn precision_recall_strict(
    detected: &[Segment],
    truth: &[Segment],
    min_frac: f64,
) -> PrecisionRecall {
    let tp = detected
        .iter()
        .filter(|d| {
            let best = truth.iter().map(|t| d.overlap_len(t)).max().unwrap_or(0);
            !d.is_empty() && best as f64 / d.len() as f64 >= min_frac
        })
        .count();
    let fp = detected.len() - tp;
    let found = truth
        .iter()
        .filter(|t| {
            let covered: usize = detected.iter().map(|d| d.overlap_len(t)).sum();
            !t.is_empty() && covered as f64 / t.len() as f64 >= min_frac
        })
        .count();
    let fn_ = truth.len() - found;
    PrecisionRecall {
        precision: if detected.is_empty() {
            0.0
        } else {
            tp as f64 / detected.len() as f64
        },
        recall: if truth.is_empty() {
            0.0
        } else {
            found as f64 / truth.len() as f64
        },
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_,
    }
}

/// Per-clip (frame-level) precision/recall — a stricter measure used in
/// the endpoint-detection experiment.
pub fn clipwise_precision_recall(detected: &[bool], truth: &[bool]) -> PrecisionRecall {
    assert_eq!(detected.len(), truth.len(), "length mismatch");
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (&d, &t) in detected.iter().zip(truth) {
        match (d, t) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    PrecisionRecall {
        precision: if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        },
        recall: if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        },
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_overlap_logic() {
        let a = Segment::new(10, 20);
        assert!(a.overlaps(&Segment::new(15, 30)));
        assert!(a.overlaps(&Segment::new(0, 11)));
        assert!(!a.overlaps(&Segment::new(20, 25))); // half-open
        assert_eq!(a.overlap_len(&Segment::new(15, 30)), 5);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn thresholding_extracts_runs() {
        let trace = [0.1, 0.9, 0.9, 0.2, 0.8, 0.8, 0.8, 0.1];
        let segs = threshold_segments(&trace, 0.5, 1, 0);
        assert_eq!(segs, vec![Segment::new(1, 3), Segment::new(4, 7)]);
    }

    #[test]
    fn min_duration_drops_short_runs() {
        let trace = [0.9, 0.1, 0.9, 0.9, 0.9, 0.1];
        let segs = threshold_segments(&trace, 0.5, 3, 0);
        assert_eq!(segs, vec![Segment::new(2, 5)]);
    }

    #[test]
    fn merge_gap_joins_nearby_runs() {
        let trace = [0.9, 0.9, 0.1, 0.9, 0.9, 0.0, 0.0, 0.9];
        let segs = threshold_segments(&trace, 0.5, 1, 1);
        assert_eq!(segs, vec![Segment::new(0, 5), Segment::new(7, 8)]);
    }

    #[test]
    fn run_reaching_end_is_closed() {
        let trace = [0.1, 0.9, 0.9];
        assert_eq!(
            threshold_segments(&trace, 0.5, 1, 0),
            vec![Segment::new(1, 3)]
        );
    }

    #[test]
    fn accumulate_is_trailing_mean() {
        let out = accumulate(&[1.0, 0.0, 1.0, 1.0], 2);
        assert_eq!(out, vec![1.0, 0.5, 0.5, 1.0]);
    }

    #[test]
    fn accumulation_smooths_noise() {
        let noisy: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.9 } else { 0.1 })
            .collect();
        let smooth = accumulate(&noisy, 10);
        assert!(roughness(&smooth) < roughness(&noisy) / 4.0);
    }

    #[test]
    fn roughness_of_constant_is_zero() {
        assert_eq!(roughness(&[0.5; 10]), 0.0);
        assert_eq!(roughness(&[0.5]), 0.0);
        assert!((roughness(&[0.0, 1.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_counts_overlaps() {
        let truth = [
            Segment::new(0, 10),
            Segment::new(50, 60),
            Segment::new(90, 95),
        ];
        let detected = [
            Segment::new(5, 12),  // hits truth 0
            Segment::new(20, 30), // false positive
            Segment::new(52, 58), // hits truth 1
        ];
        let pr = precision_recall(&detected, &truth);
        assert!((pr.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((pr.recall - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(pr.true_positives, 2);
        assert_eq!(pr.false_positives, 1);
        assert_eq!(pr.false_negatives, 1);
        assert!((pr.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_give_zero_metrics() {
        let pr = precision_recall(&[], &[Segment::new(0, 1)]);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
        let pr = precision_recall(&[Segment::new(0, 1)], &[]);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.f1(), 0.0);
    }

    #[test]
    fn clipwise_metrics() {
        let detected = [true, true, false, false, true];
        let truth = [true, false, true, false, true];
        let pr = clipwise_precision_recall(&detected, &truth);
        assert!((pr.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((pr.recall - 2.0 / 3.0).abs() < 1e-12);
    }
}
