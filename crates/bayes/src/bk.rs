//! Boyen–Koller cluster partitions.
//!
//! Boyen & Koller (UAI'98, the paper's [21]) approximate the belief state
//! of a DBN by a product of marginals over disjoint *clusters* of nodes.
//! The projection itself is implemented in [`crate::engine::Engine::project`];
//! this module provides the partitions the paper experiments with:
//!
//! * **one cluster containing every hidden node** — no information is lost;
//!   this is the configuration the paper calls *"exact" inference and
//!   learning* ("we considered all nodes from one time slice as belonging
//!   to the same cluster"),
//! * **query node separated from the rest** — the clustering proposed by
//!   Boyen and Koller that the paper evaluates and finds to misclassify
//!   more sequences,
//! * **fully factored** — every hidden node its own cluster, the cheapest
//!   and loosest approximation.

use crate::dbn::Dbn;
use crate::slice::NodeId;
use crate::{BayesError, Result};

/// A partition of the hidden nodes used by the Boyen–Koller projection.
#[derive(Debug, Clone, PartialEq)]
pub struct Clusters(pub Vec<Vec<NodeId>>);

impl Clusters {
    /// All hidden nodes in a single cluster ("exact").
    pub fn single(dbn: &Dbn) -> Self {
        Clusters(vec![dbn.slice().hidden_ids()])
    }

    /// Every hidden node in its own cluster (fully factored).
    pub fn singletons(dbn: &Dbn) -> Self {
        Clusters(
            dbn.slice()
                .hidden_ids()
                .into_iter()
                .map(|id| vec![id])
                .collect(),
        )
    }

    /// Separates the named nodes into their own cluster, the remaining
    /// hidden nodes forming the other — the paper's clustering experiment
    /// (query node vs the other non-observable nodes).
    pub fn separate(dbn: &Dbn, names: &[&str]) -> Result<Self> {
        let mut special = Vec::new();
        for name in names {
            let id = dbn
                .slice()
                .id_of(name)
                .ok_or_else(|| BayesError::BadClusters(format!("no node named '{name}'")))?;
            if dbn.slice().nodes()[id].observed {
                return Err(BayesError::BadClusters(format!(
                    "node '{name}' is observed"
                )));
            }
            special.push(id);
        }
        let rest: Vec<NodeId> = dbn
            .slice()
            .hidden_ids()
            .into_iter()
            .filter(|id| !special.contains(id))
            .collect();
        let mut clusters = vec![special];
        if !rest.is_empty() {
            clusters.push(rest);
        }
        Ok(Clusters(clusters))
    }

    /// The underlying partition.
    pub fn as_slices(&self) -> &[Vec<NodeId>] {
        &self.0
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::SliceNet;

    fn dbn() -> Dbn {
        let mut s = SliceNet::new();
        let ea = s.hidden("EA", 2, &[]);
        let en = s.hidden("EN", 2, &[ea]);
        let pi = s.hidden("PI", 2, &[ea]);
        s.observed("Ste", 2, &[en]);
        Dbn::new(s, vec![(ea, ea), (en, en), (pi, pi)]).unwrap()
    }

    #[test]
    fn single_covers_all_hidden() {
        let d = dbn();
        let c = Clusters::single(&d);
        assert_eq!(c.len(), 1);
        assert_eq!(c.as_slices()[0], vec![0, 1, 2]);
    }

    #[test]
    fn singletons_split_everything() {
        let d = dbn();
        let c = Clusters::singletons(&d);
        assert_eq!(c.len(), 3);
        assert!(c.as_slices().iter().all(|cl| cl.len() == 1));
    }

    #[test]
    fn separate_builds_two_clusters() {
        let d = dbn();
        let c = Clusters::separate(&d, &["EA"]).unwrap();
        assert_eq!(c.as_slices(), &[vec![0], vec![1, 2]]);
    }

    #[test]
    fn separate_rejects_unknown_and_observed() {
        let d = dbn();
        assert!(Clusters::separate(&d, &["nope"]).is_err());
        assert!(Clusters::separate(&d, &["Ste"]).is_err());
    }
}
