//! Dynamic Bayesian networks as 2-TBNs.
//!
//! A [`Dbn`] couples an intra-slice structure ([`SliceNet`]) with temporal
//! edges from nodes of slice *t−1* to nodes of slice *t* (the paper's
//! Fig. 8 / Fig. 11 arrows). Every node carries two CPTs:
//!
//! * a **prior** CPT used in slice 0, conditioned on intra-slice parents,
//! * a **transition** CPT used in slices t ≥ 1, conditioned on intra-slice
//!   parents followed by temporal parents (in edge order).
//!
//! A static Bayesian network is simply a `Dbn` with no temporal edges,
//! evaluated slice by slice.

use rand::Rng;

use crate::cpt::Cpt;
use crate::slice::{NodeId, SliceNet};
use crate::{BayesError, Result};

/// A dynamic Bayesian network (2-TBN) with tied transition parameters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Dbn {
    slice: SliceNet,
    temporal: Vec<(NodeId, NodeId)>,
    prior: Vec<Cpt>,
    trans: Vec<Cpt>,
}

impl Dbn {
    /// Builds a DBN with uniform CPTs. Temporal edges must connect hidden
    /// nodes (the paper only wires non-observable nodes across slices).
    pub fn new(slice: SliceNet, temporal: Vec<(NodeId, NodeId)>) -> Result<Self> {
        slice.validate()?;
        for &(from, to) in &temporal {
            let f = slice.node(from)?;
            let t = slice.node(to)?;
            if f.observed {
                return Err(BayesError::TemporalOnObserved(from));
            }
            if t.observed {
                return Err(BayesError::TemporalOnObserved(to));
            }
        }
        let prior: Vec<Cpt> = (0..slice.len())
            .map(|id| {
                let node = &slice.nodes()[id];
                let pcards = node
                    .intra_parents
                    .iter()
                    .map(|&p| slice.nodes()[p].card)
                    .collect();
                Cpt::uniform(node.card, pcards)
            })
            .collect();
        let trans: Vec<Cpt> = (0..slice.len())
            .map(|id| {
                let node = &slice.nodes()[id];
                let mut pcards: Vec<usize> = node
                    .intra_parents
                    .iter()
                    .map(|&p| slice.nodes()[p].card)
                    .collect();
                for &(from, to) in &temporal {
                    if to == id {
                        pcards.push(slice.nodes()[from].card);
                    }
                }
                Cpt::uniform(node.card, pcards)
            })
            .collect();
        Ok(Dbn {
            slice,
            temporal,
            prior,
            trans,
        })
    }

    /// A static Bayesian network (no temporal edges).
    pub fn bn(slice: SliceNet) -> Result<Self> {
        Dbn::new(slice, Vec::new())
    }

    /// Intra-slice structure.
    pub fn slice(&self) -> &SliceNet {
        &self.slice
    }

    /// Temporal edges `(from at t-1, to at t)`.
    pub fn temporal(&self) -> &[(NodeId, NodeId)] {
        &self.temporal
    }

    /// True when the network has no temporal edges (static BN).
    pub fn is_static(&self) -> bool {
        self.temporal.is_empty()
    }

    /// Temporal parents of `node` in CPT digit order (appended after the
    /// intra-slice parents).
    pub fn temporal_parents(&self, node: NodeId) -> Vec<NodeId> {
        self.temporal
            .iter()
            .filter(|&&(_, to)| to == node)
            .map(|&(from, _)| from)
            .collect()
    }

    /// Prior (slice-0) CPT of a node.
    pub fn prior_cpt(&self, node: NodeId) -> &Cpt {
        &self.prior[node]
    }

    /// Transition (slice t ≥ 1) CPT of a node.
    pub fn trans_cpt(&self, node: NodeId) -> &Cpt {
        &self.trans[node]
    }

    /// Replaces the prior CPT of a node, checking its shape.
    pub fn set_prior_cpt(&mut self, node: NodeId, cpt: Cpt) -> Result<()> {
        self.check_shape(node, &cpt, false)?;
        self.prior[node] = cpt;
        Ok(())
    }

    /// Replaces the transition CPT of a node, checking its shape.
    pub fn set_trans_cpt(&mut self, node: NodeId, cpt: Cpt) -> Result<()> {
        self.check_shape(node, &cpt, true)?;
        self.trans[node] = cpt;
        Ok(())
    }

    /// Sets both CPTs of an evidence (or temporal-parent-free) node.
    pub fn set_cpt(&mut self, node: NodeId, cpt: Cpt) -> Result<()> {
        self.set_prior_cpt(node, cpt.clone())?;
        if self.temporal_parents(node).is_empty() {
            self.set_trans_cpt(node, cpt)?;
        }
        Ok(())
    }

    fn check_shape(&self, node: NodeId, cpt: &Cpt, with_temporal: bool) -> Result<()> {
        let def = self.slice.node(node)?;
        if cpt.card() != def.card {
            return Err(BayesError::CptShape {
                node,
                message: format!("cardinality {} != node's {}", cpt.card(), def.card),
            });
        }
        let mut expected: Vec<usize> = def
            .intra_parents
            .iter()
            .map(|&p| self.slice.nodes()[p].card)
            .collect();
        if with_temporal {
            for from in self.temporal_parents(node) {
                expected.push(self.slice.nodes()[from].card);
            }
        }
        if cpt.parent_cards() != expected.as_slice() {
            return Err(BayesError::CptShape {
                node,
                message: format!(
                    "parent cards {:?} != expected {:?}",
                    cpt.parent_cards(),
                    expected
                ),
            });
        }
        Ok(())
    }

    /// Jitters every CPT row around uniform — a common EM starting point.
    pub fn randomize(&mut self, rng: &mut impl Rng, spread: f64) {
        for id in 0..self.slice.len() {
            let node = &self.slice.nodes()[id];
            let pc: Vec<usize> = node
                .intra_parents
                .iter()
                .map(|&p| self.slice.nodes()[p].card)
                .collect();
            self.prior[id] = Cpt::random(node.card, pc.clone(), rng, spread);
            let mut tc = pc;
            for from in self.temporal_parents(id) {
                tc.push(self.slice.nodes()[from].card);
            }
            self.trans[id] = Cpt::random(node.card, tc, rng, spread);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice() -> SliceNet {
        let mut s = SliceNet::new();
        let ea = s.hidden("EA", 2, &[]);
        let en = s.hidden("EN", 2, &[ea]);
        s.observed("Ste", 2, &[en]);
        s
    }

    #[test]
    fn uniform_construction_and_shapes() {
        let d = Dbn::new(slice(), vec![(0, 0), (0, 1), (1, 1)]).unwrap();
        assert_eq!(d.prior_cpt(0).parent_cards(), &[] as &[usize]);
        assert_eq!(d.trans_cpt(0).parent_cards(), &[2]); // EA_{t-1}
        assert_eq!(d.trans_cpt(1).parent_cards(), &[2, 2, 2]); // EA_t, EA_{t-1}, EN_{t-1}
        assert_eq!(d.temporal_parents(1), vec![0, 1]);
        assert!(!d.is_static());
    }

    #[test]
    fn temporal_edges_on_observed_nodes_are_rejected() {
        assert_eq!(
            Dbn::new(slice(), vec![(2, 0)]),
            Err(BayesError::TemporalOnObserved(2))
        );
        assert_eq!(
            Dbn::new(slice(), vec![(0, 2)]),
            Err(BayesError::TemporalOnObserved(2))
        );
    }

    #[test]
    fn static_bn_has_no_temporal_parents() {
        let d = Dbn::bn(slice()).unwrap();
        assert!(d.is_static());
        assert!(d.temporal_parents(0).is_empty());
        assert_eq!(d.prior_cpt(1).parent_cards(), d.trans_cpt(1).parent_cards());
    }

    #[test]
    fn cpt_setters_check_shape() {
        let mut d = Dbn::new(slice(), vec![(0, 0)]).unwrap();
        // EA prior has no parents.
        assert!(d
            .set_prior_cpt(0, Cpt::binary(vec![], &[0.2]).unwrap())
            .is_ok());
        // EA transition has one binary temporal parent.
        assert!(d
            .set_trans_cpt(0, Cpt::binary(vec![2], &[0.1, 0.9]).unwrap())
            .is_ok());
        // Wrong shapes rejected.
        assert!(d
            .set_prior_cpt(0, Cpt::binary(vec![2], &[0.1, 0.9]).unwrap())
            .is_err());
        assert!(d
            .set_trans_cpt(0, Cpt::binary(vec![], &[0.2]).unwrap())
            .is_err());
        assert!(d.set_prior_cpt(0, Cpt::uniform(3, vec![])).is_err());
    }

    #[test]
    fn set_cpt_updates_both_for_evidence_nodes() {
        let mut d = Dbn::new(slice(), vec![(0, 0)]).unwrap();
        let cpt = Cpt::binary(vec![2], &[0.05, 0.95]).unwrap();
        d.set_cpt(2, cpt.clone()).unwrap();
        assert_eq!(d.prior_cpt(2), &cpt);
        assert_eq!(d.trans_cpt(2), &cpt);
    }

    #[test]
    fn randomize_keeps_rows_normalized() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut d = Dbn::new(slice(), vec![(0, 0), (1, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        d.randomize(&mut rng, 0.8);
        for id in 0..3 {
            for cfg in 0..d.trans_cpt(id).n_configs() {
                let s: f64 = d.trans_cpt(id).row(cfg).iter().sum();
                assert!((s - 1.0).abs() < 1e-9);
            }
        }
    }
}
