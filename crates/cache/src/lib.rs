//! Bounded, sharded-lock LRU cache shared across Cobra subsystems.
//!
//! One policy, three users: the kernel's per-(bat, version) `ColumnIndex`
//! cache, the conceptual→MIL plan cache, and the versioned query result
//! cache. Keys hash to a shard; each shard is an independent mutex-guarded
//! map, so concurrent lookups on different shards never contend. Recency is
//! tracked with a per-shard logical clock: every hit re-stamps the entry,
//! and an insert into a full shard evicts the entry with the oldest stamp
//! (exact LRU within the shard). Capacities here are small (hundreds of
//! entries), so the O(shard-len) eviction scan is cheaper than maintaining
//! an intrusive list under a lock.
//!
//! The cache stores `V: Clone` values directly; callers that want cheap
//! hits wrap payloads in `Arc`. All accounting (hit/miss/eviction counters,
//! byte gauges) is left to the caller: `get` returns `Option<V>` and
//! `insert` returns the evicted pair, which is exactly the information the
//! metrics layer needs without coupling this crate to `cobra-obs`.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use parking_lot::Mutex;

/// Default shard count: enough to keep 8 worker threads from serializing,
/// small enough that per-shard capacity stays meaningful at cap 128.
const DEFAULT_SHARDS: usize = 8;

struct Entry<V> {
    value: V,
    touched: u64,
}

struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    clock: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Evict the least-recently-touched entry, returning it.
    fn evict_oldest(&mut self) -> Option<(K, V)> {
        let oldest = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.touched)
            .map(|(k, _)| k.clone())?;
        let entry = self.map.remove(&oldest)?;
        Some((oldest, entry.value))
    }
}

/// A bounded map with least-recently-used eviction and sharded locking.
///
/// `capacity` is the total bound across shards; each shard holds at most
/// `ceil(capacity / shards)` entries so the whole cache never exceeds
/// `capacity` by more than rounding.
pub struct Lru<K, V> {
    shards: Box<[Mutex<Shard<K, V>>]>,
    per_shard_cap: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> Lru<K, V> {
    /// A cache bounded at `capacity` entries with the default shard count.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count. `shards = 1` gives a single
    /// global LRU order — useful for deterministic eviction tests.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).min(capacity.max(1));
        let per_shard_cap = capacity.max(1).div_ceil(shards);
        let shards = (0..shards)
            .map(|_| {
                Mutex::new(Shard {
                    map: HashMap::new(),
                    clock: 0,
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            shards,
            per_shard_cap,
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let idx = (hasher.finish() as usize) % self.shards.len();
        &self.shards[idx]
    }

    /// Look up `key`, re-stamping it as most recently used on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut shard = self.shard(key).lock();
        let stamp = shard.tick();
        let entry = shard.map.get_mut(key)?;
        entry.touched = stamp;
        Some(entry.value.clone())
    }

    /// Insert or replace `key`. Returns the entry evicted to make room, if
    /// any (never the replaced value for an existing key — replacement is
    /// not an eviction).
    pub fn insert(&self, key: K, value: V) -> Option<(K, V)> {
        let mut shard = self.shard(&key).lock();
        let stamp = shard.tick();
        let evicted = if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_cap {
            shard.evict_oldest()
        } else {
            None
        };
        shard.map.insert(
            key,
            Entry {
                value,
                touched: stamp,
            },
        );
        evicted
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key).lock().map.remove(key).map(|e| e.value)
    }

    /// Drop every entry.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().map.clear();
        }
    }

    /// Number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entry bound (per-shard cap × shard count; ≥ requested capacity).
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_least_recently_used_order() {
        // Single shard => one global LRU order we can assert exactly.
        let lru: Lru<u32, &str> = Lru::with_shards(3, 1);
        assert!(lru.insert(1, "a").is_none());
        assert!(lru.insert(2, "b").is_none());
        assert!(lru.insert(3, "c").is_none());

        // Touch 1 so 2 becomes the oldest.
        assert_eq!(lru.get(&1), Some("a"));

        // Inserting a fourth entry must evict 2, not 1.
        assert_eq!(lru.insert(4, "d"), Some((2, "b")));
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some("a"));

        // Now 3 is oldest (1 and 4 were touched more recently).
        assert_eq!(lru.insert(5, "e"), Some((3, "c")));
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn replacing_existing_key_does_not_evict() {
        let lru: Lru<u32, u32> = Lru::with_shards(2, 1);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert!(lru.insert(1, 11).is_none());
        assert_eq!(lru.get(&1), Some(11));
        assert_eq!(lru.get(&2), Some(20));
    }

    #[test]
    fn remove_and_clear() {
        let lru: Lru<u32, u32> = Lru::with_shards(16, 1);
        for i in 0..10 {
            lru.insert(i, i * 2);
        }
        assert_eq!(lru.remove(&3), Some(6));
        assert_eq!(lru.get(&3), None);
        assert_eq!(lru.len(), 9);
        lru.clear();
        assert!(lru.is_empty());
    }

    #[test]
    fn capacity_is_bounded_across_shards() {
        let lru: Lru<u64, u64> = Lru::new(128);
        for i in 0..10_000u64 {
            lru.insert(i, i);
        }
        assert!(lru.len() <= lru.capacity());
        assert!(lru.capacity() >= 128);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let lru: Arc<Lru<u64, u64>> = Arc::new(Lru::new(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let lru = Arc::clone(&lru);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        let k = (t * 251 + i) % 96;
                        if i % 3 == 0 {
                            lru.insert(k, i);
                        } else {
                            lru.get(&k);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread panicked");
        }
        assert!(lru.len() <= lru.capacity());
    }
}
